//! `loadgen` — closed-loop TCP load generator for `lorentz serve --listen`.
//!
//! Opens `--connections` persistent connections to a running server, and
//! on each connection runs a strict closed loop: send one length-prefixed
//! JSON request frame, block for its response, record the end-to-end
//! latency, repeat — paced so the aggregate offered load approximates
//! `--qps`. Requests sweep `--keys` distinct resource paths (distinct
//! packed λ keys, spread across the server's shards by construction), so
//! a million-key run actually touches a million-entry key space instead
//! of hammering one cache line.
//!
//! Every `--feedback-every` N-th frame (0 = never) is a satisfaction
//! signal instead of a request, exercising the online λ path over the
//! wire; the generator waits for the feedback ack like any response, so
//! the loop stays closed.
//!
//! The run ends after `--requests` total frames. With `--drain` the
//! generator then sends `{"op": "drain"}`, telling the server to drain
//! its ledger and exit — the harness mode used by CI. The report (JSON on
//! stdout, or `--out FILE`) carries achieved QPS and p50/p95/p99/max
//! end-to-end latency, comparable against the pinned `BENCH_serve.json`
//! SLO baseline.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7447 --qps 2000 --connections 4 \
//!         --requests 10000 --keys 1000000 [--feedback-every 100] \
//!         [--drain] [--out report.json]
//! ```

use serde::{Deserialize, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Parsed command line. Everything has a default except `--addr`.
struct Options {
    addr: String,
    qps: u64,
    connections: usize,
    requests: u64,
    keys: u64,
    feedback_every: u64,
    drain: bool,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--qps N] [--connections N] \
         [--requests N] [--keys N] [--feedback-every N] [--drain] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut opts = Options {
        addr: String::new(),
        qps: 1000,
        connections: 4,
        requests: 10_000,
        keys: 1_000_000,
        feedback_every: 0,
        drain: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => opts.addr = take(),
            "--qps" => opts.qps = take().parse().unwrap_or_else(|_| usage()),
            "--connections" => opts.connections = take().parse().unwrap_or_else(|_| usage()),
            "--requests" => opts.requests = take().parse().unwrap_or_else(|_| usage()),
            "--keys" => opts.keys = take().parse().unwrap_or_else(|_| usage()),
            "--feedback-every" => opts.feedback_every = take().parse().unwrap_or_else(|_| usage()),
            "--drain" => opts.drain = true,
            "--out" => opts.out = Some(take()),
            _ => usage(),
        }
    }
    if opts.addr.is_empty() || opts.connections == 0 || opts.qps == 0 {
        usage();
    }
    opts
}

/// Writes one `u32`-big-endian length-prefixed frame.
fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).expect("loadgen frames are small");
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed frame (the server never sends oversized
/// frames; a short read here means the server died mid-response).
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// The k-th distinct path in the key sweep. Multiplying by an odd
/// constant permutes the key space, so consecutive requests land on
/// unrelated shards instead of walking one shard at a time.
fn path_fields(k: u64, keys: u64) -> (u64, u64, u64) {
    let key = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) % keys.max(1);
    let customer = key & 0xFFFF_FFFF;
    let subscription = (key >> 8) & 0xFFFF_FFFF;
    let resource_group = (key >> 16) & 0xFFFF_FFFF;
    (customer, subscription, resource_group)
}

/// What one connection thread measured.
#[derive(Default)]
struct ThreadReport {
    latencies_ns: Vec<u64>,
    ok: u64,
    errors: u64,
    feedback_acked: u64,
}

/// Runs one connection's closed loop: `count` frames paced at `interval`.
fn connection_loop(
    addr: &str,
    thread_idx: u64,
    count: u64,
    stride: u64,
    interval: Duration,
    keys: u64,
    feedback_every: u64,
) -> std::io::Result<ThreadReport> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut report = ThreadReport {
        latencies_ns: Vec::with_capacity(count as usize),
        ..ThreadReport::default()
    };
    let started = Instant::now();
    for i in 0..count {
        // Pace against the schedule, not the previous send: a slow
        // response eats its own slot instead of shifting the whole run.
        let due = interval * u32::try_from(i).unwrap_or(u32::MAX);
        let elapsed = started.elapsed();
        if elapsed < due {
            std::thread::sleep(due - elapsed);
        }
        let seq = thread_idx + i * stride;
        let (customer, subscription, resource_group) = path_fields(seq, keys);
        let id = (thread_idx << 32) | i;
        let is_feedback = feedback_every > 0 && seq % feedback_every == feedback_every - 1;
        let payload = if is_feedback {
            format!(
                "{{\"gamma\": -0.5, \"customer\": {customer}, \
                 \"subscription\": {subscription}, \"resource_group\": {resource_group}}}"
            )
        } else {
            format!(
                "{{\"id\": {id}, \"profile\": {{}}, \"customer\": {customer}, \
                 \"subscription\": {subscription}, \"resource_group\": {resource_group}}}"
            )
        };
        let sent = Instant::now();
        write_frame(&mut stream, payload.as_bytes())?;
        let answer = read_frame(&mut stream)?;
        let latency = u64::try_from(sent.elapsed().as_nanos()).unwrap_or(u64::MAX);
        report.latencies_ns.push(latency);
        let text = String::from_utf8_lossy(&answer);
        let value = serde_json::parse(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response frame: {e}"),
            )
        })?;
        if is_feedback {
            if value.get_field("ack").is_some() {
                report.feedback_acked += 1;
            } else {
                report.errors += 1;
            }
        } else if value.get_field("ok").is_some() {
            // Closed-loop invariant: the response on this connection must
            // answer the request we just sent.
            let echoed = value
                .get_field("id")
                .and_then(|v| u64::from_value(v).ok())
                .unwrap_or(u64::MAX);
            if echoed != id {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("response id {echoed} does not match request id {id}"),
                ));
            }
            report.ok += 1;
        } else {
            report.errors += 1;
        }
    }
    Ok(report)
}

/// Nearest-rank percentile over a sorted latency vector.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let opts = parse_options();
    let interval = Duration::from_nanos(1_000_000_000 * opts.connections as u64 / opts.qps);
    let per_thread = opts.requests / opts.connections as u64;
    let started = Instant::now();
    let threads: Vec<_> = (0..opts.connections)
        .map(|t| {
            let addr = opts.addr.clone();
            let (keys, feedback_every) = (opts.keys, opts.feedback_every);
            let stride = opts.connections as u64;
            std::thread::spawn(move || {
                connection_loop(
                    &addr,
                    t as u64,
                    per_thread,
                    stride,
                    interval,
                    keys,
                    feedback_every,
                )
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    let (mut ok, mut errors, mut feedback_acked, mut failed_conns) = (0u64, 0u64, 0u64, 0u64);
    for thread in threads {
        match thread.join().expect("loadgen thread panicked") {
            Ok(report) => {
                latencies.extend(report.latencies_ns);
                ok += report.ok;
                errors += report.errors;
                feedback_acked += report.feedback_acked;
            }
            Err(e) => {
                eprintln!("loadgen: connection failed: {e}");
                failed_conns += 1;
            }
        }
    }
    let elapsed = started.elapsed();
    if opts.drain {
        match TcpStream::connect(&opts.addr) {
            Ok(mut stream) => {
                if write_frame(&mut stream, b"{\"op\": \"drain\"}").is_ok() {
                    let _ = read_frame(&mut stream);
                }
            }
            Err(e) => eprintln!("loadgen: drain connection failed: {e}"),
        }
    }
    latencies.sort_unstable();
    let achieved_qps = latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    let report = Value::Map(vec![
        ("target_qps".to_owned(), Value::UInt(opts.qps)),
        ("achieved_qps".to_owned(), Value::Float(achieved_qps)),
        (
            "connections".to_owned(),
            Value::UInt(opts.connections as u64),
        ),
        ("keys".to_owned(), Value::UInt(opts.keys)),
        ("requests".to_owned(), Value::UInt(latencies.len() as u64)),
        ("ok".to_owned(), Value::UInt(ok)),
        ("errors".to_owned(), Value::UInt(errors)),
        ("feedback_acked".to_owned(), Value::UInt(feedback_acked)),
        ("failed_connections".to_owned(), Value::UInt(failed_conns)),
        (
            "elapsed_ms".to_owned(),
            Value::UInt(elapsed.as_millis() as u64),
        ),
        (
            "p50_ns".to_owned(),
            Value::UInt(percentile(&latencies, 50.0)),
        ),
        (
            "p95_ns".to_owned(),
            Value::UInt(percentile(&latencies, 95.0)),
        ),
        (
            "p99_ns".to_owned(),
            Value::UInt(percentile(&latencies, 99.0)),
        ),
        (
            "max_ns".to_owned(),
            Value::UInt(latencies.last().copied().unwrap_or(0)),
        ),
    ]);
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    match &opts.out {
        Some(path) => std::fs::write(path, text).expect("write report"),
        None => println!("{text}"),
    }
    if failed_conns > 0 {
        std::process::exit(1);
    }
}
