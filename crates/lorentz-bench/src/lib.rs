//! Shared fixtures for the Criterion benchmark suites.
//!
//! Bench coverage maps to the paper's evaluation as follows:
//!
//! | suite | paper artifact | kernel benchmarked |
//! |---|---|---|
//! | `stage1_rightsizer` | Figures 1, 2, 4, 9 | throttling/slack statistics and the Eq. 9 optimizer |
//! | `stage2_provisioners` | Figures 10, 11, 12 | hierarchical & target-encoding fit + inference |
//! | `stage3_personalizer` | Figures 13, 14 | Algorithm 1 signal propagation and λ adjustment |
//! | `ml_substrate` | §3.3 model internals | binning, tree fitting, boosting |
//! | `hierarchy_learning` | Fig. 5 | HALO strength matrix and chain traversal |
//! | `simulation` | §5 data generation | fleet synthesis, upscaling, §5.3 sim steps |

use lorentz_simdata::fleet::{FleetConfig, SyntheticFleet};
use lorentz_telemetry::generators::SamplingConfig;

/// A deterministic mid-sized fleet shared by the benches.
pub fn bench_fleet(n_servers: usize) -> SyntheticFleet {
    FleetConfig {
        n_servers,
        seed: 99,
        base_demand: 1.2,
        sampling: SamplingConfig {
            duration_secs: 86_400.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.2,
        },
        ..FleetConfig::default()
    }
    .generate()
    .expect("bench fleet config is valid")
}
