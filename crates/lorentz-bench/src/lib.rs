//! Shared fixtures for the Criterion benchmark suites.
//!
//! Bench coverage maps to the paper's evaluation as follows:
//!
//! | suite | paper artifact | kernel benchmarked |
//! |---|---|---|
//! | `stage1_rightsizer` | Figures 1, 2, 4, 9 | throttling/slack statistics and the Eq. 9 optimizer |
//! | `stage2_provisioners` | Figures 10, 11, 12 | hierarchical & target-encoding fit + inference |
//! | `stage3_personalizer` | Figures 13, 14 | Algorithm 1 signal propagation and λ adjustment |
//! | `ml_substrate` | §3.3 model internals | binning, tree fitting, boosting |
//! | `hierarchy_learning` | Fig. 5 | HALO strength matrix and chain traversal |
//! | `simulation` | §5 data generation | fleet synthesis, upscaling, §5.3 sim steps |

use lorentz_core::fleet::FleetDataset;
use lorentz_simdata::fleet::{FleetConfig, SyntheticFleet};
use lorentz_telemetry::generators::SamplingConfig;
use lorentz_telemetry::{RegularSeries, UsageTrace};
use lorentz_types::{
    CustomerId, ProfileSchema, ProfileTable, ResourceGroupId, ResourcePath, ServerId,
    ServerOffering, SkuCatalog, SubscriptionId,
};

/// A deterministic mid-sized fleet shared by the benches.
pub fn bench_fleet(n_servers: usize) -> SyntheticFleet {
    FleetConfig {
        n_servers,
        seed: 99,
        base_demand: 1.2,
        sampling: SamplingConfig {
            duration_secs: 86_400.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.2,
        },
        ..FleetConfig::default()
    }
    .generate()
    .expect("bench fleet config is valid")
}

/// xorshift64* step — cheap deterministic noise for fixture synthesis.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A large training fixture built by direct [`RegularSeries`] construction —
/// no raw-sample generation, so a 100k-trace (or, env-gated, 1M-trace) fleet
/// materializes in bench setup time rather than minutes.
///
/// Profiles follow a clean 7-level Azure-like chain (each finer feature
/// determines all coarser ones, with ~2% missing values), demand is tied to
/// the customer so target encoding has real signal, and user capacities mix
/// over-, well-, and under-provisioned picks so both the censored and
/// uncensored Stage-1 branches are exercised.
pub fn train_fixture(n_servers: usize, bins: usize) -> FleetDataset {
    assert!(bins >= 2, "fixture traces need at least 2 bins");
    let mut fleet = FleetDataset::new(ProfileTable::new(ProfileSchema::azure_postgres()));
    let catalogs: Vec<SkuCatalog> = ServerOffering::ALL
        .iter()
        .map(|&o| SkuCatalog::azure_postgres(o))
        .collect();
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ n_servers as u64;

    for srv in 0..n_servers {
        let leaf = (xorshift(&mut rng) % 4096) as usize;
        let sub = leaf / 16;
        let cust = leaf / 64;
        let names = [
            format!("seg-{}", cust / 16),
            format!("ind-{}", cust / 8),
            format!("vert-{}", cust / 4),
            format!("vcat-{}", cust / 2),
            format!("cust-{cust}"),
            format!("sub-{sub}"),
            format!("rg-{leaf}"),
        ];
        let mut row: Vec<Option<&str>> = names.iter().map(|s| Some(s.as_str())).collect();
        if xorshift(&mut rng).is_multiple_of(50) {
            row[(xorshift(&mut rng) % 7) as usize] = None;
        }

        // Demand: a customer-keyed base level with a triangular daily wave
        // and a deterministic per-server phase.
        let base = 0.5 + (cust % 8) as f64 + (xorshift(&mut rng) % 100) as f64 / 200.0;
        let phase = (xorshift(&mut rng) % bins as u64) as usize;
        let mut values = Vec::with_capacity(bins);
        for j in 0..bins {
            let t = ((j + phase) % bins) as f64 / bins as f64;
            let wave = if t < 0.5 { t * 2.0 } else { (1.0 - t) * 2.0 };
            values.push(base * (0.85 + 0.3 * wave));
        }
        let trace =
            UsageTrace::single(RegularSeries::new(300.0, values).expect("fixture series is valid"));

        // User pick: the covering SKU at the 0.5 slack target, shifted by
        // -1/0/+1 so the fleet mixes verdicts (the -1 picks throttle and
        // take the censored branch).
        let offering = ServerOffering::ALL[srv % 3];
        let catalog = &catalogs[srv % 3];
        let peak = base * 1.15;
        let covering = catalog
            .skus()
            .iter()
            .position(|s| s.capacity.primary() >= peak * 2.0)
            .unwrap_or(catalog.len() - 1);
        let offset = match xorshift(&mut rng) % 4 {
            0 => -1i64,
            1 => 1,
            _ => 0,
        };
        let idx = (covering as i64 + offset).clamp(0, catalog.len() as i64 - 1) as usize;
        let user = catalog.get(idx).capacity.clone();

        fleet
            .push(
                ServerId(srv as u32),
                ResourcePath::new(
                    CustomerId(cust as u32),
                    SubscriptionId(sub as u32),
                    ResourceGroupId(leaf as u32),
                ),
                offering,
                &row,
                user,
                trace,
            )
            .expect("fixture row is valid");
    }
    fleet
}
