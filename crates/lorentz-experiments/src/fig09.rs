//! Figure 9: capacity rightsizing vs user selections.
//!
//! Paper result: evaluated on the observed workloads `W`, rightsized
//! capacities eliminate throttling entirely while reducing (absolute)
//! slack by 34%; the absolute-slack distribution is modal around powers of
//! two because the candidate capacities are.
//!
//! The paper's evaluation necessarily runs on *observed* (capacity-
//! censored) telemetry — that is all production has. We reproduce that
//! protocol, and additionally report the same metrics against the
//! uncensored ground-truth demand (which only a simulator can see) as an
//! honesty check: censoring hides residual throttling of workloads whose
//! true demand exceeds even the `2^K`-scaled capacity.

use crate::common::{self, Scale};
use lorentz_core::evaluate;
use lorentz_core::Rightsizer;
use lorentz_types::Capacity;
use serde::{Deserialize, Serialize};

/// Slack/throttling for user vs rightsized capacities on one view of the
/// workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewMetrics {
    /// Mean absolute slack of user selections.
    pub user_slack: f64,
    /// Mean absolute slack of rightsized capacities.
    pub rightsized_slack: f64,
    /// Fraction of workloads throttled under user selections.
    pub user_throttling: f64,
    /// Fraction of workloads throttled under rightsized capacities.
    pub rightsized_throttling: f64,
    /// Relative slack reduction.
    pub slack_reduction: f64,
}

/// The Figure-9 reproduction result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig09Result {
    /// The paper's protocol: observed (censored) workloads.
    pub observed: ViewMetrics,
    /// The simulator-only honesty check: uncensored demand.
    pub ground_truth: ViewMetrics,
}

fn view(
    rightsizer: &Rightsizer,
    traces: &[lorentz_telemetry::UsageTrace],
    user: &[Capacity],
    right: &[Capacity],
    tau: f64,
) -> ViewMetrics {
    let u = evaluate::slack_throttle(rightsizer, traces, user, tau).expect("evaluation succeeds");
    let r = evaluate::slack_throttle(rightsizer, traces, right, tau).expect("evaluation succeeds");
    ViewMetrics {
        user_slack: u.mean_abs_slack,
        rightsized_slack: r.mean_abs_slack,
        user_throttling: u.throttling_ratio,
        rightsized_throttling: r.throttling_ratio,
        slack_reduction: 1.0 - r.mean_abs_slack / u.mean_abs_slack,
    }
}

fn print_view(title: &str, v: &ViewMetrics) {
    println!(
        "{}",
        common::kv_table(
            title,
            &[
                (
                    "mean abs slack (user)".into(),
                    format!("{:.2} vCores", v.user_slack)
                ),
                (
                    "mean abs slack (rightsized)".into(),
                    format!("{:.2} vCores", v.rightsized_slack),
                ),
                (
                    "slack reduction (paper 34%)".into(),
                    common::pct(v.slack_reduction)
                ),
                (
                    "throttling ratio (user)".into(),
                    common::pct(v.user_throttling)
                ),
                (
                    "throttling ratio (rightsized, paper 0%)".into(),
                    common::pct(v.rightsized_throttling),
                ),
            ],
        )
    );
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig09Result {
    common::banner(
        "Figure 9",
        "rightsizing reduces slack and throttling over user selections",
    );
    let synth = common::stats_fleet(scale, 101);
    let config = common::experiment_config(scale);
    let outcomes = common::rightsize_fleet(&config, &synth.fleet).expect("rightsizing succeeds");
    let rightsizer = Rightsizer::new(&config.rightsizer).expect("valid config");

    let user_caps: Vec<Capacity> = synth.fleet.user_capacities().to_vec();
    let right_caps: Vec<Capacity> = outcomes.iter().map(|o| o.capacity.clone()).collect();
    let tau = config.rightsizer.tau;

    let observed = view(
        &rightsizer,
        synth.fleet.traces(),
        &user_caps,
        &right_caps,
        tau,
    );
    let ground_truth = view(
        &rightsizer,
        &synth.ground_truth,
        &user_caps,
        &right_caps,
        tau,
    );
    print_view("observed workloads (the paper's protocol)", &observed);
    print_view(
        "uncensored ground truth (simulator honesty check)",
        &ground_truth,
    );

    // Absolute-slack distributions on the observed workloads (the figure's
    // histograms; modal near powers of two).
    let user_dist = evaluate::slack_distribution(&rightsizer, synth.fleet.traces(), &user_caps)
        .expect("evaluation succeeds");
    let right_dist = evaluate::slack_distribution(&rightsizer, synth.fleet.traces(), &right_caps)
        .expect("evaluation succeeds");
    let edges = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    println!("-- absolute slack distribution (user) --");
    print!("{}", common::ascii_histogram(&user_dist, &edges, 40));
    println!("-- absolute slack distribution (rightsized) --");
    print!("{}", common::ascii_histogram(&right_dist, &edges, 40));

    Fig09Result {
        observed,
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rightsizing_cuts_slack_and_eliminates_observed_throttling() {
        let r = run(Scale::Quick);
        // Paper protocol: throttling eliminated entirely on observed data...
        assert_eq!(
            r.observed.rightsized_throttling, 0.0,
            "rightsizing must eliminate observed throttling"
        );
        assert!(r.observed.user_throttling > 0.05);
        // ...with a meaningful slack reduction.
        assert!(
            r.observed.slack_reduction > 0.15,
            "observed slack reduction {}",
            r.observed.slack_reduction
        );
        // Honesty check: against true demand, rightsizing still throttles
        // far less than user selections.
        assert!(r.ground_truth.rightsized_throttling < r.ground_truth.user_throttling);
    }
}
