//! §5.2 aggregate-cost evaluation.
//!
//! Paper claim: "We also evaluated the provisioner models based on their
//! aggregate vCores provisioned and hours throttled, extrapolated from the
//! test set to a count of 67k servers ..., achieving 27% (Hierarchical) and
//! 8% (Target Encoding) reduction in cost compared to user selection."
//!
//! This experiment runs on the *original* (non-upscaled) fleet — the
//! setting of that sentence — training on 80%, billing the 10% test split
//! under user selections vs each provisioner's recommendations, and
//! extrapolating to 67,000 servers.

use crate::common::{self, Scale};
use lorentz_core::cost::{bill_fleet, CostModel, FleetBill};
use lorentz_core::{LorentzPipeline, ModelKind};
use lorentz_types::Capacity;
use serde::{Deserialize, Serialize};

/// The fleet size the paper extrapolates to.
pub const EXTRAPOLATED_SERVERS: usize = 67_000;

/// The §5.2 cost-evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec52CostResult {
    /// Bill under user-selected capacities (extrapolated).
    pub user: FleetBill,
    /// Bill under hierarchical-provisioner recommendations.
    pub hierarchical: FleetBill,
    /// Bill under target-encoding recommendations.
    pub target_encoding: FleetBill,
    /// Hierarchical cost reduction vs user selection (paper: 27%).
    pub hierarchical_reduction: f64,
    /// Target-encoding cost reduction vs user selection (paper: 8%).
    pub target_encoding_reduction: f64,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Sec52CostResult {
    common::banner(
        "Section 5.2 cost",
        "aggregate vCores provisioned & hours throttled, extrapolated to 67k servers",
    );
    let synth = common::standard_fleet(scale, 101);
    let (train, _val, test) = common::split_rows(synth.fleet.len(), 101);
    let trained = LorentzPipeline::new(common::experiment_config(scale))
        .expect("valid config")
        .train(&synth.fleet.subset(&train))
        .expect("training succeeds");

    // Bill the test split against ground-truth demand.
    let traces = common::traces_for(&test, &synth.ground_truth);
    let user_caps: Vec<Capacity> = test
        .iter()
        .map(|&r| synth.fleet.user_capacities()[r].clone())
        .collect();
    let model_caps = |kind: ModelKind| -> Vec<Capacity> {
        test.iter()
            .map(|&r| {
                let offering = synth.fleet.offerings()[r];
                match trained.provisioner(offering, kind) {
                    Ok(model) => {
                        model
                            .recommend(&synth.fleet.profiles().row(r))
                            .expect("recommendation succeeds")
                            .0
                            .capacity
                    }
                    // Offering without a model (tiny split): keep the user
                    // choice so the comparison stays conservative.
                    Err(_) => synth.fleet.user_capacities()[r].clone(),
                }
            })
            .collect()
    };

    let model = CostModel::default();
    let rightsizer = trained.rightsizer();
    let bill = |caps: &[Capacity]| -> FleetBill {
        bill_fleet(&model, rightsizer, &traces, caps)
            .expect("billing succeeds")
            .extrapolated_to(EXTRAPOLATED_SERVERS)
    };
    let user = bill(&user_caps);
    let hierarchical = bill(&model_caps(ModelKind::Hierarchical));
    let target_encoding = bill(&model_caps(ModelKind::TargetEncoding));

    let result = Sec52CostResult {
        user,
        hierarchical,
        target_encoding,
        hierarchical_reduction: hierarchical.cost_reduction_vs(&user),
        target_encoding_reduction: target_encoding.cost_reduction_vs(&user),
    };

    let fmt = |name: &str, b: &FleetBill, reduction: Option<f64>| {
        println!(
            "{name:>16}: {:>12.0} vCore-hours | {:>8.0} hours throttled | cost {:>10.0}{}",
            b.vcore_hours,
            b.hours_throttled,
            b.cost,
            reduction
                .map(|r| format!(" ({} vs user)", common::pct(r)))
                .unwrap_or_default()
        );
    };
    fmt("user selection", &result.user, None);
    fmt(
        "hierarchical",
        &result.hierarchical,
        Some(result.hierarchical_reduction),
    );
    fmt(
        "target encoding",
        &result.target_encoding,
        Some(result.target_encoding_reduction),
    );
    println!("(paper: 27% hierarchical / 8% target encoding cost reduction)");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provisioners_cut_aggregate_cost_without_exploding_throttling() {
        let r = run(Scale::Quick);
        assert_eq!(r.user.servers, EXTRAPOLATED_SERVERS);
        // Both models reduce aggregate cost vs user selection.
        assert!(
            r.hierarchical_reduction > 0.0,
            "hierarchical {}",
            r.hierarchical_reduction
        );
        assert!(
            r.target_encoding_reduction > 0.0,
            "target encoding {}",
            r.target_encoding_reduction
        );
        // Cheaper must not mean drowning in throttling: within 3x of the
        // user selection's throttled hours (the paper's models accept a
        // modest throttling increase on the raw fleet).
        assert!(r.hierarchical.hours_throttled <= r.user.hours_throttled * 3.0 + 1.0);
    }
}
