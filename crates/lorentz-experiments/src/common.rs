//! Shared experiment infrastructure: fleet presets, splits, rightsizing
//! sweeps, and plain-text rendering helpers.

use lorentz_core::{FleetDataset, LorentzConfig, RightsizeOutcome, Rightsizer};
use lorentz_simdata::fleet::{FleetConfig, SyntheticFleet};
use lorentz_simdata::upscale::{upscale_fleet, UpscaleConfig, UpscaleReport};
use lorentz_telemetry::generators::SamplingConfig;
use lorentz_telemetry::UsageTrace;
use lorentz_types::{LorentzError, SkuCatalog};

/// Experiment size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: ~800 servers, 1-day traces. Seconds per experiment.
    Quick,
    /// Paper-sized shape: several thousand servers, 7-day traces.
    Full,
}

impl Scale {
    /// Parses process args: `--full` selects [`Scale::Full`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Fleet size at this scale.
    pub fn n_servers(self) -> usize {
        match self {
            Scale::Quick => 800,
            Scale::Full => 6000,
        }
    }

    /// Telemetry window at this scale.
    pub fn sampling(self) -> SamplingConfig {
        match self {
            Scale::Quick => SamplingConfig {
                duration_secs: 86_400.0,
                mean_interval_secs: 60.0,
                jitter_frac: 0.2,
            },
            Scale::Full => SamplingConfig::paper_default(),
        }
    }

    /// Simulation repetitions for the §5.3 experiments.
    pub fn sim_repeats(self) -> usize {
        match self {
            Scale::Quick => 20,
            Scale::Full => 100,
        }
    }
}

/// The standard synthetic fleet: calibrated to the §5.2 starting point
/// (mean max utilization ≈ 1.2 vCores, the rightsizer picking the smallest
/// SKUs for the vast majority of DBs). Used by the provisioner experiments
/// and as the upscaling input.
pub fn standard_fleet(scale: Scale, seed: u64) -> SyntheticFleet {
    FleetConfig {
        n_servers: scale.n_servers(),
        seed,
        sampling: scale.sampling(),
        ..lorentz_simdata::scenarios::paper_section52()
    }
    .generate()
    .expect("standard fleet config is valid")
}

/// The fleet calibrated to the §2.2 / Figure-1 provisioning statistics:
/// demand sits near the smallest SKUs' capacity so that the minimum default
/// is the right choice only about half the time — the regime in which the
/// paper's 43% well / 19% over / 38% under mix arises. (The paper's own
/// §2.2 and §5.2 numbers describe the same production fleet from these two
/// angles; a single synthetic calibration cannot hit both exactly, so the
/// dataset-statistics experiments use this preset and the provisioner
/// experiments use [`standard_fleet`]. See EXPERIMENTS.md.)
pub fn stats_fleet(scale: Scale, seed: u64) -> SyntheticFleet {
    FleetConfig {
        n_servers: scale.n_servers(),
        seed,
        sampling: scale.sampling(),
        ..lorentz_simdata::scenarios::paper_section22()
    }
    .generate()
    .expect("stats fleet config is valid")
}

/// The §5.2 upscaled fleet (standard fleet + paper upscaling).
pub fn upscaled_fleet(scale: Scale, seed: u64) -> (SyntheticFleet, UpscaleReport) {
    let mut fleet = standard_fleet(scale, seed);
    let report =
        upscale_fleet(&mut fleet, &UpscaleConfig::default()).expect("upscale config is valid");
    (fleet, report)
}

/// The experiment-wide Lorentz configuration: Table 2 defaults, with a
/// trimmed tree count at `Quick` scale to keep CI fast.
pub fn experiment_config(scale: Scale) -> LorentzConfig {
    let mut config = LorentzConfig::paper_defaults();
    if scale == Scale::Quick {
        config.target_encoding.boosting.n_trees = 50;
        // The paper's N is sized for a 77k-server fleet; scale the minimum
        // bucket size down with the CI-sized fleet.
        config.hierarchical.min_bucket = 5;
    }
    config
}

/// Rightsizes every record of a fleet, returning per-record outcomes.
///
/// # Errors
/// Propagates rightsizing failures.
pub fn rightsize_fleet(
    config: &LorentzConfig,
    fleet: &FleetDataset,
) -> Result<Vec<RightsizeOutcome>, LorentzError> {
    let rightsizer = Rightsizer::new(&config.rightsizer)?;
    (0..fleet.len())
        .map(|i| {
            let catalog = SkuCatalog::azure_postgres(fleet.offerings()[i]);
            rightsizer.rightsize(&fleet.traces()[i], &fleet.user_capacities()[i], &catalog)
        })
        .collect()
}

/// Splits fleet rows 80/10/10, returning `(train, val, test)` row sets.
pub fn split_rows(n: usize, seed: u64) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let s = lorentz_ml::three_way_split(n, 0.8, 0.1, 0.1, seed).expect("n large enough");
    (s.train, s.val, s.test)
}

/// Selects ground-truth traces for the given rows.
pub fn traces_for(rows: &[usize], ground_truth: &[UsageTrace]) -> Vec<UsageTrace> {
    rows.iter().map(|&r| ground_truth[r].clone()).collect()
}

/// Renders a unit-interval value as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Renders a compact ASCII histogram of `values` over the given bucket
/// edges (`<edge0`, `[edge0, edge1)`, ..., `>= last`).
pub fn ascii_histogram(values: &[f64], edges: &[f64], width: usize) -> String {
    let mut counts = vec![0usize; edges.len() + 1];
    for &v in values {
        let idx = edges.partition_point(|&e| e <= v);
        counts[idx] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let label = if i == 0 {
            format!("      < {:>6.1}", edges[0])
        } else if i == edges.len() {
            format!("     >= {:>6.1}", edges[edges.len() - 1])
        } else {
            format!("{:>6.1}-{:>6.1}", edges[i - 1], edges[i])
        };
        let bar_len = c * width / max;
        out.push_str(&format!(
            "{label} | {:<width$} {c}\n",
            "#".repeat(bar_len),
            width = width
        ));
    }
    out
}

/// Renders a two-column table with a header.
pub fn kv_table(title: &str, rows: &[(String, String)]) -> String {
    let key_w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0).max(4);
    let mut out = format!("== {title} ==\n");
    for (k, v) in rows {
        out.push_str(&format!("  {k:<key_w$}  {v}\n"));
    }
    out
}

/// Prints an experiment banner.
pub fn banner(id: &str, description: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{id}: {description}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fleet_builds() {
        let f = standard_fleet(Scale::Quick, 1);
        assert_eq!(f.fleet.len(), Scale::Quick.n_servers());
    }

    #[test]
    fn histogram_buckets_cover_range() {
        let h = ascii_histogram(&[0.5, 1.5, 2.5, 10.0], &[1.0, 2.0, 4.0], 20);
        assert_eq!(h.lines().count(), 4);
        assert!(h.contains('#'));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.4321), "43.2%");
    }

    #[test]
    fn split_rows_partitions() {
        let (tr, va, te) = split_rows(100, 0);
        assert_eq!(tr.len() + va.len() + te.len(), 100);
    }
}
