//! Figure 14: convergence time over the signal-error × Stage-2-error grid.
//!
//! Paper protocol: for every element of the Cartesian product of signal
//! error {0%, 13%, 26%, 40%} and Stage-2 error σ {0.0, 0.1, 0.25}, run
//! simulations at signal rates {10%, 40%, 70%, 100%} and average the
//! convergence times (first iteration where the 80th percentile of
//! |λ̂ − λ*| ≤ 0.5). Accurate signal classification overcomes both sparse
//! signals and inaccurate Stage-2 predictions.

use crate::common::{self, Scale};
use lorentz_simdata::persim::{PersonalizationSim, PersonalizationSimConfig};
use serde::{Deserialize, Serialize};

/// Maximum iterations before declaring non-convergence.
pub const MAX_ITERS: usize = 150;

/// One grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// Signal error (sign-flip probability).
    pub signal_noise: f64,
    /// Stage-2 error σ.
    pub stage2_sigma: f64,
    /// Convergence iterations averaged over the signal rates (capped at
    /// [`MAX_ITERS`] for non-converging runs).
    pub mean_convergence_iters: f64,
}

/// The Figure-14 reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig14Result {
    /// All grid cells, row-major by noise then σ.
    pub cells: Vec<GridCell>,
}

/// The paper's grid axes.
pub const SIGNAL_NOISES: [f64; 4] = [0.0, 0.13, 0.26, 0.40];
/// Stage-2 error axis.
pub const SIGMAS: [f64; 3] = [0.0, 0.1, 0.25];
/// Signal-rate axis averaged over per cell.
pub const SIGNAL_RATES: [f64; 4] = [0.10, 0.40, 0.70, 1.00];

/// Runs the grid. At `Quick` scale each (cell, rate) uses 3 simulation
/// repeats; at `Full`, 10.
pub fn run(scale: Scale) -> Fig14Result {
    common::banner(
        "Figure 14",
        "convergence time vs signal error x stage-2 error (avg over signal rates)",
    );
    let repeats = match scale {
        Scale::Quick => 3,
        Scale::Full => 10,
    };

    let mut cells = Vec::new();
    println!(
        "{:>12} {:>8} {:>8} {:>8}",
        "signal_noise", "s=0.0", "s=0.1", "s=0.25"
    );
    for (noise_idx, &noise) in SIGNAL_NOISES.iter().enumerate() {
        let mut row = Vec::new();
        for (sigma_idx, &sigma) in SIGMAS.iter().enumerate() {
            let mut total = 0usize;
            let mut count = 0usize;
            for (rate_idx, &rate) in SIGNAL_RATES.iter().enumerate() {
                for rep in 0..repeats {
                    // Collision-free seed: each (cell, rate, rep) gets its
                    // own RNG stream.
                    let seed = 5000
                        + rep as u64
                        + 100 * rate_idx as u64
                        + 1000 * noise_idx as u64
                        + 10_000 * sigma_idx as u64;
                    let mut sim = PersonalizationSim::new(PersonalizationSimConfig {
                        signal_noise: noise,
                        stage2_sigma: sigma,
                        signal_rate: rate,
                        seed,
                        ..PersonalizationSimConfig::default()
                    })
                    .expect("sim config valid");
                    let (iters, _) = sim.run_to_convergence(MAX_ITERS);
                    total += iters;
                    count += 1;
                }
            }
            let mean = total as f64 / count as f64;
            row.push(mean);
            cells.push(GridCell {
                signal_noise: noise,
                stage2_sigma: sigma,
                mean_convergence_iters: mean,
            });
        }
        println!(
            "{:>12} {:>8.1} {:>8.1} {:>8.1}",
            common::pct(noise),
            row[0],
            row[1],
            row[2]
        );
    }
    Fig14Result { cells }
}

impl Fig14Result {
    /// Mean convergence iterations at a given signal noise (across σ).
    pub fn mean_at_noise(&self, noise: f64) -> f64 {
        let cells: Vec<&GridCell> = self
            .cells
            .iter()
            .filter(|c| (c.signal_noise - noise).abs() < 1e-9)
            .collect();
        cells.iter().map(|c| c.mean_convergence_iters).sum::<f64>() / cells.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_signals_converge_fastest() {
        let r = run(Scale::Quick);
        assert_eq!(r.cells.len(), SIGNAL_NOISES.len() * SIGMAS.len());
        let clean = r.mean_at_noise(0.0);
        let noisy = r.mean_at_noise(0.40);
        // The paper's shape: convergence slows sharply as signal error
        // grows.
        assert!(
            clean < noisy,
            "clean signals ({clean:.1} iters) should beat noisy ({noisy:.1})"
        );
        // With perfect signals, convergence is fast in absolute terms.
        assert!(clean < 60.0, "clean={clean}");
    }
}
