//! Figure 11: slack at the <10% throttling operating point.
//!
//! Paper result: selecting the point on each Pareto curve that minimizes
//! slack with a throttling ratio below 10%, the hierarchical provisioner
//! reduces mean slack by 66% and the target encoder by 54% relative to the
//! baseline.

use crate::common::{self, Scale};
use crate::fig10;
use lorentz_core::evaluate::{min_slack_under_throttle_bound, EvalPoint};
use serde::{Deserialize, Serialize};

/// Throttling bound of the operating point.
pub const THROTTLE_BOUND: f64 = 0.10;

/// The Figure-11 reproduction result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Operating point of the hierarchical provisioner.
    pub hierarchical: EvalPoint,
    /// Operating point of the target encoder.
    pub target_encoding: EvalPoint,
    /// Operating point of the default baseline.
    pub baseline: EvalPoint,
    /// Hierarchical mean-slack reduction vs baseline (paper: 66%).
    pub hierarchical_reduction: f64,
    /// Target-encoding mean-slack reduction vs baseline (paper: 54%).
    pub target_encoding_reduction: f64,
}

/// Runs the experiment on the Figure-10 curves.
pub fn run(scale: Scale) -> Fig11Result {
    common::banner(
        "Figure 11",
        "slack at the minimum-slack point with throttling < 10%",
    );
    let curves = fig10::evaluate_curves_seeded(scale, 1.0, &fig10::headline_seeds(scale));
    let pick = |c: &[EvalPoint], name: &str| -> EvalPoint {
        min_slack_under_throttle_bound(c, THROTTLE_BOUND)
            .unwrap_or_else(|| panic!("{name} has no point under the throttling bound"))
    };
    let hierarchical = pick(&curves.hierarchical, "hierarchical");
    let target_encoding = pick(&curves.target_encoding, "target encoding");
    let baseline = pick(&curves.baseline, "baseline");

    let result = Fig11Result {
        hierarchical,
        target_encoding,
        baseline,
        hierarchical_reduction: 1.0
            - hierarchical.metrics.mean_abs_slack / baseline.metrics.mean_abs_slack,
        target_encoding_reduction: 1.0
            - target_encoding.metrics.mean_abs_slack / baseline.metrics.mean_abs_slack,
    };

    println!(
        "{}",
        common::kv_table(
            "operating points (min slack, throttling < 10%)",
            &[
                (
                    "baseline".into(),
                    format!(
                        "slack {:.3}, throttling {}",
                        baseline.metrics.mean_abs_slack,
                        common::pct(baseline.metrics.throttling_ratio)
                    ),
                ),
                (
                    "hierarchical".into(),
                    format!(
                        "slack {:.3}, throttling {} (reduction {} — paper 66%)",
                        hierarchical.metrics.mean_abs_slack,
                        common::pct(hierarchical.metrics.throttling_ratio),
                        common::pct(result.hierarchical_reduction)
                    ),
                ),
                (
                    "target encoding".into(),
                    format!(
                        "slack {:.3}, throttling {} (reduction {} — paper 54%)",
                        target_encoding.metrics.mean_abs_slack,
                        common::pct(target_encoding.metrics.throttling_ratio),
                        common::pct(result.target_encoding_reduction)
                    ),
                ),
            ],
        )
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_models_cut_slack_substantially_at_the_operating_point() {
        let r = run(Scale::Quick);
        assert!(r.hierarchical.metrics.throttling_ratio < THROTTLE_BOUND);
        assert!(r.target_encoding.metrics.throttling_ratio < THROTTLE_BOUND);
        // Shape check: both models reduce slack vs baseline.
        assert!(
            r.hierarchical_reduction > 0.2,
            "hierarchical reduction {}",
            r.hierarchical_reduction
        );
        assert!(
            r.target_encoding_reduction > 0.1,
            "target encoding reduction {}",
            r.target_encoding_reduction
        );
    }
}
