//! Regenerates Figure 14 (convergence grid).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::fig14::run(scale);
}
