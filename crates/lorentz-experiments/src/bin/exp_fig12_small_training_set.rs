//! Regenerates Figure 12 (10% training set robustness).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::fig12::run(scale);
}
