//! Regenerates the model-family ablation.
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::ablations::model_family(scale);
}
