//! Regenerates Table 1 (throttle filters).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::tab01::run(scale);
}
