//! Runs every experiment in paper order.
fn main() {
    use lorentz_experiments as exp;
    let scale = exp::Scale::from_args();
    exp::tab02::run(scale);
    exp::fig01::run(scale);
    exp::fig02::run(scale);
    exp::fig04::run(scale);
    exp::tab01::run(scale);
    exp::fig09::run(scale);
    exp::sec52::run(scale);
    exp::sec52_cost::run(scale);
    exp::fig10::run(scale);
    exp::fig11::run(scale);
    exp::fig12::run(scale);
    exp::fig13::run(scale);
    exp::fig14::run(scale);
    exp::ablations::missing_data(scale);
    exp::ablations::signal_sharing(scale);
    exp::ablations::binning(scale);
    exp::ablations::hierarchy(scale);
    exp::ablations::model_family(scale);
    println!("\nAll experiments complete.");
}
