//! Regenerates Figure 2 (capacity distributions).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::fig02::run(scale);
}
