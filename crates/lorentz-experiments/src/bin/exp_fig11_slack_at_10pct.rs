//! Regenerates Figure 11 (slack at <10% throttling).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::fig11::run(scale);
}
