//! Regenerates Figure 9 (rightsizing gains).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::fig09::run(scale);
}
