//! Regenerates the Section 5.2 aggregate-cost evaluation (67k-server extrapolation).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::sec52_cost::run(scale);
}
