//! Regenerates Figure 1 (user provisioning quality).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::fig01::run(scale);
}
