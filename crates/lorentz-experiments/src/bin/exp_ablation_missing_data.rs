//! Regenerates the missing-data encoding ablation.
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::ablations::missing_data(scale);
}
