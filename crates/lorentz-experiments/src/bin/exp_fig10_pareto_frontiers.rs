//! Regenerates Figure 10 (Pareto frontiers).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::fig10::run(scale);
}
