//! Regenerates Figure 13 (personalization convergence).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::fig13::run(scale);
}
