//! Regenerates Figure 4 (slack/throttling examples).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::fig04::run(scale);
}
