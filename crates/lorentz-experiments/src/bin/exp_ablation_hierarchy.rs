//! Regenerates the hierarchy-threshold ablation.
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::ablations::hierarchy(scale);
}
