//! Regenerates the signal-sharing ablation.
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::ablations::signal_sharing(scale);
}
