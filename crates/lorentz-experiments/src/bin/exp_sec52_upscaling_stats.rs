//! Regenerates the Section 5.2 upscaling statistics.
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::sec52::run(scale);
}
