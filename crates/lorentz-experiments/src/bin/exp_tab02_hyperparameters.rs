//! Regenerates Table 2 (hyperparameters).
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::tab02::run(scale);
}
