//! Regenerates the binning & K ablation.
fn main() {
    let scale = lorentz_experiments::Scale::from_args();
    lorentz_experiments::ablations::binning(scale);
}
