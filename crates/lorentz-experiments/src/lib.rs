//! Experiment harness regenerating every table and figure of the Lorentz
//! paper (§5 plus the dataset statistics of §2.2).
//!
//! Each module implements one experiment as a library function returning a
//! serializable result (so integration tests can assert on the headline
//! claims), and a thin binary under `src/bin/` prints it. Run everything
//! with:
//!
//! ```text
//! cargo run -p lorentz-experiments --release --bin exp_all
//! ```
//!
//! Scale: experiments accept a [`Scale`] — `Quick` for CI-sized runs,
//! `Full` for paper-sized runs (pass `--full` to any binary).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod common;
pub mod fig01;
pub mod fig02;
pub mod fig04;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod sec52;
pub mod sec52_cost;
pub mod tab01;
pub mod tab02;

pub use common::Scale;
