//! Figure 12: robustness to training-set size.
//!
//! Paper result: retrained on a random 10% of the training split, the
//! hierarchical model performs nearly identically while the target encoder
//! degrades — data-scarce deployments should prefer the hierarchical
//! provisioner.

use crate::common::{self, Scale};
use crate::fig10;
use crate::fig11::THROTTLE_BOUND;
use lorentz_core::evaluate::min_slack_under_throttle_bound;
use serde::{Deserialize, Serialize};

/// Operating-point slack for one model at full vs subsampled training data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Mean slack at the full training set's operating point.
    pub full_slack: f64,
    /// Mean slack when trained on the small subsample.
    pub small_slack: f64,
    /// Relative degradation (positive = worse with less data).
    pub degradation: f64,
}

/// The Figure-12 reproduction result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Hierarchical provisioner row.
    pub hierarchical: RobustnessRow,
    /// Target-encoding provisioner row.
    pub target_encoding: RobustnessRow,
}

/// The subsample kept for the data-scarce arm. The paper keeps 10% of a
/// 77k-server fleet (~7.7k rows) — still far above the hierarchical
/// model's `min_bucket` threshold. 10% of the CI-sized fleet is ~64 rows,
/// which starves every bucket and tests a different regime entirely, so
/// `Quick` keeps 30% to preserve the paper's rows-per-bucket ratio.
fn subsample_keep(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => 0.3,
        Scale::Full => 0.1,
    }
}

/// Runs the experiment: evaluate both models with the full training split
/// and with a small subsample (see [`subsample_keep`]).
pub fn run(scale: Scale) -> Fig12Result {
    let keep = subsample_keep(scale);
    common::banner(
        "Figure 12",
        &format!(
            "provisioner robustness to a {:.0}% training subsample",
            100.0 * keep
        ),
    );
    let seeds = fig10::headline_seeds(scale);
    let full = fig10::evaluate_curves_seeded(scale, 1.0, &seeds);
    let small = fig10::evaluate_curves_seeded(scale, keep, &seeds);
    println!(
        "training rows: full {}, small {}",
        full.train_rows, small.train_rows
    );

    let slack_of = |curve: &[lorentz_core::evaluate::EvalPoint]| -> f64 {
        min_slack_under_throttle_bound(curve, THROTTLE_BOUND)
            .map(|p| p.metrics.mean_abs_slack)
            .unwrap_or(f64::INFINITY)
    };
    let row = |full_slack: f64, small_slack: f64| RobustnessRow {
        full_slack,
        small_slack,
        degradation: small_slack / full_slack - 1.0,
    };
    let result = Fig12Result {
        hierarchical: row(slack_of(&full.hierarchical), slack_of(&small.hierarchical)),
        target_encoding: row(
            slack_of(&full.target_encoding),
            slack_of(&small.target_encoding),
        ),
    };

    for (name, r, note) in [
        (
            "hierarchical",
            result.hierarchical,
            "paper: nearly equivalent",
        ),
        ("target encoding", result.target_encoding, "paper: degrades"),
    ] {
        println!(
            "{name:>16}: slack {:.3} -> {:.3} on the subsample ({:+.1}%) [{note}]",
            r.full_slack,
            r.small_slack,
            100.0 * r.degradation
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_is_more_robust_to_small_training_sets() {
        let r = run(Scale::Quick);
        // The paper's shape: the hierarchical model's degradation is
        // smaller than the target encoder's.
        assert!(
            r.hierarchical.degradation <= r.target_encoding.degradation + 0.05,
            "hierarchical {:+.3} vs target encoding {:+.3}",
            r.hierarchical.degradation,
            r.target_encoding.degradation
        );
        assert!(r.hierarchical.full_slack.is_finite());
        assert!(r.target_encoding.small_slack.is_finite());
    }
}
