//! Figure 13: Stage-3 convergence.
//!
//! Paper result: with signal rate 40%, signal noise 13%, and Stage-2 error
//! σ = 0.1, customer profiles reach an RMSE of ≈0.15 within 30 iterations,
//! averaged over repeated simulations (plotted with a point-wise 95%
//! confidence band); learning ceases once systems are accurately
//! provisioned.

use crate::common::{self, Scale};
use lorentz_simdata::persim::{PersonalizationSim, PersonalizationSimConfig};
use serde::{Deserialize, Serialize};

/// Number of iterations plotted.
pub const ITERATIONS: usize = 50;

/// The Figure-13 reproduction result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig13Result {
    /// Mean RMSE per iteration across simulations.
    pub mean_rmse: Vec<f64>,
    /// Point-wise 2-standard-error half-width per iteration.
    pub two_se: Vec<f64>,
    /// First iteration where the mean 80th-percentile error ≤ 0.5 (the
    /// §5.3 convergence criterion); `None` if never reached.
    pub convergence_iteration: Option<usize>,
    /// Final mean RMSE.
    pub final_rmse: f64,
}

/// Runs `repeats` simulations with the paper's settings and aggregates the
/// per-iteration RMSE.
pub fn run(scale: Scale) -> Fig13Result {
    common::banner(
        "Figure 13",
        "personalization convergence (signal rate 40%, noise 13%, sigma 0.1)",
    );
    let repeats = scale.sim_repeats();
    let mut rmse_runs: Vec<Vec<f64>> = Vec::with_capacity(repeats);
    let mut p80_runs: Vec<Vec<f64>> = Vec::with_capacity(repeats);
    for rep in 0..repeats {
        let mut sim = PersonalizationSim::new(PersonalizationSimConfig {
            seed: 1000 + rep as u64,
            ..PersonalizationSimConfig::default()
        })
        .expect("sim config valid");
        let mut rmse = Vec::with_capacity(ITERATIONS);
        let mut p80 = Vec::with_capacity(ITERATIONS);
        for _ in 0..ITERATIONS {
            let m = sim.step();
            rmse.push(m.rmse);
            p80.push(m.p80_abs_error);
        }
        rmse_runs.push(rmse);
        p80_runs.push(p80);
    }

    let mean_at = |runs: &[Vec<f64>], i: usize| -> f64 {
        runs.iter().map(|r| r[i]).sum::<f64>() / runs.len() as f64
    };
    let mut mean_rmse = Vec::with_capacity(ITERATIONS);
    let mut two_se = Vec::with_capacity(ITERATIONS);
    for i in 0..ITERATIONS {
        let mean = mean_at(&rmse_runs, i);
        let var = rmse_runs
            .iter()
            .map(|r| (r[i] - mean) * (r[i] - mean))
            .sum::<f64>()
            / (repeats - 1).max(1) as f64;
        mean_rmse.push(mean);
        two_se.push(2.0 * (var / repeats as f64).sqrt());
    }
    let convergence_iteration = (0..ITERATIONS)
        .find(|&i| mean_at(&p80_runs, i) <= 0.5)
        .map(|i| i + 1);

    println!("{:>6} {:>10} {:>10}", "iter", "mean RMSE", "+-2SE");
    for i in (0..ITERATIONS).step_by(5) {
        println!("{:>6} {:>10.3} {:>10.3}", i + 1, mean_rmse[i], two_se[i]);
    }
    println!(
        "convergence (p80 |err| <= 0.5): iteration {:?} (paper: RMSE 0.15 within 30 iterations)",
        convergence_iteration
    );

    let final_rmse = *mean_rmse.last().expect("iterations > 0");
    println!("final mean RMSE: {final_rmse:.3}");
    Fig13Result {
        mean_rmse,
        two_se,
        convergence_iteration,
        final_rmse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_is_fast_and_error_drops() {
        let r = run(Scale::Quick);
        let conv = r.convergence_iteration.expect("must converge");
        assert!(conv <= 40, "converged at {conv}");
        // Error drops to a small fraction of its start.
        assert!(r.final_rmse < r.mean_rmse[0] / 2.5);
        assert!(r.final_rmse < 0.6, "final RMSE {}", r.final_rmse);
        // The confidence band tightens as profiles converge.
        assert!(r.two_se.last().unwrap() < &r.two_se[0].max(0.2));
    }
}
