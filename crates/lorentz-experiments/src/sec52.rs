//! §5.2 upscaling statistics.
//!
//! Paper numbers: before upscaling, mean max utilization is 1.2 vCores and
//! the rightsizer picks the minimum capacity for 86% of DBs (one of the two
//! smallest 95%); after upscaling, mean max utilization rises to 9.0 vCores
//! and only 55% of workloads rightsize to one of the two smallest choices.

use crate::common::{self, Scale};
use lorentz_core::FleetDataset;
use lorentz_simdata::fleet::SyntheticFleet;
use lorentz_types::SkuCatalog;
use serde::{Deserialize, Serialize};

/// Rightsized-label concentration statistics for one fleet state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Mean of per-workload maximum (ground-truth) utilization, vCores.
    pub mean_max_utilization: f64,
    /// Fraction of workloads rightsized to the minimum catalog choice.
    pub rightsized_to_minimum: f64,
    /// Fraction rightsized to one of the two smallest choices.
    pub rightsized_to_two_smallest: f64,
}

/// Before/after comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sec52Result {
    /// Original fleet.
    pub before: FleetStats,
    /// Upscaled fleet.
    pub after: FleetStats,
    /// Mean χ across workloads.
    pub mean_chi: f64,
}

fn stats(
    scale: Scale,
    fleet: &FleetDataset,
    ground_truth: &[lorentz_telemetry::UsageTrace],
) -> FleetStats {
    let config = common::experiment_config(scale);
    let outcomes = common::rightsize_fleet(&config, fleet).expect("rightsizing succeeds");
    let n = fleet.len() as f64;
    let mean_max = ground_truth.iter().map(|t| t.peak()[0]).sum::<f64>() / n;
    let mut minimum = 0usize;
    let mut two_smallest = 0usize;
    for (i, o) in outcomes.iter().enumerate() {
        let cat = SkuCatalog::azure_postgres(fleet.offerings()[i]);
        let idx = cat
            .index_of(&o.capacity)
            .expect("rightsized SKU in catalog");
        if idx == 0 {
            minimum += 1;
        }
        if idx <= 1 {
            two_smallest += 1;
        }
    }
    FleetStats {
        mean_max_utilization: mean_max,
        rightsized_to_minimum: minimum as f64 / n,
        rightsized_to_two_smallest: two_smallest as f64 / n,
    }
}

fn print_stats(label: &str, s: &FleetStats) {
    println!(
        "{}",
        common::kv_table(
            label,
            &[
                (
                    "mean max utilization".into(),
                    format!("{:.2} vCores", s.mean_max_utilization),
                ),
                (
                    "rightsized to minimum".into(),
                    common::pct(s.rightsized_to_minimum),
                ),
                (
                    "rightsized to two smallest".into(),
                    common::pct(s.rightsized_to_two_smallest),
                ),
            ],
        )
    );
}

/// Runs the experiment on the standard and upscaled fleets.
pub fn run(scale: Scale) -> Sec52Result {
    common::banner(
        "Section 5.2 stats",
        "synthetic workload upscaling diversifies the label set",
    );
    let before_fleet: SyntheticFleet = common::standard_fleet(scale, 101);
    let before = stats(scale, &before_fleet.fleet, &before_fleet.ground_truth);

    let (after_fleet, report) = common::upscaled_fleet(scale, 101);
    let after = stats(scale, &after_fleet.fleet, &after_fleet.ground_truth);

    print_stats(
        "before upscaling (paper: 1.2 vCores mean max, 86% minimum, 95% two smallest)",
        &before,
    );
    print_stats(
        "after upscaling (paper: 9.0 vCores mean max, 55% two smallest)",
        &after,
    );
    println!("mean chi = {:.2} (max {})", report.mean_chi, report.max_chi);

    Sec52Result {
        before,
        after,
        mean_chi: report.mean_chi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upscaling_diversifies_labels() {
        let r = run(Scale::Quick);
        // Left-skewed original: most workloads rightsize small.
        assert!(
            r.before.rightsized_to_two_smallest > 0.6,
            "before: {}",
            r.before.rightsized_to_two_smallest
        );
        // Upscaling raises demand and spreads the labels.
        assert!(r.after.mean_max_utilization > 2.0 * r.before.mean_max_utilization);
        assert!(
            r.after.rightsized_to_two_smallest < r.before.rightsized_to_two_smallest,
            "after {} !< before {}",
            r.after.rightsized_to_two_smallest,
            r.before.rightsized_to_two_smallest
        );
        assert!(r.mean_chi > 0.5 && r.mean_chi < 3.0);
    }
}
