//! Figure 1 / §2.2 dataset statistics: how well users provision.
//!
//! Paper findings on the production fleet: users pick the ideal capacity
//! only 43% of the time (19% over-, 38% under-provision, relative to the
//! rightsized capacities); dev DBs are under-provisioned 54% and
//! over-provisioned only 6% of the time; 80% of dev DBs sit on the minimum
//! (default) capacity but it is appropriate for only 38% of them; 63% of
//! all users select the minimum.

use crate::common::{self, Scale};
use lorentz_core::rightsizer::ProvisioningVerdict;
use lorentz_types::SkuCatalog;
use serde::{Deserialize, Serialize};

/// Verdict shares for one population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerdictShares {
    /// Fraction correctly provisioned.
    pub well: f64,
    /// Fraction over-provisioned.
    pub over: f64,
    /// Fraction under-provisioned.
    pub under: f64,
}

impl VerdictShares {
    fn from_verdicts(verdicts: &[ProvisioningVerdict]) -> Self {
        let n = verdicts.len().max(1) as f64;
        let count =
            |v: ProvisioningVerdict| verdicts.iter().filter(|&&x| x == v).count() as f64 / n;
        Self {
            well: count(ProvisioningVerdict::WellProvisioned),
            over: count(ProvisioningVerdict::OverProvisioned),
            under: count(ProvisioningVerdict::UnderProvisioned),
        }
    }
}

/// The Figure-1 reproduction result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig01Result {
    /// All servers.
    pub overall: VerdictShares,
    /// Development (Burstable) servers.
    pub dev: VerdictShares,
    /// Production (General Purpose + Memory Optimized) servers.
    pub prod: VerdictShares,
    /// Fraction of all users selecting the minimum (default) SKU.
    pub picked_minimum: f64,
    /// Fraction of dev users selecting the minimum SKU.
    pub dev_picked_minimum: f64,
    /// Among dev servers on the minimum SKU, the fraction for which the
    /// minimum is actually the rightsized choice.
    pub dev_minimum_appropriate: f64,
}

/// Runs the experiment and prints the figure's rows.
pub fn run(scale: Scale) -> Fig01Result {
    common::banner(
        "Figure 1",
        "users improperly provision many resources (user vs rightsized)",
    );
    let synth = common::stats_fleet(scale, 101);
    let config = common::experiment_config(scale);
    let outcomes = common::rightsize_fleet(&config, &synth.fleet).expect("rightsizing succeeds");

    let verdicts: Vec<ProvisioningVerdict> = outcomes.iter().map(|o| o.verdict).collect();
    let dev_rows: Vec<usize> = (0..synth.fleet.len())
        .filter(|&i| synth.fleet.offerings()[i].is_development())
        .collect();
    let prod_rows: Vec<usize> = (0..synth.fleet.len())
        .filter(|&i| !synth.fleet.offerings()[i].is_development())
        .collect();
    let pick = |rows: &[usize]| -> Vec<ProvisioningVerdict> {
        rows.iter().map(|&r| verdicts[r]).collect()
    };

    let minimums: Vec<bool> = (0..synth.fleet.len())
        .map(|i| {
            let cat = SkuCatalog::azure_postgres(synth.fleet.offerings()[i]);
            synth.fleet.user_capacities()[i] == cat.minimum().capacity
        })
        .collect();
    let picked_minimum = minimums.iter().filter(|&&m| m).count() as f64 / synth.fleet.len() as f64;
    let dev_picked_minimum = if dev_rows.is_empty() {
        0.0
    } else {
        dev_rows.iter().filter(|&&r| minimums[r]).count() as f64 / dev_rows.len() as f64
    };
    let dev_on_min: Vec<usize> = dev_rows.iter().copied().filter(|&r| minimums[r]).collect();
    let dev_minimum_appropriate = if dev_on_min.is_empty() {
        0.0
    } else {
        dev_on_min
            .iter()
            .filter(|&&r| verdicts[r] == ProvisioningVerdict::WellProvisioned)
            .count() as f64
            / dev_on_min.len() as f64
    };

    let result = Fig01Result {
        overall: VerdictShares::from_verdicts(&verdicts),
        dev: VerdictShares::from_verdicts(&pick(&dev_rows)),
        prod: VerdictShares::from_verdicts(&pick(&prod_rows)),
        picked_minimum,
        dev_picked_minimum,
        dev_minimum_appropriate,
    };

    let fmt = |s: VerdictShares| {
        format!(
            "well {} / over {} / under {}",
            common::pct(s.well),
            common::pct(s.over),
            common::pct(s.under)
        )
    };
    println!(
        "{}",
        common::kv_table(
            "provisioning quality (paper: 43% / 19% / 38% overall)",
            &[
                ("overall".into(), fmt(result.overall)),
                ("dev (Burstable)".into(), fmt(result.dev)),
                ("prod (GP + MO)".into(), fmt(result.prod)),
                (
                    "picked minimum SKU (paper 63%)".into(),
                    common::pct(result.picked_minimum),
                ),
                (
                    "dev picked minimum (paper 80%)".into(),
                    common::pct(result.dev_picked_minimum),
                ),
                (
                    "minimum appropriate for dev pickers (paper 38%)".into(),
                    common::pct(result.dev_minimum_appropriate),
                ),
            ],
        )
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one_and_misprovisioning_dominates() {
        let r = run(Scale::Quick);
        for s in [r.overall, r.dev, r.prod] {
            assert!((s.well + s.over + s.under - 1.0).abs() < 1e-9);
        }
        // The headline claim's shape: a majority of users misprovision.
        assert!(r.overall.well < 0.65, "well={}", r.overall.well);
        assert!(r.overall.under > 0.15, "under={}", r.overall.under);
        // Minimum-default behaviour matches the calibrated generator.
        assert!(r.picked_minimum > 0.4);
        assert!(r.dev_picked_minimum > 0.6);
    }
}
