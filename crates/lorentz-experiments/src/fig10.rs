//! Figure 10: slack/throttling Pareto frontiers of the provisioners vs the
//! default-value baselines, on the upscaled synthetic workloads.
//!
//! Models are trained on an 80% split of the upscaled fleet and evaluated
//! on the 10% test split against ground-truth demand. Pareto curves come
//! from scaling each model's raw predictions by powers of two before
//! discretization; the baseline assigns one fixed default per offering
//! (aligned across offerings by relative catalog rung).

use crate::common::{self, Scale};
use lorentz_core::evaluate::{self, EvalPoint};
use lorentz_core::{LorentzPipeline, ModelKind};
use lorentz_types::{Capacity, ServerOffering, SkuCatalog};
use serde::{Deserialize, Serialize};

/// The number of aligned baseline rungs.
const BASELINE_RUNGS: usize = 10;

/// The three Pareto curves, averaged across offerings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveSet {
    /// Hierarchical provisioner curve (indexed by scale exponent).
    pub hierarchical: Vec<EvalPoint>,
    /// Target-encoding provisioner curve.
    pub target_encoding: Vec<EvalPoint>,
    /// Default-value baseline curve (indexed by relative catalog rung;
    /// `scale_log2` holds the mean log2 default capacity).
    pub baseline: Vec<EvalPoint>,
    /// Test rows evaluated.
    pub test_rows: usize,
    /// Training rows used.
    pub train_rows: usize,
}

/// The seeds averaged over by the headline experiments.
pub fn headline_seeds(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Quick => vec![101, 202, 303],
        Scale::Full => vec![101, 202, 303, 404, 505],
    }
}

/// Evaluates [`evaluate_curves`] for several seeds and averages the curves
/// point-wise (fresh fleet, split, and training per seed).
pub fn evaluate_curves_seeded(scale: Scale, train_keep: f64, seeds: &[u64]) -> CurveSet {
    let sets: Vec<CurveSet> = seeds
        .iter()
        .map(|&s| evaluate_curves(scale, train_keep, s))
        .collect();
    let avg = |pick: fn(&CurveSet) -> &Vec<EvalPoint>| -> Vec<EvalPoint> {
        let len = pick(&sets[0]).len();
        (0..len)
            .map(|i| {
                let slack = sets
                    .iter()
                    .map(|s| pick(s)[i].metrics.mean_abs_slack)
                    .sum::<f64>()
                    / sets.len() as f64;
                let thr = sets
                    .iter()
                    .map(|s| pick(s)[i].metrics.throttling_ratio)
                    .sum::<f64>()
                    / sets.len() as f64;
                let scale_log2 =
                    sets.iter().map(|s| pick(s)[i].scale_log2).sum::<f64>() / sets.len() as f64;
                EvalPoint {
                    scale_log2,
                    metrics: lorentz_core::evaluate::SlackThrottle {
                        mean_abs_slack: slack,
                        throttling_ratio: thr,
                    },
                }
            })
            .collect()
    };
    CurveSet {
        hierarchical: avg(|s| &s.hierarchical),
        target_encoding: avg(|s| &s.target_encoding),
        baseline: avg(|s| &s.baseline),
        test_rows: sets.iter().map(|s| s.test_rows).sum(),
        train_rows: sets.iter().map(|s| s.train_rows).sum(),
    }
}

/// Trains on `train_keep` of the 80% training split (1.0 = Figure 10,
/// 0.1 = Figure 12) and evaluates all curves.
pub fn evaluate_curves(scale: Scale, train_keep: f64, seed: u64) -> CurveSet {
    let (synth, _) = common::upscaled_fleet(scale, seed);
    let (mut train, _val, test) = common::split_rows(synth.fleet.len(), seed);
    if train_keep < 1.0 {
        let keep = ((train.len() as f64 * train_keep).round() as usize).max(10);
        train.truncate(keep); // split order is already shuffled
    }
    let train_fleet = synth.fleet.subset(&train);
    let config = common::experiment_config(scale);
    let trained = LorentzPipeline::new(config)
        .expect("valid config")
        .train(&train_fleet)
        .expect("training succeeds");

    let exponents: Vec<f64> = (-20..=20).map(|i| f64::from(i) * 0.25).collect();
    let mut h_acc: Vec<Vec<EvalPoint>> = Vec::new();
    let mut te_acc: Vec<Vec<EvalPoint>> = Vec::new();
    let mut base_acc: Vec<Vec<EvalPoint>> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let tau = trained.config().rightsizer.tau;

    for offering in ServerOffering::ALL {
        let rows: Vec<usize> = test
            .iter()
            .copied()
            .filter(|&r| synth.fleet.offerings()[r] == offering)
            .collect();
        if rows.is_empty()
            || trained
                .provisioner(offering, ModelKind::Hierarchical)
                .is_err()
        {
            continue;
        }
        let traces = common::traces_for(&rows, &synth.ground_truth);
        let catalog = SkuCatalog::azure_postgres(offering);

        let predict = |kind: ModelKind| -> Vec<f64> {
            let model = trained.provisioner(offering, kind).expect("model exists");
            rows.iter()
                .map(|&r| {
                    model
                        .predict_raw(&synth.fleet.profiles().row(r))
                        .expect("prediction succeeds")
                })
                .collect()
        };

        let h_raw = predict(ModelKind::Hierarchical);
        let te_raw = predict(ModelKind::TargetEncoding);
        h_acc.push(
            evaluate::prediction_pareto(
                trained.rightsizer(),
                &traces,
                &h_raw,
                &catalog,
                &exponents,
                tau,
            )
            .expect("pareto evaluation succeeds"),
        );
        te_acc.push(
            evaluate::prediction_pareto(
                trained.rightsizer(),
                &traces,
                &te_raw,
                &catalog,
                &exponents,
                tau,
            )
            .expect("pareto evaluation succeeds"),
        );

        // Baseline: one default per relative catalog rung.
        let mut base_points = Vec::with_capacity(BASELINE_RUNGS);
        for k in 0..BASELINE_RUNGS {
            let idx = (k as f64 / (BASELINE_RUNGS - 1) as f64 * (catalog.len() - 1) as f64).round()
                as usize;
            let default = catalog.get(idx).capacity.clone();
            let capacities: Vec<Capacity> = vec![default.clone(); rows.len()];
            let metrics = evaluate::slack_throttle(trained.rightsizer(), &traces, &capacities, tau)
                .expect("evaluation succeeds");
            base_points.push(EvalPoint {
                scale_log2: default.primary().log2(),
                metrics,
            });
        }
        base_acc.push(base_points);
        weights.push(rows.len() as f64);
    }

    CurveSet {
        hierarchical: average_curves(&h_acc, &weights),
        target_encoding: average_curves(&te_acc, &weights),
        baseline: average_curves(&base_acc, &weights),
        test_rows: test.len(),
        train_rows: train.len(),
    }
}

/// Test-row-weighted average of per-offering curves: §2.1 states that "all
/// statistics and performance metrics describe the global average across
/// all three server offerings", i.e. pooled over servers.
fn average_curves(per_offering: &[Vec<EvalPoint>], weights: &[f64]) -> Vec<EvalPoint> {
    let n = per_offering.len();
    assert!(n > 0, "no offering produced a curve");
    let total_w: f64 = weights.iter().sum();
    let len = per_offering[0].len();
    (0..len)
        .map(|i| {
            let slack = per_offering
                .iter()
                .zip(weights)
                .map(|(c, w)| c[i].metrics.mean_abs_slack * w)
                .sum::<f64>()
                / total_w;
            let thr = per_offering
                .iter()
                .zip(weights)
                .map(|(c, w)| c[i].metrics.throttling_ratio * w)
                .sum::<f64>()
                / total_w;
            let scale = per_offering
                .iter()
                .zip(weights)
                .map(|(c, w)| c[i].scale_log2 * w)
                .sum::<f64>()
                / total_w;
            EvalPoint {
                scale_log2: scale,
                metrics: lorentz_core::evaluate::SlackThrottle {
                    mean_abs_slack: slack,
                    throttling_ratio: thr,
                },
            }
        })
        .collect()
}

fn print_curve(name: &str, curve: &[EvalPoint]) {
    println!("-- {name} --");
    println!(
        "{:>10} {:>14} {:>12}",
        "scale", "mean_abs_slack", "throttling"
    );
    for p in curve {
        println!(
            "{:>10.2} {:>14.3} {:>12}",
            p.scale_log2,
            p.metrics.mean_abs_slack,
            common::pct(p.metrics.throttling_ratio)
        );
    }
}

/// Runs the Figure-10 experiment and prints all three curves.
pub fn run(scale: Scale) -> CurveSet {
    common::banner(
        "Figure 10",
        "provisioner Pareto frontiers vs default baselines (upscaled workloads)",
    );
    let curves = evaluate_curves_seeded(scale, 1.0, &headline_seeds(scale));
    println!(
        "train rows: {}, test rows: {} (summed across {} seeds)",
        curves.train_rows,
        curves.test_rows,
        headline_seeds(scale).len()
    );
    print_curve("hierarchical provisioner", &curves.hierarchical);
    print_curve("target-encoding provisioner", &curves.target_encoding);
    print_curve("default baseline", &curves.baseline);
    curves
}

/// Whether curve `a` dominates curve `b` at a throttling bound: a's best
/// achievable slack under the bound is lower.
pub fn beats_at_bound(a: &[EvalPoint], b: &[EvalPoint], bound: f64) -> bool {
    match (
        evaluate::min_slack_under_throttle_bound(a, bound),
        evaluate::min_slack_under_throttle_bound(b, bound),
    ) {
        (Some(pa), Some(pb)) => pa.metrics.mean_abs_slack < pb.metrics.mean_abs_slack,
        (Some(_), None) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provisioners_beat_the_default_baseline() {
        let curves = run(Scale::Quick);
        assert_eq!(curves.hierarchical.len(), 41);
        assert_eq!(curves.baseline.len(), BASELINE_RUNGS);
        // The paper's headline: both models improve on the baseline's
        // Pareto frontier at the <10% throttling operating region.
        assert!(
            beats_at_bound(&curves.hierarchical, &curves.baseline, 0.10),
            "hierarchical should beat baseline at 10% throttling"
        );
        assert!(
            beats_at_bound(&curves.target_encoding, &curves.baseline, 0.10),
            "target encoding should beat baseline at 10% throttling"
        );
    }

    #[test]
    fn scaling_up_monotonically_derisks_throttling() {
        let curves = evaluate_curves(Scale::Quick, 1.0, 101);
        let first = curves.hierarchical.first().unwrap();
        let last = curves.hierarchical.last().unwrap();
        assert!(first.metrics.throttling_ratio >= last.metrics.throttling_ratio);
        assert!(first.metrics.mean_abs_slack <= last.metrics.mean_abs_slack);
    }
}
