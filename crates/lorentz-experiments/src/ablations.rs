//! Ablations of design choices the paper calls out.
//!
//! * [`missing_data`] — §3.3 "Missing data": a `-999` sentinel encoding
//!   makes tree ensembles severely under-predict rows with missing tags;
//!   the global-mean policy does not.
//! * [`signal_sharing`] — §3.4.2: sharing signals across resource groups
//!   (ρ_S > 0) helps when signals are rare but prevents tight per-RG
//!   convergence when signals are common.
//! * [`binning`] — Eq. 2's `max` aggregator vs `mean`/`p95`, and the
//!   censored scale-up exponent `K`.
//! * [`hierarchy`] — the γ threshold and minimum bucket size `N` of the
//!   hierarchical provisioner.

use crate::common::{self, Scale};
use lorentz_core::evaluate;
use lorentz_core::PersonalizerConfig;
use lorentz_core::{
    HierarchicalProvisioner, LorentzPipeline, ModelKind, Provisioner, Rightsizer, RightsizerConfig,
};
use lorentz_hierarchy::{learn_hierarchy, HierarchyConfig};
use lorentz_ml::{
    GradientBoosting, GradientBoostingConfig, MissingPolicy, TargetEncoder, TargetStatistic,
};
use lorentz_simdata::persim::{PersonalizationSim, PersonalizationSimConfig};
use lorentz_telemetry::{Aggregator, UsageTrace};
use lorentz_types::{ProfileSchema, ProfileTable, SkuCatalog};
use serde::{Deserialize, Serialize};

/// Result of the missing-data ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissingDataResult {
    /// Mean prediction (vCores) for missing-tag rows under the global-mean
    /// policy.
    pub global_mean_prediction: f64,
    /// Mean prediction for missing-tag rows under the −999 sentinel.
    pub sentinel_prediction: f64,
    /// True mean capacity of those rows.
    pub true_mean: f64,
}

/// §3.3 missing-data policy comparison.
pub fn missing_data(_scale: Scale) -> MissingDataResult {
    common::banner(
        "Ablation: missing data",
        "-999 sentinel vs global-mean encoding of missing profile tags",
    );
    // Training data is fully tagged; missing tags appear only at inference
    // time (new resources with incomplete billing metadata — the paper's
    // deployment reality). True capacity depends only on industry.
    let schema = ProfileSchema::new(vec!["industry", "region"]).unwrap();
    let mut table = ProfileTable::new(schema);
    let mut labels_log2 = Vec::new();
    for i in 0..600 {
        let industry = if i % 2 == 0 { "retail" } else { "banking" };
        let region = ["eu", "us", "apac"][i % 3];
        table.push_row(&[Some(industry), Some(region)]).unwrap();
        labels_log2.push(if i % 2 == 0 { 2.0 } else { 4.0 }); // 4 vs 16 vCores
    }

    let predict_missing_mean = |missing: MissingPolicy| -> f64 {
        let enc = TargetEncoder::fit(&table, &labels_log2, TargetStatistic::Mean, missing, 0.0)
            .expect("encoder fits");
        let data = enc
            .encode_table(&table, labels_log2.clone())
            .expect("encoding succeeds");
        let model = GradientBoosting::fit(
            &data,
            &GradientBoostingConfig {
                n_trees: 40,
                learning_rate: 0.3,
                ..GradientBoostingConfig::default()
            },
        )
        .expect("boosting fits");
        // Queries with the industry tag missing, over every region.
        let mut sum = 0.0;
        let mut n = 0usize;
        for region in ["eu", "us", "apac"] {
            let v = table
                .encode_row(&[None, Some(region)])
                .expect("arity matches");
            sum += model.predict_row(&enc.encode_vector(&v)).exp2();
            n += 1;
        }
        sum / n as f64
    };

    // A missing industry is equally likely retail or banking, so the honest
    // prediction is the global average capacity.
    let true_mean = labels_log2.iter().map(|l| l.exp2()).sum::<f64>() / labels_log2.len() as f64;

    let result = MissingDataResult {
        global_mean_prediction: predict_missing_mean(MissingPolicy::GlobalMean),
        sentinel_prediction: predict_missing_mean(MissingPolicy::Sentinel(-999.0)),
        true_mean,
    };
    println!(
        "{}",
        common::kv_table(
            "mean predicted capacity for missing-tag rows",
            &[
                (
                    "true mean".into(),
                    format!("{:.2} vCores", result.true_mean)
                ),
                (
                    "global-mean policy".into(),
                    format!("{:.2} vCores", result.global_mean_prediction),
                ),
                (
                    "-999 sentinel policy".into(),
                    format!(
                        "{:.2} vCores (paper: severe underestimation)",
                        result.sentinel_prediction
                    ),
                ),
            ],
        )
    );
    result
}

/// Result of the signal-sharing ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalSharingResult {
    /// Convergence iterations with rare signals, ρ_S = 0.
    pub rare_isolated: f64,
    /// Convergence iterations with rare signals, ρ_S = 0.25.
    pub rare_shared: f64,
    /// Final RMSE with common signals, ρ_S = 0.
    pub common_isolated_rmse: f64,
    /// Final RMSE with common signals, ρ_S = 0.25.
    pub common_shared_rmse: f64,
}

/// §3.4.2 signal-sharing trade-off.
pub fn signal_sharing(scale: Scale) -> SignalSharingResult {
    common::banner(
        "Ablation: signal sharing",
        "rho_S > 0 helps rare signals, hurts per-RG convergence when common",
    );
    let repeats = match scale {
        Scale::Quick => 5,
        Scale::Full => 20,
    };
    let run_sims = |rate: f64, rho_s: f64, rg_spread: f64| -> (f64, f64) {
        let mut iters_sum = 0.0;
        let mut rmse_sum = 0.0;
        for rep in 0..repeats {
            let mut sim = PersonalizationSim::new(PersonalizationSimConfig {
                signal_rate: rate,
                rg_lambda_spread: rg_spread,
                personalizer: PersonalizerConfig {
                    rho_resource_group: rho_s,
                    rho_subscription: 0.0,
                    ..PersonalizerConfig::default()
                },
                seed: 9000 + rep as u64,
                ..PersonalizationSimConfig::default()
            })
            .expect("sim config valid");
            let (iters, _) = sim.run_to_convergence(200);
            iters_sum += iters as f64;
            // Keep iterating to a fixed horizon so the resting error is
            // comparable across configurations (convergence-time stopping
            // would otherwise sample different points of the trajectories).
            for _ in 0..120 {
                sim.step();
            }
            rmse_sum += sim.metrics().rmse;
        }
        (iters_sum / repeats as f64, rmse_sum / repeats as f64)
    };

    // Rare signals, shared subscription-level preferences (the paper's
    // §5.3 world): sharing accelerates convergence.
    let (rare_isolated, _) = run_sims(0.05, 0.0, 0.0);
    let (rare_shared, _) = run_sims(0.05, 0.25, 0.0);
    // Common signals AND RG-specific preferences (§3.4.2's second regime):
    // sharing drags every RG toward the subscription mean and prevents
    // tight per-RG convergence. ρ_S = 0.5 makes the coupling visible above
    // the ±lr/2 oscillation floor at this world size.
    let (_, common_isolated_rmse) = run_sims(0.9, 0.0, 0.75);
    let (_, common_shared_rmse) = run_sims(0.9, 0.5, 0.75);

    let result = SignalSharingResult {
        rare_isolated,
        rare_shared,
        common_isolated_rmse,
        common_shared_rmse,
    };
    println!(
        "{}",
        common::kv_table(
            "signal sharing across resource groups",
            &[
                (
                    "rare signals (5%), rho_S=0".into(),
                    format!("{:.1} iters to converge", result.rare_isolated),
                ),
                (
                    "rare signals (5%), rho_S=0.25".into(),
                    format!("{:.1} iters to converge", result.rare_shared),
                ),
                (
                    "common signals (90%), RG-specific prefs, rho_S=0".into(),
                    format!("final RMSE {:.3}", result.common_isolated_rmse),
                ),
                (
                    "common signals (90%), RG-specific prefs, rho_S=0.5".into(),
                    format!("final RMSE {:.3}", result.common_shared_rmse),
                ),
            ],
        )
    );
    result
}

/// Result of the binning/K ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinningResult {
    /// `(aggregator name, rightsized throttling ratio, mean abs slack)`.
    pub aggregators: Vec<(String, f64, f64)>,
    /// `(K, rightsized throttling ratio, mean abs slack)` for censored
    /// workloads.
    pub k_sweep: Vec<(u32, f64, f64)>,
}

/// Eq. 2 aggregator and Eq. 8 `K` sweep.
pub fn binning(scale: Scale) -> BinningResult {
    common::banner(
        "Ablation: binning & K",
        "bin aggregator choice and the censored scale-up exponent",
    );
    let synth = common::standard_fleet(scale, 202);
    let evaluate_with = |config: RightsizerConfig, aggregator: Aggregator| -> (f64, f64) {
        // Re-bin the telemetry from the ground truth + user capacity using
        // the aggregator under test (telemetry = censored ground truth).
        let rightsizer = Rightsizer::new(&config).expect("valid config");
        let mut capacities = Vec::with_capacity(synth.fleet.len());
        for i in 0..synth.fleet.len() {
            let user_cap = &synth.fleet.user_capacities()[i];
            // Aggregate the already-binned ground truth down to coarser
            // bins via the chosen aggregator, then censor.
            let telemetry = rebin(&synth.ground_truth[i], aggregator)
                .censored(user_cap)
                .expect("arity matches");
            let catalog = SkuCatalog::azure_postgres(synth.fleet.offerings()[i]);
            let outcome = rightsizer
                .rightsize(&telemetry, user_cap, &catalog)
                .expect("rightsizing succeeds");
            capacities.push(outcome.capacity);
        }
        let st = evaluate::slack_throttle(
            &Rightsizer::new(&RightsizerConfig::default()).expect("valid"),
            &synth.ground_truth,
            &capacities,
            0.0,
        )
        .expect("evaluation succeeds");
        (st.throttling_ratio, st.mean_abs_slack)
    };

    let mut aggregators = Vec::new();
    for (name, agg) in [
        ("max", Aggregator::Max),
        ("p95", Aggregator::Percentile(95.0)),
        ("mean", Aggregator::Mean),
    ] {
        let (thr, slack) = evaluate_with(RightsizerConfig::default(), agg);
        println!(
            "aggregator {name:>5}: rightsized throttling {} | slack {slack:.2}",
            common::pct(thr)
        );
        aggregators.push((name.to_owned(), thr, slack));
    }

    let mut k_sweep = Vec::new();
    for k in [0u32, 1, 2] {
        let cfg = RightsizerConfig {
            k,
            ..RightsizerConfig::default()
        };
        let (thr, slack) = evaluate_with(cfg, Aggregator::Max);
        println!(
            "K = {k}: rightsized throttling {} | slack {slack:.2}",
            common::pct(thr)
        );
        k_sweep.push((k, thr, slack));
    }

    BinningResult {
        aggregators,
        k_sweep,
    }
}

/// Coarsens a 300s-binned trace into 900s bins with the given aggregator
/// (stand-in for re-binning raw telemetry, which the fleet no longer
/// retains).
fn rebin(trace: &UsageTrace, aggregator: Aggregator) -> UsageTrace {
    let series = trace.resource(0);
    let vals = series.values();
    let mut out = Vec::with_capacity(vals.len() / 3 + 1);
    for chunk in vals.chunks(3) {
        out.push(aggregator.apply(chunk));
    }
    UsageTrace::single(
        lorentz_telemetry::RegularSeries::new(series.bin_seconds() * 3.0, out)
            .expect("rebinned series valid"),
    )
}

/// Result of the hierarchy ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyResult {
    /// `(γ, learned chain length)`.
    pub gamma_sweep: Vec<(f64, usize)>,
    /// `(N, fraction of test recommendations served from the global
    /// fallback)`.
    pub min_bucket_sweep: Vec<(usize, f64)>,
}

/// γ threshold and minimum-bucket-size sweeps.
pub fn hierarchy(scale: Scale) -> HierarchyResult {
    common::banner(
        "Ablation: hierarchy",
        "gamma threshold vs chain length; N vs fallback rate",
    );
    let synth = common::standard_fleet(scale, 303);
    let profiles = synth.fleet.profiles();

    let mut gamma_sweep = Vec::new();
    for gamma in [0.2, 0.4, 0.6, 0.8, 0.95] {
        let chain = learn_hierarchy(profiles, &HierarchyConfig { threshold: gamma })
            .expect("hierarchy learns");
        println!("gamma {gamma:.2}: chain length {}", chain.len());
        gamma_sweep.push((gamma, chain.len()));
    }

    // N sweep: train on 80%, measure global-fallback rate on 10% test.
    let (train, _val, test) = common::split_rows(synth.fleet.len(), 303);
    let mut min_bucket_sweep = Vec::new();
    for min_bucket in [2usize, 10, 50, 200] {
        let mut config = common::experiment_config(scale);
        config.hierarchical.min_bucket = min_bucket;
        config.target_encoding.boosting.n_trees = 5; // irrelevant here
        let trained = LorentzPipeline::new(config)
            .expect("valid config")
            .train(&synth.fleet.subset(&train))
            .expect("training succeeds");
        let mut fallbacks = 0usize;
        let mut total = 0usize;
        for &row in &test {
            let offering = synth.fleet.offerings()[row];
            let Ok(model) = trained.provisioner(offering, ModelKind::Hierarchical) else {
                continue;
            };
            let (_, expl) = model
                .recommend(&profiles.row(row))
                .expect("recommendation succeeds");
            total += 1;
            if matches!(expl, lorentz_core::Explanation::GlobalFallback { .. }) {
                fallbacks += 1;
            }
        }
        let rate = fallbacks as f64 / total.max(1) as f64;
        println!(
            "N = {min_bucket:>4}: global fallback rate {}",
            common::pct(rate)
        );
        min_bucket_sweep.push((min_bucket, rate));
    }

    HierarchyResult {
        gamma_sweep,
        min_bucket_sweep,
    }
}

/// Result of the model-family ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFamilyResult {
    /// `(model name, held-out log2 RMSE against rightsized labels)`.
    pub rmse_log2: Vec<(String, f64)>,
}

impl ModelFamilyResult {
    /// RMSE of a named model.
    pub fn rmse_of(&self, name: &str) -> f64 {
        self.rmse_log2
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, r)| r)
            .expect("model present")
    }
}

/// Regressor-family comparison over target-encoded features (§3.3 admits
/// "arbitrary ... regression methods"; the paper chose tree ensembles for
/// best-in-class tabular performance). Compares gradient boosting, random
/// forest, a ridge linear baseline, and the label-mean predictor by
/// held-out log2 RMSE against the rightsized labels.
pub fn model_family(scale: Scale) -> ModelFamilyResult {
    common::banner(
        "Ablation: model family",
        "GBDT vs random forest vs ridge vs mean over target-encoded features",
    );
    let (synth, _) = common::upscaled_fleet(scale, 404);
    let config = common::experiment_config(scale);
    let outcomes = common::rightsize_fleet(&config, &synth.fleet).expect("rightsizing succeeds");
    let rows = synth
        .fleet
        .rows_for_offering(lorentz_types::ServerOffering::GeneralPurpose);
    let (train_rows, test_rows) = rows.split_at(rows.len() * 8 / 10);

    // Target-encode on the training rows' labels (log2 space).
    let train_table = synth.fleet.profiles().subset(train_rows);
    let train_labels: Vec<f64> = train_rows
        .iter()
        .map(|&r| outcomes[r].capacity.primary().log2())
        .collect();
    let encoder = TargetEncoder::fit(
        &train_table,
        &train_labels,
        TargetStatistic::Mean,
        lorentz_ml::MissingPolicy::GlobalMean,
        0.0,
    )
    .expect("encoder fits");
    let train_data = encoder
        .encode_table(&train_table, train_labels.clone())
        .expect("encoding succeeds");
    let test_targets: Vec<f64> = test_rows
        .iter()
        .map(|&r| outcomes[r].capacity.primary().log2())
        .collect();
    let test_features: Vec<Vec<f64>> = test_rows
        .iter()
        .map(|&r| encoder.encode_vector(&synth.fleet.profiles().row(r)))
        .collect();

    let score = |predict: &dyn Fn(&[f64]) -> f64| -> f64 {
        let preds: Vec<f64> = test_features.iter().map(|row| predict(row)).collect();
        lorentz_ml::metrics::rmse(&preds, &test_targets)
    };

    let gbdt = GradientBoosting::fit(
        &train_data,
        &GradientBoostingConfig {
            n_trees: 50,
            learning_rate: 0.2,
            ..GradientBoostingConfig::default()
        },
    )
    .expect("gbdt fits");
    let forest = lorentz_ml::RandomForest::fit(
        &train_data,
        &lorentz_ml::RandomForestConfig {
            n_trees: 50,
            feature_fraction: 0.7,
            ..lorentz_ml::RandomForestConfig::default()
        },
    )
    .expect("forest fits");
    let ridge =
        lorentz_ml::RidgeRegression::fit(&train_data, &lorentz_ml::RidgeConfig { l2: 1e-3 })
            .expect("ridge fits");
    let mean = train_data.label_mean();

    let rmse_log2 = vec![
        ("gbdt".to_owned(), score(&|row| gbdt.predict_row(row))),
        (
            "random_forest".to_owned(),
            score(&|row| forest.predict_row(row)),
        ),
        ("ridge".to_owned(), score(&|row| ridge.predict_row(row))),
        ("mean".to_owned(), score(&|_| mean)),
    ];
    for (name, rmse) in &rmse_log2 {
        println!("{name:>14}: held-out log2 RMSE {rmse:.3}");
    }
    ModelFamilyResult { rmse_log2 }
}

/// Runs hierarchical-provisioner ablation support: the per-level share of
/// recommendations (used by docs/tests).
pub fn hierarchical_match_levels(
    model: &HierarchicalProvisioner,
    profiles: &ProfileTable,
    rows: &[usize],
) -> Vec<usize> {
    let mut counts = vec![0usize; model.chain().len() + 1]; // +1 = fallback
    for &row in rows {
        let (_, expl) = model
            .recommend(&profiles.row(row))
            .expect("recommendation succeeds");
        match expl {
            lorentz_core::Explanation::HierarchicalBucket { level, .. } => counts[level] += 1,
            _ => *counts.last_mut().expect("non-empty") += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_underestimates_missing_rows() {
        let r = missing_data(Scale::Quick);
        // Global-mean predictions stay within the label range.
        assert!(r.global_mean_prediction >= 4.0 && r.global_mean_prediction <= 16.0);
        // The sentinel collapses predictions for missing rows well below
        // the truth (the paper's "severe underestimation").
        assert!(
            r.sentinel_prediction < r.global_mean_prediction,
            "sentinel {} !< global {}",
            r.sentinel_prediction,
            r.global_mean_prediction
        );
    }

    #[test]
    fn signal_sharing_tradeoff_matches_3_4_2() {
        let r = signal_sharing(Scale::Quick);
        // Sharing accelerates convergence under rare signals...
        assert!(
            r.rare_shared < r.rare_isolated,
            "shared {} !< isolated {}",
            r.rare_shared,
            r.rare_isolated
        );
        // ...but leaves a higher resting error when signals are common and
        // preferences are RG-specific.
        assert!(
            r.common_shared_rmse > r.common_isolated_rmse,
            "shared RMSE {} !> isolated RMSE {}",
            r.common_shared_rmse,
            r.common_isolated_rmse
        );
    }

    #[test]
    fn tree_ensembles_beat_linear_and_mean_baselines() {
        let r = model_family(Scale::Quick);
        // The paper's §3.3 rationale: tree-based predictors are
        // best-in-class on this tabular problem. Ridge can only fit
        // additive structure; the mean fits nothing.
        assert!(r.rmse_of("gbdt") < r.rmse_of("mean"));
        assert!(r.rmse_of("random_forest") < r.rmse_of("mean"));
        assert!(r.rmse_of("gbdt") <= r.rmse_of("ridge") + 0.05);
    }

    #[test]
    fn mean_aggregation_throttles_more_than_max() {
        let r = binning(Scale::Quick);
        let get = |name: &str| {
            r.aggregators
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|&(_, thr, _)| thr)
                .expect("aggregator present")
        };
        assert!(
            get("mean") >= get("max"),
            "mean aggregation must not be safer than max"
        );
    }

    #[test]
    fn larger_k_reduces_censored_throttling() {
        let r = binning(Scale::Quick);
        let k0 = r.k_sweep[0].1;
        let k2 = r.k_sweep[2].1;
        assert!(k2 <= k0, "K=2 throttling {k2} should be <= K=0 {k0}");
    }

    #[test]
    fn gamma_and_bucket_sweeps_behave_monotonically() {
        let r = hierarchy(Scale::Quick);
        // Lower gamma admits more edges -> chains at least as long.
        let first = r.gamma_sweep.first().unwrap().1;
        let last = r.gamma_sweep.last().unwrap().1;
        assert!(first >= last, "gamma sweep: {first} -> {last}");
        // Larger N forces more global fallbacks.
        let rates: Vec<f64> = r.min_bucket_sweep.iter().map(|&(_, r)| r).collect();
        assert!(rates.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{rates:?}");
    }
}
