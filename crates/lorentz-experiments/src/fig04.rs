//! Figure 4: CPU slack and throttling for under-, over-, and
//! well-provisioned VMs, with the rightsized SKU marked.

use crate::common::{self, Scale};
use lorentz_core::{Rightsizer, RightsizerConfig};
use lorentz_telemetry::generators::{SamplingConfig, WorkloadGenerator};
use lorentz_telemetry::{Aggregator, EmptyBinPolicy, UsageTrace, WorkloadSpec};
use lorentz_types::{Capacity, ResourceSpace, ServerOffering, SkuCatalog};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One illustrative panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Panel {
    /// Panel label.
    pub label: String,
    /// The user-selected capacity.
    pub user_capacity: f64,
    /// The rightsized capacity (dashed line in the figure).
    pub rightsized_capacity: f64,
    /// Throttling probability at the user capacity.
    pub throttling: f64,
    /// Mean slack ratio at the user capacity.
    pub slack_ratio: f64,
}

/// The three panels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig04Result {
    /// Under-, over-, and well-provisioned panels.
    pub panels: Vec<Panel>,
}

fn make_trace(spec: &WorkloadSpec, seed: u64) -> UsageTrace {
    let cfg = SamplingConfig {
        duration_secs: 86_400.0,
        mean_interval_secs: 60.0,
        jitter_frac: 0.2,
    };
    let raw = spec.generate(&cfg, &mut SmallRng::seed_from_u64(seed));
    UsageTrace::from_raw(
        ResourceSpace::vcores_only(),
        &[raw],
        300.0,
        Aggregator::Max,
        EmptyBinPolicy::HoldLast,
    )
    .expect("generated trace is valid")
}

/// Runs the experiment: three canonical workloads, their slack/throttling
/// at the user capacity, and the rightsized SKU.
pub fn run(_scale: Scale) -> Fig04Result {
    common::banner(
        "Figure 4",
        "slack and throttling for under/over/well-provisioned VMs",
    );
    let catalog = SkuCatalog::azure_postgres(ServerOffering::GeneralPurpose);
    let rightsizer = Rightsizer::new(&RightsizerConfig::default()).expect("default config valid");

    // Demand peaking ~3.3 vCores with mean ~2.1; the slack-target-0.5
    // rightsized capacity is 4 vCores.
    let spec = WorkloadSpec::typical_oltp(2.5);
    let cases = [
        ("under-provisioned", 2.0, 11u64),
        ("over-provisioned", 32.0, 12u64),
        ("well-provisioned", 4.0, 13u64),
    ];

    let mut panels = Vec::new();
    for (label, user_cap, seed) in cases {
        let truth = make_trace(&spec, seed);
        let user_capacity = Capacity::scalar(user_cap);
        // Telemetry as recorded: censored at the user capacity (Eq. 1).
        let telemetry = truth.censored(&user_capacity).expect("arity matches");
        let outcome = rightsizer
            .rightsize(&telemetry, &user_capacity, &catalog)
            .expect("rightsizing succeeds");
        let throttling = rightsizer
            .throttling(&telemetry, &user_capacity)
            .expect("arity matches");
        let slack_ratio = rightsizer
            .slack_ratio(&telemetry, &user_capacity)
            .expect("arity matches")[0];
        println!(
            "{label:>18}: user {user_cap:>5.1} vCores | throttling {} | mean slack ratio {:.2} | rightsized -> {:.0} vCores{}",
            common::pct(throttling),
            slack_ratio,
            outcome.capacity.primary(),
            if outcome.censored { " (censored: scaled up 2^K)" } else { "" }
        );
        panels.push(Panel {
            label: label.to_owned(),
            user_capacity: user_cap,
            rightsized_capacity: outcome.capacity.primary(),
            throttling,
            slack_ratio,
        });
    }
    Fig04Result { panels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_show_the_three_regimes() {
        let r = run(Scale::Quick);
        assert_eq!(r.panels.len(), 3);
        let under = &r.panels[0];
        let over = &r.panels[1];
        let well = &r.panels[2];
        // Under-provisioned: throttles and gets scaled up.
        assert!(under.throttling > 0.0);
        assert!(under.rightsized_capacity > under.user_capacity);
        // Over-provisioned: no throttling, huge slack, scaled down.
        assert_eq!(over.throttling, 0.0);
        assert!(over.slack_ratio > 0.8);
        assert!(over.rightsized_capacity < over.user_capacity);
        // Well-provisioned: no throttling, rightsizing keeps it at 8.
        assert_eq!(well.throttling, 0.0);
        assert_eq!(well.rightsized_capacity, well.user_capacity);
    }
}
