//! Table 2: the hyperparameters of every stage, echoed from the live
//! configuration object so the printed table can never drift from what the
//! code actually runs.

use crate::common::{self, Scale};
use lorentz_core::LorentzConfig;
use serde::{Deserialize, Serialize};

/// The Table-2 reproduction result (the configuration itself).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tab02Result {
    /// The configuration used across the experiment suite.
    pub config: LorentzConfig,
}

/// Prints the hyperparameter table.
pub fn run(_scale: Scale) -> Tab02Result {
    common::banner("Table 2", "hyperparameters");
    let config = LorentzConfig::paper_defaults();
    println!(
        "{}",
        common::kv_table(
            "Stage 1: Rightsizer",
            &[
                (
                    "T".into(),
                    format!("{} s (5 min)", config.rightsizer.bin_seconds)
                ),
                ("eta".into(), format!("{:?}", config.rightsizer.eta)),
                (
                    "s*_CPU".into(),
                    format!("{:?}", config.rightsizer.slack_target),
                ),
                ("tau".into(), config.rightsizer.tau.to_string()),
                ("K".into(), config.rightsizer.k.to_string()),
            ],
        )
    );
    println!(
        "{}",
        common::kv_table(
            "Stage 2: Capacity recommenders (train/val/test = 80/10/10)",
            &[
                (
                    "hierarchical p".into(),
                    config.hierarchical.percentile.to_string(),
                ),
                (
                    "hierarchical gamma".into(),
                    config.hierarchical.hierarchy.threshold.to_string(),
                ),
                (
                    "hierarchical N (min bucket)".into(),
                    config.hierarchical.min_bucket.to_string(),
                ),
                (
                    "target encoder # trees".into(),
                    config.target_encoding.boosting.n_trees.to_string(),
                ),
                ("target encoder xi".into(), "log2".into()),
            ],
        )
    );
    println!(
        "{}",
        common::kv_table(
            "Stage 3: Personalizer",
            &[
                (
                    "learning rate".into(),
                    config.personalizer.learning_rate.to_string(),
                ),
                (
                    "signal decay (rho)".into(),
                    config.personalizer.rho_stratification.to_string(),
                ),
            ],
        )
    );
    Tab02Result { config }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echoed_config_is_the_paper_default() {
        let r = run(Scale::Quick);
        assert_eq!(r.config, LorentzConfig::paper_defaults());
        assert!(r.config.validate().is_ok());
    }
}
