//! Table 1: the throttle keyword filters, exercised on a synthetic CRI
//! corpus with the paper's sentiment mix (§2.2: ≈2,400 neutral, ≈2,000
//! performance-sensitive, 5 price-sensitive of ≈4,400 tickets).

use crate::common::{self, Scale};
use lorentz_core::personalizer::signals::KeywordClassifier;
use lorentz_simdata::cri::{generate_corpus, CriCorpusConfig};
use serde::{Deserialize, Serialize};

/// The Table-1 reproduction result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tab01Result {
    /// Tickets classified neutral (paper ≈ 2,400).
    pub neutral: usize,
    /// Tickets classified performance-sensitive (paper ≈ 2,000).
    pub performance: usize,
    /// Tickets classified price-sensitive (paper = 5).
    pub price: usize,
    /// Agreement with the corpus ground truth.
    pub accuracy: f64,
}

/// Prints the filters and classifies the paper-mix corpus.
pub fn run(_scale: Scale) -> Tab01Result {
    common::banner(
        "Table 1",
        "throttle filters + classification of the CRI corpus",
    );
    let classifier = KeywordClassifier::paper_filters();
    println!("-- performance (throttle) filters --");
    println!("  symptoms:   {:?}", classifier.performance.symptoms);
    println!("  subject:    {:?}", classifier.performance.subject);
    println!("  resolution: {:?}", classifier.performance.resolution);
    println!("-- cost filters (our symmetric extension) --");
    println!("  symptoms:   {:?}", classifier.cost.symptoms);
    println!("  subject:    {:?}", classifier.cost.subject);
    println!("  resolution: {:?}", classifier.cost.resolution);

    let corpus = generate_corpus(&CriCorpusConfig::paper_mix());
    let mut neutral = 0usize;
    let mut performance = 0usize;
    let mut price = 0usize;
    let mut correct = 0usize;
    for t in &corpus {
        let gamma = classifier.classify(&t.ticket);
        match gamma as i8 {
            0 => neutral += 1,
            1 => performance += 1,
            _ => price += 1,
        }
        if gamma as i8 == t.sentiment {
            correct += 1;
        }
    }
    let result = Tab01Result {
        neutral,
        performance,
        price,
        accuracy: correct as f64 / corpus.len() as f64,
    };
    println!(
        "{}",
        common::kv_table(
            "classification of 4,405 synthetic tickets (paper: ~2,400 / ~2,000 / 5)",
            &[
                ("neutral (0)".into(), result.neutral.to_string()),
                ("performance (+1)".into(), result.performance.to_string()),
                ("price (-1)".into(), result.price.to_string()),
                (
                    "accuracy vs ground truth".into(),
                    common::pct(result.accuracy)
                ),
            ],
        )
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_classification_matches_the_paper_mix() {
        let r = run(Scale::Quick);
        assert_eq!(r.neutral, 2400);
        assert_eq!(r.performance, 2000);
        assert_eq!(r.price, 5);
        assert_eq!(r.accuracy, 1.0);
    }
}
