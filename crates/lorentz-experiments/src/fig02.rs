//! Figure 2: user-selected vs rightsized vCore capacity distributions.
//!
//! The paper shows rightsizing focusing the capacity distribution — mass
//! moves off both the too-small default and the oversized picks toward the
//! capacities workloads actually need.

use crate::common::{self, Scale};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The two capacity histograms (key = vCores ×10 to stay integral).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig02Result {
    /// Count of servers per user-selected vCore capacity.
    pub user_selected: BTreeMap<u32, usize>,
    /// Count of servers per rightsized vCore capacity.
    pub rightsized: BTreeMap<u32, usize>,
}

impl Fig02Result {
    /// Distinct capacities used by a distribution.
    pub fn support(dist: &BTreeMap<u32, usize>) -> usize {
        dist.len()
    }

    /// Mean capacity of a distribution (vCores).
    pub fn mean(dist: &BTreeMap<u32, usize>) -> f64 {
        let total: usize = dist.values().sum();
        if total == 0 {
            return 0.0;
        }
        dist.iter()
            .map(|(&k, &c)| (f64::from(k) / 10.0) * c as f64)
            .sum::<f64>()
            / total as f64
    }
}

fn key(vcores: f64) -> u32 {
    (vcores * 10.0).round() as u32
}

/// Runs the experiment and prints both distributions.
pub fn run(scale: Scale) -> Fig02Result {
    common::banner(
        "Figure 2",
        "rightsizing focuses the vCore capacity distribution",
    );
    let synth = common::stats_fleet(scale, 101);
    let config = common::experiment_config(scale);
    let outcomes = common::rightsize_fleet(&config, &synth.fleet).expect("rightsizing succeeds");

    let mut user_selected: BTreeMap<u32, usize> = BTreeMap::new();
    let mut rightsized: BTreeMap<u32, usize> = BTreeMap::new();
    for (cap, outcome) in synth.fleet.user_capacities().iter().zip(&outcomes) {
        *user_selected.entry(key(cap.primary())).or_insert(0) += 1;
        *rightsized
            .entry(key(outcome.capacity.primary()))
            .or_insert(0) += 1;
    }
    let result = Fig02Result {
        user_selected,
        rightsized,
    };

    let render = |title: &str, dist: &BTreeMap<u32, usize>| {
        let max = dist.values().copied().max().unwrap_or(1).max(1);
        println!("-- {title} --");
        for (&k, &c) in dist {
            println!(
                "{:>6.1} vCores | {:<40} {c}",
                f64::from(k) / 10.0,
                "#".repeat(c * 40 / max)
            );
        }
    };
    render("(a) user-selected capacities", &result.user_selected);
    render("(b) rightsized capacities", &result.rightsized);
    println!(
        "mean capacity: user {:.2} vCores -> rightsized {:.2} vCores",
        Fig02Result::mean(&result.user_selected),
        Fig02Result::mean(&result.rightsized)
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_cover_the_fleet_and_rightsizing_shifts_mass() {
        let r = run(Scale::Quick);
        let n_user: usize = r.user_selected.values().sum();
        let n_right: usize = r.rightsized.values().sum();
        assert_eq!(n_user, n_right);
        assert_eq!(n_user, Scale::Quick.n_servers());
        // The distributions differ (rightsizing changes picks).
        assert_ne!(r.user_selected, r.rightsized);
    }
}
