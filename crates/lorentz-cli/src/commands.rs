//! CLI subcommand implementations.

use crate::args::Args;
use crate::error::CliError;
use lorentz_core::personalizer::signals::{classify_ticket, CriTicket};
use lorentz_core::provisioner::{OfferingRecommender, OfferingRecommenderConfig};
use lorentz_core::retry::RetryPolicy;
use lorentz_core::store::atomic_write;
use lorentz_core::{
    DurableStore, FleetDataset, LorentzConfig, LorentzPipeline, ModelKind, RecommendRequest,
    Rightsizer, SatisfactionSignal, TrainedLorentz,
};
use lorentz_serve::{
    serve_net, serve_replication, FollowerConfig, FollowerEngine, NetConfig, PromoteConfig,
    ReplicationConfig, ServeConfig, ServeRequest, ServeResponse, ServingEngine,
};
use lorentz_simdata::fleet::{FleetConfig, SyntheticFleet};
use lorentz_simdata::persim::{PersonalizationSim, PersonalizationSimConfig};
use lorentz_telemetry::generators::SamplingConfig;
use lorentz_types::{
    CustomerId, Endpoint, ResourceGroupId, ResourcePath, ServerOffering, SkuCatalog, SubscriptionId,
};
use std::fs;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// The one write path for every file this CLI produces: atomic
/// `tmp → fsync → rename` with transient-error retry, so a half-written
/// JSON file can never be observed at the destination.
fn write_file_atomic(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    atomic_write(Path::new(path), bytes, &RetryPolicy::default()).map_err(|e| CliError::io(path, e))
}

/// Top-level usage text.
pub const USAGE: &str = "\
lorentz — learned SKU recommendation from profile data (SIGMOD 2024 reproduction)

USAGE:
  lorentz generate  --servers N --seed S --out fleet.json [--base-demand X]
  lorentz rightsize --fleet fleet.json
  lorentz train     --fleet fleet.json --out model.json [--trees N] [--min-bucket N]
                    [--stage1-threads N] [--stage2-threads N]
                    [--metrics-out metrics.json] [--store-dir DIR]
                    (--store-dir commits the prediction store as a checksummed,
                     generation-numbered snapshot under DIR)
  lorentz store-verify --store-dir DIR
                    (load the newest intact store generation, reporting any
                     corrupt generations that were skipped; exits nonzero when
                     anything was corrupt, even though recovery succeeded)
  lorentz recommend --model model.json --offering burstable|general_purpose|memory_optimized
                    --profile \"Feature=value,Feature=value\" [--source hierarchical|target-encoding|store]
                    [--customer N --subscription N --resource-group N] [--metrics-out metrics.json]
  lorentz recommend --model model.json --batch requests.json
                    [--source hierarchical|target-encoding|store] [--json] [--metrics-out metrics.json]
                    (requests.json: array of {\"offering\", \"profile\": {Feature: value},
                     \"customer\", \"subscription\", \"resource_group\"}; all fields optional)
  lorentz serve     --model model.json --requests requests.ndjson
                    [--workers N] [--queue-capacity N] [--degraded-at N] [--deadline-ms N]
                    [--kind hierarchical|target-encoding] [--feedback-wal wal.log]
                    [--json] [--metrics-out metrics.json]
                    (requests.ndjson: one request object per line, same fields as --batch
                     plus optional \"id\" and \"deadline_ms\"; a line carrying a \"gamma\"
                     field is a satisfaction signal instead — it updates the live λ-table
                     before later lines serve; --feedback-wal makes signals durable, frames
                     each with its published λ delta, and replays them on startup; answers
                     go to stdout, the engine drains gracefully, and --metrics-out
                     snapshots after the drain)
  lorentz serve     --model model.json --listen ADDR [--shards N]
                    [--workers N] [--queue-capacity N] [--degraded-at N] [--deadline-ms N]
                    [--kind hierarchical|target-encoding] [--feedback-wal wal.log]
                    [--replicate-listen tcp://HOST:PORT]
                    [--max-frame-len BYTES] [--json] [--metrics-out metrics.json]
                    (TCP front end: binds ADDR — port 0 picks a free port, printed as
                     'listening on <addr>' on stderr — and serves persistent connections
                     speaking length-prefixed JSON frames (u32 big-endian byte length,
                     then that many bytes of JSON): request/feedback objects as in
                     --requests mode, {\"op\": \"ping\"} to probe, {\"op\": \"drain\"} to
                     stop; --shards splits the store and λ-state into N power-of-two
                     shards so every hot publish touches one shard; the post-drain
                     ledger and net accounting go to stderr; --replicate-listen
                     additionally binds a replication listener that streams the
                     feedback WAL to tcp:// followers, resuming each from its
                     last applied epoch — requires --feedback-wal)
  lorentz serve     --model model.json --requests requests.ndjson
                    --follow file:PATH|tcp://HOST:PORT
                    [--kind hierarchical|target-encoding] [--replica-wal wal.log]
                    [--promote-listen ADDR] [--promote-after-ms N] [--await-promotion]
                    [--run-ms MS] [--json] [--metrics-out metrics.json]
                    (replication follower: catches up on the leader's stream —
                     file:PATH tails a shared-filesystem WAL, tcp://HOST:PORT
                     subscribes to a leader's --replicate-listen — applies its
                     λ deltas, then serves the requests from the replicated epochs;
                     feedback lines are rejected while following, only the leader
                     mints epochs; a bare PATH still works as a deprecated alias
                     for file:PATH. For tcp:// followers, --replica-wal persists
                     received frames byte-identical to the leader's log so a
                     restart resumes from the last epoch, and --promote-listen
                     arms promotion: after the leader stays unreachable for
                     --promote-after-ms (default 1000), the follower that binds
                     ADDR first becomes a serving leader over its replica WAL
                     and accepts feedback; --await-promotion holds the request
                     lines until that happens; --run-ms keeps the follower alive —
                     tailing, promotable, serving a promoted listener — for MS
                     milliseconds after the request lines, for standby deployments
                     and the chaos harness)
  lorentz wal-verify --wal wal.log
                    (walk a feedback WAL read-only, reporting per-record OK/CORRUPT
                     verdicts like store-verify plus term markers and the last
                     epoch — the resume position a follower would reconnect with;
                     never repairs the file, but exits nonzero on a corrupt tail)
  lorentz feedback  --model model.json --tickets tickets.ndjson [--out model.json]
                    (tickets.ndjson: one {\"symptoms\", \"subject\", \"resolution\",
                     \"customer\", \"subscription\", \"resource_group\", \"offering\"}
                     object per line; each is classified with the Table-1 keyword filters
                     and non-neutral tickets update the model's λ; --out saves the
                     updated deployment)
  lorentz report    --fleet fleet.json
  lorentz offering  --fleet fleet.json --profile \"Feature=value,...\"
  lorentz ticket    [--symptoms S] [--subject S] [--resolution S]
  lorentz persim    [--iters N] [--signal-rate X] [--signal-noise X] [--sigma X] [--seed N]
  lorentz chaos     --seed N [--seeds K] [--model model.json] [--standbys N]
                    [--run-ms MS] [--promote-after-ms MS] [--work-dir DIR]
                    [--keep-dirs] [--failpoints SPEC]
                    (seeded cluster chaos: spawns a real leader + standbys from this
                     binary, drives feedback load, injects the seed's fault schedule —
                     kill -9, SIGSTOP, or a replication partition through a built-in
                     TCP fault proxy — heals, fences the old leader, and checks the
                     split-brain invariants: at most one unfenced leader, strictly
                     increasing terms, dense epochs, replica-WAL prefix property,
                     λ convergence, and exact ledgers. --seeds K runs seeds N..N+K-1
                     against one shared model fixture; any violation prints the seed
                     and schedule for one-command replay and exits nonzero)
  lorentz help
";

/// `lorentz generate`: synthesize a fleet and write it to JSON.
pub fn generate(args: &Args) -> Result<(), CliError> {
    let out = args.require("out")?;
    let config = FleetConfig {
        n_servers: args.get_parse_or("servers", 500usize)?,
        seed: args.get_parse_or("seed", 42u64)?,
        base_demand: args.get_parse_or("base-demand", 1.2f64)?,
        sampling: SamplingConfig {
            duration_secs: args.get_parse_or("duration-hours", 24.0f64)? * 3600.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.2,
        },
        ..FleetConfig::default()
    };
    let synthetic = config.generate()?;
    let json = serde_json::to_string(&synthetic)?;
    write_file_atomic(out, json.as_bytes())?;
    println!(
        "wrote {} servers ({} profile features) to {out}",
        synthetic.fleet.len(),
        synthetic.fleet.profiles().schema().len()
    );
    Ok(())
}

fn load_fleet(path: &str) -> Result<SyntheticFleet, CliError> {
    let json = fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
    let mut synthetic: SyntheticFleet =
        serde_json::from_str(&json).map_err(|e| CliError::Json(format!("{path}: {e}")))?;
    synthetic.fleet.rebuild_indexes();
    Ok(synthetic)
}

fn load_model(path: &str) -> Result<TrainedLorentz, CliError> {
    let json = fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
    Ok(TrainedLorentz::from_json(&json)?)
}

/// `lorentz rightsize`: print the Stage-1 summary of a fleet.
pub fn rightsize(args: &Args) -> Result<(), CliError> {
    let synthetic = load_fleet(args.require("fleet")?)?;
    let config = LorentzConfig::paper_defaults();
    let rightsizer = Rightsizer::new(&config.rightsizer)?;
    let fleet: &FleetDataset = &synthetic.fleet;
    let mut well = 0usize;
    let mut over = 0usize;
    let mut under = 0usize;
    let mut censored = 0usize;
    for i in 0..fleet.len() {
        let catalog = SkuCatalog::azure_postgres(fleet.offerings()[i]);
        let outcome =
            rightsizer.rightsize(&fleet.traces()[i], &fleet.user_capacities()[i], &catalog)?;
        match outcome.verdict {
            lorentz_core::ProvisioningVerdict::WellProvisioned => well += 1,
            lorentz_core::ProvisioningVerdict::OverProvisioned => over += 1,
            lorentz_core::ProvisioningVerdict::UnderProvisioned => under += 1,
        }
        if outcome.censored {
            censored += 1;
        }
    }
    let n = fleet.len() as f64;
    println!("servers: {}", fleet.len());
    println!("well provisioned:  {:5.1}%", 100.0 * well as f64 / n);
    println!("over provisioned:  {:5.1}%", 100.0 * over as f64 / n);
    println!("under provisioned: {:5.1}%", 100.0 * under as f64 / n);
    println!(
        "censored (throttled at selection): {:5.1}%",
        100.0 * censored as f64 / n
    );
    Ok(())
}

/// Writes the process-wide metrics snapshot to `--metrics-out`, if given.
fn write_metrics(args: &Args) -> Result<(), CliError> {
    let Some(path) = args.get("metrics-out") else {
        return Ok(());
    };
    let snapshot = lorentz_core::obs::snapshot();
    let json = serde_json::to_string_pretty(&snapshot)?;
    write_file_atomic(path, json.as_bytes())?;
    // Status goes to stderr: stdout stays machine-readable (--json serve
    // output is parsed as a single JSON document).
    eprintln!(
        "metrics snapshot ({} counters, {} histograms) -> {path}",
        snapshot.counters.len(),
        snapshot.histograms.len()
    );
    Ok(())
}

/// `lorentz train`: train the three-stage pipeline and save the deployment.
pub fn train(args: &Args) -> Result<(), CliError> {
    let synthetic = load_fleet(args.require("fleet")?)?;
    let out = args.require("out")?;
    let mut config = LorentzConfig::paper_defaults();
    config.target_encoding.boosting.n_trees = args.get_parse_or("trees", 100usize)?;
    config.hierarchical.min_bucket = args.get_parse_or("min-bucket", 10usize)?;
    let stage1_threads = args.get_parse_or("stage1-threads", 0usize)?;
    let stage2_threads = args.get_parse_or("stage2-threads", 0usize)?;
    let trained = LorentzPipeline::new(config)?.train_with_threads(
        &synthetic.fleet,
        stage1_threads,
        stage2_threads,
    )?;
    write_file_atomic(out, trained.to_json()?.as_bytes())?;
    println!(
        "trained on {} servers; prediction store v{} with {} keys -> {out}",
        synthetic.fleet.len(),
        trained.store().version(),
        trained.store().len()
    );
    if let Some(store_dir) = args.get("store-dir") {
        let generation = DurableStore::open(store_dir).save(trained.store())?;
        println!("prediction store committed as generation {generation} -> {store_dir}");
    }
    write_metrics(args)
}

/// `lorentz store-verify`: load the newest intact generation from a durable
/// store directory and report how recovery went. Exits nonzero when any
/// generation was corrupt (or the manifest unreadable) so harnesses can
/// gate on a clean store without parsing the report.
pub fn store_verify(args: &Args) -> Result<(), CliError> {
    let dir = args.require("store-dir")?;
    let recovered = DurableStore::open(dir).load()?;
    if let Some(err) = &recovered.manifest_error {
        println!("manifest: UNREADABLE ({err}); recovered via directory scan");
    }
    for (generation, why) in &recovered.skipped {
        println!("gen {generation}: CORRUPT ({why})");
    }
    println!(
        "gen {}: OK — store v{} with {} keys ({} fallback{})",
        recovered.generation,
        recovered.store.version(),
        recovered.store.len(),
        recovered.fallbacks,
        if recovered.fallbacks == 1 { "" } else { "s" }
    );
    if !recovered.skipped.is_empty() || recovered.manifest_error.is_some() {
        return Err(CliError::InvalidInput(format!(
            "store {dir} is damaged: {} corrupt generation(s) skipped{} \
             (recovered from generation {})",
            recovered.skipped.len(),
            if recovered.manifest_error.is_some() {
                ", manifest unreadable"
            } else {
                ""
            },
            recovered.generation
        )));
    }
    Ok(())
}

fn parse_offering(name: &str) -> Result<ServerOffering, CliError> {
    Ok(name.parse::<ServerOffering>()?)
}

/// Maps `"Feature=value,Feature=value"` to schema order.
fn parse_profile<'a>(
    spec: &'a str,
    schema: &lorentz_types::ProfileSchema,
) -> Result<Vec<Option<&'a str>>, CliError> {
    let mut profile: Vec<Option<&str>> = vec![None; schema.len()];
    if spec.is_empty() {
        return Ok(profile);
    }
    for pair in spec.split(',') {
        let (key, value) = pair.split_once('=').ok_or_else(|| {
            CliError::InvalidInput(format!("profile entry '{pair}' is not Feature=value"))
        })?;
        let feature = schema.feature_id(key.trim()).ok_or_else(|| {
            CliError::InvalidInput(format!(
                "unknown profile feature '{key}' (schema: {:?})",
                schema.names()
            ))
        })?;
        profile[feature.index()] = Some(value.trim());
    }
    Ok(profile)
}

/// One owned request parsed from a `--batch` file entry or a serve
/// request line.
struct RequestSpec {
    profile: Vec<Option<String>>,
    offering: ServerOffering,
    path: ResourcePath,
}

/// Reads an optional unsigned-integer field from a request object.
fn opt_u64_field(item: &serde::Value, field: &str, label: &str) -> Result<Option<u64>, CliError> {
    use serde::Deserialize;
    match item.get_field(field) {
        None => Ok(None),
        Some(v) => u64::from_value(v)
            .map(Some)
            .map_err(|_| CliError::InvalidInput(format!("{label}: {field} must be an integer"))),
    }
}

/// Parses one request object. Every field is optional — `offering` defaults
/// to `general_purpose`, `profile` entries default to missing, and the path
/// ids default to 0. Shared between `--batch` entries and `serve` request
/// lines.
fn parse_request_value(
    item: &serde::Value,
    schema: &lorentz_types::ProfileSchema,
    label: &str,
) -> Result<RequestSpec, CliError> {
    let ctx = |msg: String| CliError::InvalidInput(format!("{label}: {msg}"));
    if item.as_map().is_none() {
        return Err(ctx("must be a JSON object".into()));
    }
    let offering = match item.get_field("offering") {
        None => ServerOffering::GeneralPurpose,
        Some(v) => v
            .as_str()
            .ok_or_else(|| ctx("offering must be a string".into()))?
            .parse()
            .map_err(|e: lorentz_types::LorentzError| ctx(e.to_string()))?,
    };
    let mut profile: Vec<Option<String>> = vec![None; schema.len()];
    if let Some(p) = item.get_field("profile") {
        let entries = p
            .as_map()
            .ok_or_else(|| ctx("profile must be an object of Feature: value".into()))?;
        for (name, v) in entries {
            let feature = schema.feature_id(name).ok_or_else(|| {
                ctx(format!(
                    "unknown profile feature '{name}' (schema: {:?})",
                    schema.names()
                ))
            })?;
            let s = v
                .as_str()
                .ok_or_else(|| ctx(format!("profile value for '{name}' must be a string")))?;
            profile[feature.index()] = Some(s.to_owned());
        }
    }
    let id = |field: &str| -> Result<u32, CliError> {
        Ok(opt_u64_field(item, field, label)?
            .map(|v| u32::try_from(v).map_err(|_| ctx(format!("{field} must fit in 32 bits"))))
            .transpose()?
            .unwrap_or(0))
    };
    Ok(RequestSpec {
        profile,
        offering,
        path: ResourcePath::new(
            CustomerId(id("customer")?),
            SubscriptionId(id("subscription")?),
            ResourceGroupId(id("resource_group")?),
        ),
    })
}

/// Parses a `--batch` file: a JSON array of request objects.
fn parse_batch_file(
    json: &str,
    schema: &lorentz_types::ProfileSchema,
) -> Result<Vec<RequestSpec>, CliError> {
    let value = serde_json::parse(json).map_err(|e| CliError::Json(e.to_string()))?;
    let items = value.as_seq().ok_or_else(|| {
        CliError::InvalidInput("batch file must be a JSON array of request objects".into())
    })?;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| parse_request_value(item, schema, &format!("request #{i}")))
        .collect()
}

/// Serves every request in a `--batch` file through one batched call.
fn recommend_batch(
    args: &Args,
    trained: &TrainedLorentz,
    batch_path: &str,
) -> Result<(), CliError> {
    use serde::Serialize;
    let json = fs::read_to_string(batch_path).map_err(|e| CliError::io(batch_path, e))?;
    let specs = parse_batch_file(&json, trained.profiles().schema())?;
    let requests: Vec<RecommendRequest<'_>> = specs
        .iter()
        .map(|s| RecommendRequest {
            profile: s.profile.iter().map(|v| v.as_deref()).collect(),
            offering: s.offering,
            path: s.path,
        })
        .collect();
    let results = match args.get_or("source", "hierarchical") {
        "hierarchical" => trained.recommend_batch(&requests, ModelKind::Hierarchical),
        "target-encoding" => trained.recommend_batch(&requests, ModelKind::TargetEncoding),
        "store" => trained.recommend_batch_from_store(&requests),
        other => return Err(CliError::Usage(format!("unknown source '{other}'"))),
    };
    if args.has_switch("json") {
        let rows: Vec<serde::Value> = results
            .iter()
            .map(|r| match r {
                Ok(rec) => serde::Value::Map(vec![("ok".into(), rec.to_value())]),
                Err(e) => {
                    serde::Value::Map(vec![("error".into(), serde::Value::Str(e.to_string()))])
                }
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&serde::Value::Seq(rows))?
        );
    } else {
        for (i, r) in results.iter().enumerate() {
            match r {
                Ok(rec) => println!("[{i}] {rec}"),
                Err(e) => println!("[{i}] error: {e}"),
            }
        }
    }
    Ok(())
}

/// `lorentz recommend`: serve one recommendation (or a `--batch` file of
/// them) from a saved deployment.
pub fn recommend(args: &Args) -> Result<(), CliError> {
    let trained = load_model(args.require("model")?)?;
    if let Some(batch_path) = args.get("batch") {
        recommend_batch(args, &trained, batch_path)?;
        return write_metrics(args);
    }
    let offering = parse_offering(args.get_or("offering", "general_purpose"))?;
    let spec = args.get_or("profile", "").to_owned();
    let profile = parse_profile(&spec, trained.profiles().schema())?;
    let path = ResourcePath::new(
        CustomerId(args.get_parse_or("customer", 0u32)?),
        SubscriptionId(args.get_parse_or("subscription", 0u32)?),
        ResourceGroupId(args.get_parse_or("resource-group", 0u32)?),
    );
    let request = RecommendRequest {
        profile,
        offering,
        path,
    };
    let rec = match args.get_or("source", "hierarchical") {
        "hierarchical" => trained.recommend(&request, ModelKind::Hierarchical),
        "target-encoding" => trained.recommend(&request, ModelKind::TargetEncoding),
        "store" => trained.recommend_from_store(&request),
        other => return Err(CliError::Usage(format!("unknown source '{other}'"))),
    }?;
    if args.has_switch("json") {
        println!("{}", serde_json::to_string_pretty(&rec)?);
    } else {
        println!("{rec}");
    }
    write_metrics(args)
}

/// Reads an optional flag and parses it, keeping `None` when absent.
fn parse_opt_flag<T: std::str::FromStr>(args: &Args, key: &str) -> Result<Option<T>, CliError> {
    match args.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::Usage(format!("flag --{key} has invalid value '{v}'"))),
    }
}

/// One parsed line of a serve stream: a recommendation request or an
/// interleaved satisfaction signal.
#[derive(Debug)]
enum ServeLine {
    /// A recommendation request for the worker pool.
    Request(ServeRequest),
    /// A satisfaction signal for the λ-writer, applied before later lines
    /// are served.
    Feedback(SatisfactionSignal),
}

/// Parses a serve stream: one JSON object per line (blank lines ignored).
/// A line with a `gamma` field is a satisfaction signal (`gamma` in
/// [-1, 1], plus the path ids and optional `offering`); any other line is a
/// request — the same shape as a `--batch` entry plus optional `id`
/// (defaults to the request's position among requests) and `deadline_ms`.
fn parse_serve_lines(
    text: &str,
    path: &str,
    schema: &lorentz_types::ProfileSchema,
) -> Result<Vec<ServeLine>, CliError> {
    use serde::Deserialize;
    let mut lines = Vec::new();
    let mut request_count = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let label = format!("{path}:{}", lineno + 1);
        let value =
            serde_json::parse(line).map_err(|e| CliError::InvalidInput(format!("{label}: {e}")))?;
        let spec = parse_request_value(&value, schema, &label)?;
        if let Some(g) = value.get_field("gamma") {
            let gamma = f64::from_value(g)
                .map_err(|_| CliError::InvalidInput(format!("{label}: gamma must be a number")))?;
            let signal = SatisfactionSignal::new(spec.path, spec.offering, gamma)
                .map_err(|e| CliError::InvalidInput(format!("{label}: {e}")))?;
            lines.push(ServeLine::Feedback(signal));
        } else {
            let id = opt_u64_field(&value, "id", &label)?.unwrap_or(request_count);
            let deadline = opt_u64_field(&value, "deadline_ms", &label)?.map(Duration::from_millis);
            request_count += 1;
            lines.push(ServeLine::Request(ServeRequest {
                id,
                profile: spec.profile,
                offering: spec.offering,
                path: spec.path,
                deadline,
            }));
        }
    }
    Ok(lines)
}

/// Blocks until every accepted request has been answered — the barrier that
/// keeps a feedback line from shifting requests submitted before it.
fn wait_for_quiescence(engine: &ServingEngine) {
    loop {
        let stats = engine.stats();
        if stats.answered >= stats.accepted {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// `lorentz serve`: run the concurrent serving engine over a newline-
/// delimited stream of requests and interleaved feedback signals. Requests
/// are submitted through the bounded queue (rejections are reported, not
/// fatal); a feedback line waits for the in-flight requests to answer,
/// then applies and hot-publishes its signal, so every later request
/// serves under the updated λ. The engine drains gracefully and the
/// answers are printed to stdout ordered by request id.
pub fn serve(args: &Args) -> Result<(), CliError> {
    use serde::Serialize;
    let deployment = Arc::new(load_model(args.require("model")?)?);
    let kind = match args.get_or("kind", "hierarchical") {
        "hierarchical" => ModelKind::Hierarchical,
        "target-encoding" => ModelKind::TargetEncoding,
        other => return Err(CliError::Usage(format!("unknown model kind '{other}'"))),
    };
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        workers: args.get_parse_or("workers", defaults.workers)?,
        queue_capacity: args.get_parse_or("queue-capacity", defaults.queue_capacity)?,
        degraded_threshold: parse_opt_flag(args, "degraded-at")?.or(defaults.degraded_threshold),
        default_deadline: parse_opt_flag::<u64>(args, "deadline-ms")?.map(Duration::from_millis),
        kind,
        shards: args.get_parse_or("shards", defaults.shards)?,
        ..defaults
    };
    if let Some(addr) = args.get("listen") {
        return serve_listen(args, deployment, config, addr);
    }
    let requests_path = args.require("requests")?;
    let text = fs::read_to_string(requests_path).map_err(|e| CliError::io(requests_path, e))?;
    let lines = parse_serve_lines(&text, requests_path, deployment.profiles().schema())?;
    if let Some(spec) = args.get("follow") {
        let (endpoint, deprecated) = Endpoint::parse_compat(spec)?;
        if deprecated {
            eprintln!(
                "warning: bare-path --follow is deprecated; write --follow file:{spec} \
                 (tcp://HOST:PORT subscribes to a leader's --replicate-listen)"
            );
        }
        return serve_follow(args, deployment, lines, kind, &endpoint);
    }
    let total = lines
        .iter()
        .filter(|l| matches!(l, ServeLine::Request(_)))
        .count();
    let (engine, responses) = match args.get("feedback-wal") {
        Some(wal_path) => ServingEngine::start_with_wal(Arc::clone(&deployment), config, wal_path)?,
        None => ServingEngine::start(Arc::clone(&deployment), config)?,
    };
    let mut rejected: Vec<(u64, lorentz_serve::ServeError)> = Vec::new();
    for line in lines {
        match line {
            ServeLine::Request(request) => {
                let id = request.id;
                if let Err(e) = engine.submit(request) {
                    rejected.push((id, e));
                }
            }
            ServeLine::Feedback(signal) => {
                // Requests already submitted answer under the current λ;
                // the signal publishes before anything later is admitted.
                wait_for_quiescence(&engine);
                if engine.submit_feedback(signal).is_ok() {
                    engine.flush_feedback();
                }
            }
        }
    }
    let store_version = engine.store_version();
    let lambda_version = engine.lambda_version();
    let stats = engine.drain();
    let mut answered: Vec<ServeResponse> = responses.into_iter().collect();
    answered.sort_by_key(|r| r.id);
    if args.has_switch("json") {
        let rows: Vec<serde::Value> = answered
            .iter()
            .map(|r| {
                let mut fields = vec![("id".to_owned(), serde::Value::UInt(r.id))];
                match &r.result {
                    Ok(rec) => fields.push(("ok".to_owned(), rec.to_value())),
                    Err(e) => fields.push(("error".to_owned(), serde::Value::Str(e.to_string()))),
                }
                fields.push(("degraded".to_owned(), serde::Value::Bool(r.degraded)));
                fields.push(("latency_ns".to_owned(), serde::Value::UInt(r.latency_ns)));
                serde::Value::Map(fields)
            })
            .chain(rejected.iter().map(|(id, e)| {
                serde::Value::Map(vec![
                    ("id".to_owned(), serde::Value::UInt(*id)),
                    ("rejected".to_owned(), serde::Value::Str(e.to_string())),
                ])
            }))
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&serde::Value::Seq(rows))?
        );
    } else {
        for r in &answered {
            let tag = if r.degraded { " (degraded)" } else { "" };
            match &r.result {
                Ok(rec) => println!("[{}]{tag} {rec}", r.id),
                Err(e) => println!("[{}]{tag} error: {e}", r.id),
            }
        }
        for (id, e) in &rejected {
            println!("[{id}] rejected: {e}");
        }
    }
    // Status goes to stderr so stdout stays machine-readable answers.
    eprintln!(
        "served {total} requests against store v{store_version}: \
         {} accepted, {} answered, {} rejected, {} timed out, {} degraded, \
         {} feedback applied (lambda v{lambda_version})",
        stats.accepted,
        stats.answered,
        stats.rejected,
        stats.timed_out,
        stats.degraded,
        stats.feedback_applied
    );
    write_metrics(args)
}

/// `lorentz serve --listen`: put the TCP front end on the engine. Binds the
/// address, prints `listening on <addr>` to stderr (port 0 resolves to the
/// kernel-assigned port, so harnesses can parse it), and serves persistent
/// connections speaking the length-prefixed JSON frame protocol until a
/// client sends `{"op": "drain"}`. The post-drain ledger and per-connection
/// accounting go to stderr; `--json` additionally prints the report as JSON
/// on stdout.
fn serve_listen(
    args: &Args,
    deployment: Arc<TrainedLorentz>,
    config: ServeConfig,
    addr: &str,
) -> Result<(), CliError> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| CliError::io(addr, e))?;
    let local = listener.local_addr().map_err(|e| CliError::io(addr, e))?;
    let (engine, responses) = match args.get("feedback-wal") {
        Some(wal_path) => ServingEngine::start_with_wal(Arc::clone(&deployment), config, wal_path)?,
        None => ServingEngine::start(Arc::clone(&deployment), config)?,
    };
    let net_defaults = NetConfig::default();
    let net_config = NetConfig {
        max_frame_len: args.get_parse_or("max-frame-len", net_defaults.max_frame_len)?,
        ..net_defaults
    };
    // Replication fanout rides on its own listener so follower traffic
    // never mixes with client frames.
    let _replication = match args.get("replicate-listen") {
        Some(spec) => {
            let endpoint = Endpoint::parse(spec)?;
            let repl_addr = endpoint.as_tcp().ok_or_else(|| {
                CliError::Usage(format!(
                    "--replicate-listen must be a tcp://HOST:PORT endpoint, got '{endpoint}'"
                ))
            })?;
            let repl_listener =
                std::net::TcpListener::bind(repl_addr).map_err(|e| CliError::io(repl_addr, e))?;
            let repl = serve_replication(&engine, repl_listener, ReplicationConfig::default())
                .map_err(|e| CliError::io(repl_addr, e))?;
            eprintln!("replicating on {}", repl.local_addr());
            Some(repl)
        }
        None => None,
    };
    eprintln!("listening on {local} ({} shards)", config.shards);
    let report = serve_net(deployment, engine, responses, listener, net_config)
        .map_err(|e| CliError::io(addr, e))?;
    let stats = report.engine;
    eprintln!(
        "served {} requests against store v{}: \
         {} accepted, {} answered, {} rejected, {} timed out, {} degraded, \
         {} feedback applied (lambda v{})",
        stats.submitted,
        report.store_version,
        stats.accepted,
        stats.answered,
        stats.rejected,
        stats.timed_out,
        stats.degraded,
        stats.feedback_applied,
        report.lambda_version,
    );
    eprintln!(
        "net: {} connections, {} frames in, {} frames out, {} frame errors, \
         {} disconnects, {} dropped responses",
        report.connections,
        report.frames_in,
        report.frames_out,
        report.frame_errors,
        report.disconnects,
        report.dropped_responses,
    );
    match report.fenced_by {
        Some(observed) => eprintln!(
            "leader term {}: FENCED by term {observed} — a newer leader owns the \
             WAL lineage; feedback was refused after the fence",
            report.leader_term
        ),
        None => eprintln!("leader term {}", report.leader_term),
    }
    if args.has_switch("json") {
        let mut fields = vec![
            ("submitted".to_owned(), serde::Value::UInt(stats.submitted)),
            ("accepted".to_owned(), serde::Value::UInt(stats.accepted)),
            ("answered".to_owned(), serde::Value::UInt(stats.answered)),
            ("rejected".to_owned(), serde::Value::UInt(stats.rejected)),
            ("timed_out".to_owned(), serde::Value::UInt(stats.timed_out)),
            ("degraded".to_owned(), serde::Value::UInt(stats.degraded)),
            (
                "feedback_applied".to_owned(),
                serde::Value::UInt(stats.feedback_applied),
            ),
            (
                "store_version".to_owned(),
                serde::Value::UInt(report.store_version),
            ),
            (
                "lambda_version".to_owned(),
                serde::Value::UInt(report.lambda_version),
            ),
            (
                "connections".to_owned(),
                serde::Value::UInt(report.connections),
            ),
            ("frames_in".to_owned(), serde::Value::UInt(report.frames_in)),
            (
                "frames_out".to_owned(),
                serde::Value::UInt(report.frames_out),
            ),
            (
                "frame_errors".to_owned(),
                serde::Value::UInt(report.frame_errors),
            ),
            (
                "disconnects".to_owned(),
                serde::Value::UInt(report.disconnects),
            ),
            (
                "dropped_responses".to_owned(),
                serde::Value::UInt(report.dropped_responses),
            ),
            (
                "leader_term".to_owned(),
                serde::Value::UInt(report.leader_term),
            ),
            (
                "fenced".to_owned(),
                serde::Value::Bool(report.fenced_by.is_some()),
            ),
        ];
        if let Some(observed) = report.fenced_by {
            fields.push(("fenced_by".to_owned(), serde::Value::UInt(observed)));
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&serde::Value::Map(fields))?
        );
    }
    write_metrics(args)
}

/// `lorentz serve --follow`: run the replication follower against a
/// `file:PATH` or `tcp://HOST:PORT` endpoint. The follower catches up on
/// the leader's stream before serving (so the first answer already
/// reflects every durable signal), applies λ deltas as they arrive, and
/// serves requests from the replicated epochs. Feedback lines are
/// rejected while following — only the leader mints epochs — but accepted
/// after a promotion (`--promote-listen`, TCP followers only) flips this
/// replica into a serving leader.
fn serve_follow(
    args: &Args,
    deployment: Arc<TrainedLorentz>,
    lines: Vec<ServeLine>,
    kind: ModelKind,
    endpoint: &Endpoint,
) -> Result<(), CliError> {
    use serde::Serialize;
    let mut config = FollowerConfig {
        kind,
        ..FollowerConfig::default()
    };
    if let Some(path) = args.get("replica-wal") {
        config.local_wal = Some(path.into());
    }
    if let Some(listen) = args.get("promote-listen") {
        let wal = args.get("replica-wal").ok_or_else(|| {
            CliError::Usage(
                "--promote-listen requires --replica-wal (the promoted leader replays it)"
                    .to_owned(),
            )
        })?;
        config.promote = Some(PromoteConfig {
            listen: Some(listen.to_owned()),
            detection_timeout: Duration::from_millis(args.get_parse_or("promote-after-ms", 1000)?),
            ..PromoteConfig::new(wal)
        });
    }
    let follower = match endpoint {
        Endpoint::File(path) => FollowerEngine::start(deployment, path, config)?,
        Endpoint::Tcp(addr) => FollowerEngine::start_tcp(deployment, addr, config)?,
    };
    // Catch-up is complete: harnesses sequencing a leader kill can wait
    // for this line.
    eprintln!(
        "following {endpoint} (caught up to epoch {})",
        follower.stats().last_epoch
    );
    if args.has_switch("await-promotion") {
        // Harness hook: block until the leader dies and this replica wins
        // the promotion, then serve the request lines as the new leader.
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while !follower.is_leader() {
            if std::time::Instant::now() >= deadline {
                return Err(CliError::InvalidInput(
                    "timed out waiting for promotion (is --promote-listen set?)".to_owned(),
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        eprintln!("promoted to leader; serving from the local WAL");
    }
    let mut rows: Vec<serde::Value> = Vec::new();
    let mut served = 0u64;
    let mut feedback_rejected = 0u64;
    let mut feedback_applied = 0u64;
    for line in lines {
        match line {
            ServeLine::Request(request) => {
                let started = std::time::Instant::now();
                let result = follower.recommend_one(&request);
                let latency_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                served += 1;
                if args.has_switch("json") {
                    let mut fields = vec![("id".to_owned(), serde::Value::UInt(request.id))];
                    match &result {
                        Ok(rec) => fields.push(("ok".to_owned(), rec.to_value())),
                        Err(e) => {
                            fields.push(("error".to_owned(), serde::Value::Str(e.to_string())));
                        }
                    }
                    fields.push(("degraded".to_owned(), serde::Value::Bool(false)));
                    fields.push(("latency_ns".to_owned(), serde::Value::UInt(latency_ns)));
                    rows.push(serde::Value::Map(fields));
                } else {
                    match &result {
                        Ok(rec) => println!("[{}] {rec}", request.id),
                        Err(e) => println!("[{}] error: {e}", request.id),
                    }
                }
            }
            ServeLine::Feedback(signal) => match follower.submit_feedback(signal) {
                Ok(()) => feedback_applied += 1,
                Err(_) => {
                    feedback_rejected += 1;
                    if !args.has_switch("json") {
                        println!("[feedback] rejected: follower is read-only");
                    }
                }
            },
        }
    }
    if args.has_switch("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde::Value::Seq(rows))?
        );
    }
    // Chaos/standby hook: stay alive (tailing, promotable, serving the
    // promoted listener) for a fixed window before the graceful stop.
    if let Some(run_ms) = parse_opt_flag::<u64>(args, "run-ms")? {
        let deadline = std::time::Instant::now() + Duration::from_millis(run_ms);
        while std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    let lambda_version = follower.lambda_version();
    let promoted = follower.is_leader();
    let term = follower.leader_term();
    let state_label = match follower.state() {
        lorentz_serve::ReplicaState::Following => "following".to_owned(),
        lorentz_serve::ReplicaState::Leader => "leader".to_owned(),
        lorentz_serve::ReplicaState::Halted(why) => format!("halted: {why}"),
        lorentz_serve::ReplicaState::Demoted { term, observed } => {
            format!("demoted (term {term} fenced by term {observed})")
        }
    };
    let stats = follower.stop();
    // Status goes to stderr so stdout stays machine-readable answers.
    let applied_note = if promoted {
        format!(", {feedback_applied} feedback applied (promoted leader)")
    } else {
        String::new()
    };
    eprintln!(
        "followed {endpoint}: {} deltas applied, {} skipped, {} legacy signals \
         (lambda v{lambda_version}, last epoch {}); served {served} requests, \
         {feedback_rejected} feedback rejected (read-only){applied_note}; \
         state {state_label}, term {term}, {} duplicates",
        stats.applied, stats.skipped, stats.legacy, stats.last_epoch, stats.duplicates
    );
    write_metrics(args)
}

/// `lorentz wal-verify`: walk a feedback WAL read-only and report a
/// per-record verdict, mirroring `store-verify` for the signal log. Never
/// repairs the file — a torn tail is described, not truncated — but exits
/// nonzero when one is found so harnesses can gate on an intact log.
pub fn wal_verify(args: &Args) -> Result<(), CliError> {
    let wal_path = args.require("wal")?;
    let report = lorentz_core::SignalWal::verify(wal_path)?;
    for r in &report.records {
        match (&r.signal, r.term) {
            (Some(s), _) => {
                let framing = match r.epoch {
                    Some(epoch) => format!("epoch {epoch}, {} delta keys", r.delta_keys),
                    None => "legacy bare signal".to_owned(),
                };
                println!(
                    "record {} @ {}: OK — {framing}; signal {}|{}|{} {} γ{:+}",
                    r.index,
                    r.offset,
                    s.path.customer.0,
                    s.path.subscription.0,
                    s.path.resource_group.0,
                    s.offering,
                    s.gamma
                );
            }
            (None, Some(term)) => {
                println!(
                    "record {} @ {}: OK — term marker (leader term {term})",
                    r.index, r.offset
                );
            }
            (None, None) => {
                println!("record {} @ {}: OK — empty record", r.index, r.offset);
            }
        }
    }
    // The resume position a follower would hand the leader on reconnect.
    let last_epoch = report
        .records
        .iter()
        .filter_map(|r| r.epoch)
        .max()
        .unwrap_or(0);
    match &report.corrupt {
        Some((offset, why)) => {
            println!(
                "record {} @ {offset}: CORRUPT ({why}); {} trailing bytes unreadable \
                 (last epoch {last_epoch})",
                report.records.len(),
                report.trailing_bytes
            );
            Err(CliError::InvalidInput(format!(
                "WAL {wal_path} is damaged: corrupt frame at offset {offset} ({why}), \
                 {} intact record(s) precede it",
                report.records.len()
            )))
        }
        None => {
            println!(
                "{} records OK, tail clean (last epoch {last_epoch})",
                report.records.len()
            );
            Ok(())
        }
    }
}

/// `lorentz feedback`: replay a file of CRI ticket lines through the
/// Table-1 keyword classifier into a saved deployment's personalizer, and
/// optionally save the updated model.
pub fn feedback(args: &Args) -> Result<(), CliError> {
    let mut trained = load_model(args.require("model")?)?;
    let tickets_path = args.require("tickets")?;
    let text = fs::read_to_string(tickets_path).map_err(|e| CliError::io(tickets_path, e))?;
    let schema = trained.profiles().schema().clone();
    let (mut positive, mut negative, mut neutral) = (0u64, 0u64, 0u64);
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let label = format!("{tickets_path}:{}", lineno + 1);
        let value =
            serde_json::parse(line).map_err(|e| CliError::InvalidInput(format!("{label}: {e}")))?;
        let spec = parse_request_value(&value, &schema, &label)?;
        let text_field = |field: &str| -> Result<String, CliError> {
            match value.get_field(field) {
                None => Ok(String::new()),
                Some(v) => v.as_str().map(ToOwned::to_owned).ok_or_else(|| {
                    CliError::InvalidInput(format!("{label}: {field} must be a string"))
                }),
            }
        };
        let ticket = CriTicket::new(
            &text_field("symptoms")?,
            &text_field("subject")?,
            &text_field("resolution")?,
        );
        let gamma = trained.apply_ticket(spec.path, spec.offering, &ticket);
        let sentiment = match gamma as i8 {
            1 => {
                positive += 1;
                "performance-sensitive (+1)"
            }
            -1 => {
                negative += 1;
                "price-sensitive (-1)"
            }
            _ => {
                neutral += 1;
                "neutral (0)"
            }
        };
        println!(
            "{label}: {sentiment}; lambda[{}|{}|{}] = {:+.3}",
            spec.path.customer.0,
            spec.path.subscription.0,
            spec.path.resource_group.0,
            trained.personalizer().lambda(&spec.path, spec.offering)
        );
    }
    println!(
        "{} tickets: {positive} performance-sensitive, {negative} price-sensitive, \
         {neutral} neutral; {} personalized profiles",
        positive + negative + neutral,
        trained.personalizer().profiles()
    );
    if let Some(out) = args.get("out") {
        write_file_atomic(out, trained.to_json()?.as_bytes())?;
        println!("updated model -> {out}");
    }
    Ok(())
}

/// `lorentz offering`: recommend a server offering (future-work extension).
pub fn offering(args: &Args) -> Result<(), CliError> {
    let synthetic = load_fleet(args.require("fleet")?)?;
    let recommender = OfferingRecommender::fit(
        synthetic.fleet.profiles(),
        synthetic.fleet.offerings(),
        OfferingRecommenderConfig::default(),
    )?;
    let spec = args.get_or("profile", "").to_owned();
    let profile = parse_profile(&spec, synthetic.fleet.profiles().schema())?;
    let x = synthetic.fleet.profiles().encode_row(&profile)?;
    let rec = recommender.recommend(&x)?;
    println!(
        "offering: {} (confidence {:.0}%, {} reference instances{})",
        rec.offering,
        100.0 * rec.confidence,
        rec.bucket_size,
        rec.matched_feature
            .map(|f| format!(", matched on {f}"))
            .unwrap_or_else(|| ", fleet-wide prior".into())
    );
    Ok(())
}

/// `lorentz report`: render a markdown fleet health report.
pub fn report(args: &Args) -> Result<(), CliError> {
    let synthetic = load_fleet(args.require("fleet")?)?;
    let report = lorentz_core::fleet_report(
        &LorentzConfig::paper_defaults(),
        &lorentz_core::CostModel::default(),
        &synthetic.fleet,
    )?;
    print!("{}", report.to_markdown());
    Ok(())
}

/// `lorentz ticket`: classify a CRI ticket with the Table-1 filters.
pub fn ticket(args: &Args) -> Result<(), CliError> {
    let t = CriTicket::new(
        args.get_or("symptoms", ""),
        args.get_or("subject", ""),
        args.get_or("resolution", ""),
    );
    let gamma = classify_ticket(&t);
    let label = match gamma as i8 {
        1 => "performance-sensitive (+1)",
        -1 => "price-sensitive (-1)",
        _ => "neutral (0)",
    };
    println!("{label}");
    Ok(())
}

/// `lorentz persim`: run the §5.3 personalization simulation.
pub fn persim(args: &Args) -> Result<(), CliError> {
    let config = PersonalizationSimConfig {
        signal_rate: args.get_parse_or("signal-rate", 0.4f64)?,
        signal_noise: args.get_parse_or("signal-noise", 0.13f64)?,
        stage2_sigma: args.get_parse_or("sigma", 0.1f64)?,
        seed: args.get_parse_or("seed", 0u64)?,
        ..PersonalizationSimConfig::default()
    };
    let iters = args.get_parse_or("iters", 40usize)?;
    let mut sim = PersonalizationSim::new(config)?;
    println!(
        "{:>5} {:>8} {:>8} {:>10}",
        "iter", "rmse", "p80", "% correct"
    );
    for i in 1..=iters {
        let m = sim.step();
        if i == 1 || i % 5 == 0 {
            println!(
                "{i:>5} {:>8.3} {:>8.3} {:>10.1}",
                m.rmse,
                m.p80_abs_error,
                100.0 * m.correctly_provisioned
            );
        }
    }
    Ok(())
}

/// `lorentz chaos`: run the seeded cluster chaos harness against this very
/// binary. Each seed spawns a real leader + standbys, drives load, injects
/// the seed's fault schedule, heals, fences, and checks the split-brain
/// invariants; any violation prints the seed and schedule for replay and
/// the command exits nonzero.
pub fn chaos(args: &Args) -> Result<(), CliError> {
    let seed = args.get_parse_or("seed", 1u64)?;
    let count = args.get_parse_or("seeds", 1u64)?;
    if count == 0 {
        return Err(CliError::Usage("--seeds must be at least 1".to_owned()));
    }
    let binary = std::env::current_exe().map_err(|e| CliError::io("current executable", e))?;
    let mut config = lorentz_chaos::ChaosConfig::new(binary);
    config.model = args.get("model").map(Into::into);
    config.work_dir = args.get("work-dir").map(Into::into);
    config.standbys = args.get_parse_or("standbys", config.standbys)?;
    config.run_ms = args.get_parse_or("run-ms", config.run_ms)?;
    config.promote_after_ms = args.get_parse_or("promote-after-ms", config.promote_after_ms)?;
    config.keep_work_dir = args.has_switch("keep-dirs");
    config.failpoints = args.get("failpoints").map(ToOwned::to_owned);
    if config.standbys < 2 {
        return Err(CliError::Usage(
            "--standbys must be at least 2 (the harness checks a promotion race)".to_owned(),
        ));
    }
    let mut failed = 0u64;
    for s in seed..seed + count {
        let report = lorentz_chaos::run_seed(s, &config)
            .map_err(|e| CliError::InvalidInput(format!("chaos seed {s}: {e}")))?;
        if report.passed() {
            println!(
                "seed {s}: PASS — fault {}, {} signals acked ({} diverged), winner term {}",
                report.schedule.fault.kind(),
                report.warmup_acked,
                report.diverged_acked,
                report.winner_term
            );
        } else {
            failed += 1;
            println!("seed {s}: FAIL — schedule: {}", report.schedule);
            for v in &report.violations {
                println!("  violation: {v}");
            }
            println!(
                "  artifacts kept in {}; replay with: lorentz chaos --seed {s}",
                report.work_dir.display()
            );
        }
    }
    if failed > 0 {
        return Err(CliError::InvalidInput(format!(
            "{failed}/{count} chaos seed(s) violated cluster invariants"
        )));
    }
    println!("{count} chaos seed(s) passed");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(v.iter().map(|s| (*s).to_owned())).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("lorentz-cli-test-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn generate_train_recommend_round_trip() {
        let fleet_path = tmp("fleet.json");
        let model_path = tmp("model.json");
        generate(&args(&[
            "generate",
            "--servers",
            "120",
            "--seed",
            "3",
            "--out",
            &fleet_path,
        ]))
        .unwrap();
        rightsize(&args(&["rightsize", "--fleet", &fleet_path])).unwrap();
        train(&args(&[
            "train",
            "--fleet",
            &fleet_path,
            "--out",
            &model_path,
            "--trees",
            "10",
            "--min-bucket",
            "3",
        ]))
        .unwrap();
        recommend(&args(&[
            "recommend",
            "--model",
            &model_path,
            "--offering",
            "general_purpose",
            "--profile",
            "SegmentName=segmentname-0",
            "--source",
            "store",
        ]))
        .unwrap();
        offering(&args(&[
            "offering",
            "--fleet",
            &fleet_path,
            "--profile",
            "SegmentName=segmentname-0",
        ]))
        .unwrap();
        let batch_path = tmp("requests.json");
        std::fs::write(
            &batch_path,
            r#"[
              {"offering": "general_purpose",
               "profile": {"SegmentName": "segmentname-0"},
               "customer": 1, "subscription": 2, "resource_group": 3},
              {"profile": {"VerticalName": "verticalname-1"}},
              {}
            ]"#,
        )
        .unwrap();
        for source in ["hierarchical", "target-encoding", "store"] {
            recommend(&args(&[
                "recommend",
                "--model",
                &model_path,
                "--batch",
                &batch_path,
                "--source",
                source,
            ]))
            .unwrap();
        }
        recommend(&args(&[
            "recommend",
            "--model",
            &model_path,
            "--batch",
            &batch_path,
            "--json",
        ]))
        .unwrap();
        let ndjson_path = tmp("requests.ndjson");
        std::fs::write(
            &ndjson_path,
            concat!(
                r#"{"id": 7, "offering": "general_purpose", "profile": {"SegmentName": "segmentname-0"}}"#,
                "\n\n",
                r#"{"profile": {"VerticalName": "verticalname-1"}, "customer": 4}"#,
                "\n",
                r#"{}"#,
                "\n",
            ),
        )
        .unwrap();
        serve(&args(&[
            "serve",
            "--model",
            &model_path,
            "--requests",
            &ndjson_path,
            "--workers",
            "2",
            "--json",
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&ndjson_path);
        let _ = std::fs::remove_file(&batch_path);
        let _ = std::fs::remove_file(&fleet_path);
        let _ = std::fs::remove_file(&model_path);
    }

    #[test]
    fn train_metrics_out_writes_parseable_snapshot() {
        let fleet_path = tmp("metrics-fleet.json");
        let model_path = tmp("metrics-model.json");
        let metrics_path = tmp("metrics.json");
        generate(&args(&[
            "generate",
            "--servers",
            "90",
            "--seed",
            "11",
            "--out",
            &fleet_path,
        ]))
        .unwrap();
        train(&args(&[
            "train",
            "--fleet",
            &fleet_path,
            "--out",
            &model_path,
            "--trees",
            "8",
            "--stage1-threads",
            "2",
            "--stage2-threads",
            "2",
            "--metrics-out",
            &metrics_path,
        ]))
        .unwrap();

        let raw = std::fs::read_to_string(&metrics_path).unwrap();
        let snapshot: lorentz_core::obs::MetricsSnapshot =
            serde_json::from_str(&raw).expect("metrics snapshot must be valid JSON");
        for span in [
            "train.stage1.span_ns",
            "train.stage2.span_ns",
            "train.publish.span_ns",
            "train.personalizer.span_ns",
        ] {
            assert!(
                snapshot.histogram(span).is_some(),
                "snapshot missing stage span '{span}'"
            );
        }
        assert!(snapshot.counter("train.stage1.records").unwrap() >= 90);
        let _ = std::fs::remove_file(&fleet_path);
        let _ = std::fs::remove_file(&model_path);
        let _ = std::fs::remove_file(&metrics_path);
    }

    #[test]
    fn batch_file_parsing_rejects_bad_requests() {
        let schema = lorentz_types::ProfileSchema::azure_postgres();
        assert!(parse_batch_file("not json", &schema).is_err());
        assert!(parse_batch_file(r#"{"a": 1}"#, &schema).is_err()); // not an array
        assert!(parse_batch_file(r#"[1]"#, &schema).is_err()); // entry not an object
        assert!(parse_batch_file(r#"[{"offering": "huge"}]"#, &schema).is_err());
        assert!(parse_batch_file(r#"[{"profile": {"NotAFeature": "x"}}]"#, &schema).is_err());
        assert!(parse_batch_file(r#"[{"profile": {"SegmentName": 4}}]"#, &schema).is_err());
        assert!(parse_batch_file(r#"[{"customer": "not-a-number"}]"#, &schema).is_err());

        let specs = parse_batch_file(
            r#"[{"offering": "burstable", "profile": {"SegmentName": "s1"},
                 "customer": 7, "subscription": 8, "resource_group": 9}, {}]"#,
            &schema,
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].offering, ServerOffering::Burstable);
        assert_eq!(specs[0].profile[0].as_deref(), Some("s1"));
        assert_eq!(specs[0].path.customer, CustomerId(7));
        assert_eq!(specs[1].offering, ServerOffering::GeneralPurpose);
        assert_eq!(specs[1].profile, vec![None; schema.len()]);
        assert_eq!(specs[1].path.customer, CustomerId(0));
    }

    #[test]
    fn request_lines_parse_ids_and_deadlines() {
        let schema = lorentz_types::ProfileSchema::azure_postgres();
        let text = concat!(
            r#"{"id": 42, "deadline_ms": 250, "offering": "burstable"}"#,
            "\n",
            r#"{"profile": {"SegmentName": "s1"}}"#,
            "\n",
        );
        let lines = parse_serve_lines(text, "requests.ndjson", &schema).unwrap();
        assert_eq!(lines.len(), 2);
        let ServeLine::Request(first) = &lines[0] else {
            panic!("expected a request line");
        };
        assert_eq!(first.id, 42);
        assert_eq!(first.deadline, Some(Duration::from_millis(250)));
        assert_eq!(first.offering, ServerOffering::Burstable);
        let ServeLine::Request(second) = &lines[1] else {
            panic!("expected a request line");
        };
        assert_eq!(second.id, 1); // defaults to position
        assert_eq!(second.deadline, None);
        assert_eq!(second.profile[0].as_deref(), Some("s1"));

        let err = parse_serve_lines("{bad\n", "r.ndjson", &schema).unwrap_err();
        assert!(err.to_string().contains("r.ndjson:1"));
        assert!(parse_serve_lines(r#"{"id": "x"}"#, "r", &schema).is_err());
        assert!(parse_serve_lines(r#"{"customer": 5000000000}"#, "r", &schema).is_err());
    }

    #[test]
    fn feedback_lines_parse_signals_and_keep_request_positions() {
        let schema = lorentz_types::ProfileSchema::azure_postgres();
        let text = concat!(
            r#"{"profile": {"SegmentName": "s1"}}"#,
            "\n",
            r#"{"gamma": 1, "customer": 4, "subscription": 5, "resource_group": 6, "offering": "burstable"}"#,
            "\n",
            r#"{"profile": {"SegmentName": "s1"}}"#,
            "\n",
        );
        let lines = parse_serve_lines(text, "stream.ndjson", &schema).unwrap();
        assert_eq!(lines.len(), 3);
        let ServeLine::Feedback(signal) = &lines[1] else {
            panic!("expected a feedback line");
        };
        assert_eq!(signal.gamma, 1.0);
        assert_eq!(signal.path.customer, CustomerId(4));
        assert_eq!(signal.offering, ServerOffering::Burstable);
        // Request ids count requests only, not interleaved signals.
        let ServeLine::Request(last) = &lines[2] else {
            panic!("expected a request line");
        };
        assert_eq!(last.id, 1);

        // γ outside [-1, 1] and non-numeric γ are rejected with context.
        let err = parse_serve_lines(r#"{"gamma": 7}"#, "s", &schema).unwrap_err();
        assert!(err.to_string().contains("s:1"));
        assert!(parse_serve_lines(r#"{"gamma": "hot"}"#, "s", &schema).is_err());
    }

    #[test]
    fn feedback_command_and_wal_serve_round_trip() {
        let fleet_path = tmp("fb-fleet.json");
        let model_path = tmp("fb-model.json");
        let updated_path = tmp("fb-model-updated.json");
        let tickets_path = tmp("fb-tickets.ndjson");
        let stream_path = tmp("fb-stream.ndjson");
        let wal_path = tmp("fb-signals.wal");
        let _ = std::fs::remove_file(&wal_path);
        generate(&args(&[
            "generate",
            "--servers",
            "90",
            "--seed",
            "5",
            "--out",
            &fleet_path,
        ]))
        .unwrap();
        train(&args(&[
            "train",
            "--fleet",
            &fleet_path,
            "--out",
            &model_path,
            "--trees",
            "8",
            "--min-bucket",
            "3",
        ]))
        .unwrap();

        // Replaying tickets through the classifier raises λ for the
        // performance-sensitive path and leaves the neutral one alone.
        std::fs::write(
            &tickets_path,
            concat!(
                r#"{"symptoms": "high cpu usage all day", "resolution": "scaled up the server", "customer": 1, "subscription": 2, "resource_group": 3}"#,
                "\n",
                r#"{"subject": "login issue", "resolution": "reset password", "customer": 9}"#,
                "\n",
            ),
        )
        .unwrap();
        feedback(&args(&[
            "feedback",
            "--model",
            &model_path,
            "--tickets",
            &tickets_path,
            "--out",
            &updated_path,
        ]))
        .unwrap();
        let updated = load_model(&updated_path).unwrap();
        let hot = ResourcePath::new(CustomerId(1), SubscriptionId(2), ResourceGroupId(3));
        assert!(
            updated
                .personalizer()
                .lambda(&hot, ServerOffering::GeneralPurpose)
                > 0.0
        );

        // A serve stream with interleaved feedback appends to the WAL...
        std::fs::write(
            &stream_path,
            concat!(
                r#"{"id": 0, "profile": {"SegmentName": "segmentname-0"}, "customer": 1, "subscription": 2, "resource_group": 3}"#,
                "\n",
                r#"{"gamma": 1, "customer": 1, "subscription": 2, "resource_group": 3}"#,
                "\n",
                r#"{"gamma": 1, "customer": 1, "subscription": 2, "resource_group": 3}"#,
                "\n",
                r#"{"id": 1, "profile": {"SegmentName": "segmentname-0"}, "customer": 1, "subscription": 2, "resource_group": 3}"#,
                "\n",
            ),
        )
        .unwrap();
        serve(&args(&[
            "serve",
            "--model",
            &model_path,
            "--requests",
            &stream_path,
            "--workers",
            "2",
            "--feedback-wal",
            &wal_path,
        ]))
        .unwrap();
        // ...and a restart replays exactly the signals that were accepted,
        // each framed with the epoch-stamped λ delta it published.
        let (_, recovery) = lorentz_core::SignalWal::open(&wal_path).unwrap();
        assert_eq!(recovery.signals.len(), 2);
        assert_eq!(recovery.torn_tail_bytes, 0);
        assert!(recovery.signals.iter().all(|s| s.path == hot));
        assert_eq!(recovery.last_epoch, 3, "seed epoch 1 + two delta publishes");

        // wal-verify reports every record intact; a follower catches up on
        // the same WAL and serves from the replicated epochs.
        wal_verify(&args(&["wal-verify", "--wal", &wal_path])).unwrap();
        assert!(wal_verify(&args(&["wal-verify"])).is_err()); // missing --wal
        serve(&args(&[
            "serve",
            "--model",
            &model_path,
            "--requests",
            &stream_path,
            "--follow",
            &wal_path,
        ]))
        .unwrap();

        for p in [
            &fleet_path,
            &model_path,
            &updated_path,
            &tickets_path,
            &stream_path,
            &wal_path,
        ] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn recommend_rejects_bad_inputs() {
        assert!(recommend(&args(&["recommend"])).is_err()); // missing --model
        assert!(parse_offering("huge").is_err());
        assert!(parse_offering("burstable").is_ok());
        let schema = lorentz_types::ProfileSchema::azure_postgres();
        assert!(parse_profile("NotAFeature=x", &schema).is_err());
        assert!(parse_profile("garbage", &schema).is_err());
        let p = parse_profile("VerticalName=v1, SegmentName=s1", &schema).unwrap();
        assert_eq!(p[0], Some("s1"));
        assert_eq!(p[2], Some("v1"));
        assert_eq!(p[6], None);
        assert_eq!(parse_profile("", &schema).unwrap(), vec![None; 7]);
    }

    #[test]
    fn usage_errors_exit_2_runtime_errors_exit_1() {
        let missing_flag = recommend(&args(&["recommend"])).unwrap_err();
        assert_eq!(missing_flag.exit_code(), 2);
        let missing_file = load_fleet("/definitely/not/here.json").unwrap_err();
        assert_eq!(missing_file.exit_code(), 1);
        assert!(missing_file
            .to_string()
            .contains("/definitely/not/here.json"));
    }

    #[test]
    fn ticket_classifies_without_files() {
        ticket(&args(&["ticket", "--symptoms", "high cpu usage"])).unwrap();
        ticket(&args(&["ticket"])).unwrap();
    }
}
