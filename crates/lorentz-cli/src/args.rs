//! A minimal `--key value` argument parser (no external dependencies).
//!
//! All parse failures surface as [`CliError::Usage`], so `main` can exit
//! with the usage status without inspecting message text.

use crate::error::CliError;
use std::collections::BTreeMap;

/// Parsed command-line arguments: one subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    flags: BTreeMap<String, String>,
    /// Bare `--flag` switches without values.
    switches: Vec<String>,
}

impl Args {
    /// Parses an argument iterator (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if name.is_empty() {
                    return Err(CliError::Usage("empty flag name".into()));
                }
                // `--key=value` or `--key value` or bare switch.
                if let Some((k, v)) = name.split_once('=') {
                    out.flags.insert(k.to_owned(), v.to_owned());
                } else if iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                {
                    let value = iter.next().expect("peeked");
                    out.flags.insert(name.to_owned(), value);
                } else {
                    out.switches.push(name.to_owned());
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                return Err(CliError::Usage(format!(
                    "unexpected positional argument '{arg}'"
                )));
            }
        }
        Ok(out)
    }

    /// Parses the process arguments.
    pub fn from_env() -> Result<Self, CliError> {
        Self::parse(std::env::args().skip(1))
    }

    /// String flag value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
    }

    /// Parsed numeric flag with a default.
    pub fn get_parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("flag --{key} has invalid value '{v}'"))),
        }
    }

    /// Whether a bare `--switch` was passed.
    pub fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse(args.iter().map(|s| (*s).to_owned())).unwrap()
    }

    #[test]
    fn parses_command_flags_and_switches() {
        let a = parse(&["train", "--fleet", "f.json", "--trees=50", "--verbose"]);
        assert_eq!(a.command.as_deref(), Some("train"));
        assert_eq!(a.get("fleet"), Some("f.json"));
        assert_eq!(a.get_parse_or("trees", 0usize).unwrap(), 50);
        assert!(a.has_switch("verbose"));
        assert!(!a.has_switch("quiet"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse(&["generate"]);
        assert_eq!(a.get_or("out", "fleet.json"), "fleet.json");
        assert!(a.require("out").is_err());
        assert_eq!(a.get_parse_or("servers", 500usize).unwrap(), 500);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Args::parse(vec!["cmd".into(), "stray".into()]).is_err());
        assert!(Args::parse(vec!["--".into()]).is_err());
        let a = parse(&["x", "--n", "abc"]);
        assert!(a.get_parse_or("n", 0usize).is_err());
    }

    #[test]
    fn flag_followed_by_flag_is_a_switch() {
        let a = parse(&["run", "--fast", "--out", "x.json"]);
        assert!(a.has_switch("fast"));
        assert_eq!(a.get("out"), Some("x.json"));
    }
}
