//! `lorentz` — command-line interface for the Lorentz SKU recommender.
//!
//! ```text
//! lorentz generate  --servers 800 --seed 7 --out fleet.json
//! lorentz rightsize --fleet fleet.json
//! lorentz train     --fleet fleet.json --out model.json [--trees 100] [--min-bucket 10] \
//!                   [--stage2-threads 2] [--metrics-out metrics.json] [--store-dir store/]
//! lorentz store-verify --store-dir store/
//! lorentz recommend --model model.json --offering general_purpose \
//!                   --profile "SegmentName=segmentname-0,VerticalName=verticalname-2" \
//!                   [--source hierarchical|target-encoding|store]
//! lorentz serve     --model model.json --requests requests.ndjson \
//!                   [--workers 4] [--queue-capacity 1024] [--degraded-at N] \
//!                   [--deadline-ms N] [--feedback-wal wal.log] \
//!                   [--follow file:PATH|tcp://HOST:PORT] [--replica-wal wal.log] \
//!                   [--promote-listen ADDR] [--json] [--metrics-out metrics.json]
//! lorentz serve     --model model.json --listen 127.0.0.1:0 [--shards 8] \
//!                   [--workers 4] [--queue-capacity 1024] [--max-frame-len BYTES] \
//!                   [--replicate-listen tcp://HOST:PORT]
//! lorentz wal-verify --wal wal.log
//! lorentz feedback  --model model.json --tickets tickets.ndjson [--out model.json]
//! lorentz offering  --fleet fleet.json --profile "IndustryName=industryname-1"
//! lorentz ticket    --symptoms "high cpu usage" --resolution "scaled up"
//! lorentz persim    [--iters 40] [--signal-rate 0.4] [--signal-noise 0.13]
//! ```

mod args;
mod commands;
mod error;

use args::Args;
use error::CliError;

fn main() {
    // Deterministic fault injection for the crash-recovery tests: a no-op
    // unless the binary was built with the `fault-injection` feature AND
    // the LORENTZ_FAILPOINTS environment variable is set.
    if let Err(e) = lorentz_fault::init_from_env() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    };
    let result = match args.command.as_deref() {
        Some("generate") => commands::generate(&args),
        Some("rightsize") => commands::rightsize(&args),
        Some("train") => commands::train(&args),
        Some("store-verify") => commands::store_verify(&args),
        Some("recommend") => commands::recommend(&args),
        Some("serve") => commands::serve(&args),
        Some("wal-verify") => commands::wal_verify(&args),
        Some("feedback") => commands::feedback(&args),
        Some("offering") => commands::offering(&args),
        Some("report") => commands::report(&args),
        Some("ticket") => commands::ticket(&args),
        Some("persim") => commands::persim(&args),
        Some("chaos") => commands::chaos(&args),
        Some("help") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command '{other}'\n\n{}",
            commands::USAGE
        ))),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
