//! Structured CLI errors.
//!
//! Command implementations used to return `Result<(), String>`, flattening
//! every failure into prose at the point it occurred. [`CliError`] keeps
//! the structure instead: the kind of failure picks the exit code (usage
//! errors exit 2, runtime errors exit 1), I/O errors keep the offending
//! path and the underlying [`std::io::Error`], and core failures carry the
//! typed [`LorentzError`] all the way to `main`.

use lorentz_core::StoreError;
use lorentz_serve::{EngineError, ServeError};
use lorentz_types::LorentzError;
use thiserror::Error;

/// Any way a CLI command can fail.
#[derive(Debug, Error)]
pub enum CliError {
    /// The command line itself was wrong: unknown command or flag, missing
    /// required flag, unparseable flag value. Exits with status 2.
    #[error("{0}")]
    Usage(String),
    /// A file could not be read or written.
    #[error("{path}: {source}")]
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// User-provided content was malformed (profile spec, batch file,
    /// request lines, ...).
    #[error("{0}")]
    InvalidInput(String),
    /// JSON (de)serialization failed.
    #[error("{0}")]
    Json(String),
    /// The core recommender failed.
    #[error("{0}")]
    Lorentz(LorentzError),
    /// The serving engine refused or failed a request in a context where
    /// that aborts the command.
    #[error("{0}")]
    Serve(ServeError),
    /// The serving engine itself could not be constructed.
    #[error("{0}")]
    Engine(EngineError),
    /// The durable prediction store could not be saved or loaded.
    #[error("{0}")]
    Store(StoreError),
}

impl CliError {
    /// An I/O failure on `path`.
    pub fn io(path: &str, source: std::io::Error) -> Self {
        Self::Io {
            path: path.to_owned(),
            source,
        }
    }

    /// The process exit status this error maps to: 2 for usage errors
    /// (matching the argument-parse failure path), 1 for runtime failures.
    pub fn exit_code(&self) -> i32 {
        match self {
            Self::Usage(_) => 2,
            _ => 1,
        }
    }
}

impl From<LorentzError> for CliError {
    fn from(e: LorentzError) -> Self {
        Self::Lorentz(e)
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        Self::Serve(e)
    }
}

impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

impl From<StoreError> for CliError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_split_usage_from_runtime() {
        assert_eq!(CliError::Usage("bad flag".into()).exit_code(), 2);
        assert_eq!(CliError::InvalidInput("nope".into()).exit_code(), 1);
        let io = CliError::io(
            "missing.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert_eq!(io.exit_code(), 1);
        assert!(io.to_string().contains("missing.json"));
        assert!(io.to_string().contains("gone"));
    }

    #[test]
    fn wrapped_errors_keep_their_message() {
        let e = CliError::from(LorentzError::NotFound("no catalog".into()));
        assert!(e.to_string().contains("no catalog"));
        assert!(matches!(e, CliError::Lorentz(LorentzError::NotFound(_))));
    }
}
