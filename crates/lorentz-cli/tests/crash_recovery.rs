//! Kill-mid-write crash recovery, end to end against the real binary.
//!
//! A child `lorentz train` is driven through the `LORENTZ_FAILPOINTS`
//! environment variable: the `store.write.partial` fail point tears the
//! second generation's data write (the torn bytes still *commit* — the
//! observable outcome of a crash or lying fsync between write and
//! durability), and `store.save.commit` aborts the process right at the
//! manifest commit point. Recovery must then fall back to generation 1,
//! deterministically, with exactly one recorded fallback.
//!
//! Only compiled under the `fault-injection` feature — the binary must
//! have its fail points compiled in:
//! `cargo test -p lorentz-cli --features fault-injection`.

#![cfg(feature = "fault-injection")]

use lorentz_core::{obs, DurableStore};
use lorentz_types::StoreCorruption;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Mutex;

/// Serializes the in-process recovery sections: the `store.recovery.*`
/// metrics are process-wide, and both tests load a durable store.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lorentz_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lorentz"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lorentz-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn kill_mid_write_recovers_previous_generation() {
    let dir = tmp_dir("recovery");
    let fleet = dir.join("fleet.json");
    let model = dir.join("model.json");
    let store_dir = dir.join("store");

    let status = lorentz_bin()
        .args(["generate", "--servers", "60", "--seed", "5", "--out"])
        .arg(&fleet)
        .status()
        .expect("spawn lorentz generate");
    assert!(status.success(), "generate failed");

    // First train commits generation 1 cleanly.
    let train_args = |cmd: &mut Command| {
        cmd.args(["train", "--fleet"])
            .arg(&fleet)
            .arg("--out")
            .arg(&model)
            .args(["--trees", "5", "--min-bucket", "3", "--store-dir"])
            .arg(&store_dir);
    };
    let mut cmd = lorentz_bin();
    train_args(&mut cmd);
    let status = cmd.status().expect("spawn lorentz train");
    assert!(status.success(), "first train failed");
    assert!(store_dir.join("store.gen-1.json").exists());

    // Second train: tear the generation-2 data write, then die at the
    // commit point. The torn generation is committed in the manifest but
    // fails its CRC on load.
    let mut cmd = lorentz_bin();
    train_args(&mut cmd);
    let status = cmd
        .env(
            "LORENTZ_FAILPOINTS",
            "store.write.partial=partial(0.5)@once;store.save.commit=abort",
        )
        .status()
        .expect("spawn lorentz train (faulted)");
    assert!(
        !status.success(),
        "faulted train must die at the commit fail point"
    );
    assert!(
        store_dir.join("store.gen-2.json").exists(),
        "the torn generation-2 file must have been committed"
    );

    // Recovery: generation 2 fails its checksum, generation 1 loads, and
    // the fallback is visible both on the recovery report and in the
    // process-wide metrics.
    let _obs = OBS_LOCK.lock().unwrap();
    obs::reset();
    let recovered = DurableStore::open(&store_dir).load().expect("recovery");
    assert_eq!(recovered.generation, 1, "must fall back to generation 1");
    assert_eq!(recovered.fallbacks, 1, "exactly one generation skipped");
    assert!(!recovered.store.is_empty(), "recovered store has entries");
    assert_eq!(recovered.skipped.len(), 1);
    assert_eq!(recovered.skipped[0].0, 2);
    assert!(
        matches!(
            recovered.skipped[0].1,
            StoreCorruption::ChecksumMismatch { .. } | StoreCorruption::Truncated { .. }
        ),
        "torn write must surface as truncation or checksum mismatch, got {:?}",
        recovered.skipped[0].1
    );
    let snapshot = obs::snapshot();
    assert_eq!(snapshot.counter("store.recovery.fallbacks"), Some(1));
    assert_eq!(snapshot.counter("store.recovery.loads"), Some(1));

    // The CLI verifier sees the same picture.
    let output = lorentz_bin()
        .args(["store-verify", "--store-dir"])
        .arg(&store_dir)
        .output()
        .expect("spawn lorentz store-verify");
    assert!(output.status.success(), "store-verify failed");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("gen 2: CORRUPT"), "stdout: {stdout}");
    assert!(stdout.contains("gen 1: OK"), "stdout: {stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_write_errors_are_retried_to_success() {
    let dir = tmp_dir("retry");
    let fleet = dir.join("fleet.json");
    let model = dir.join("model.json");
    let store_dir = dir.join("store");

    let status = lorentz_bin()
        .args(["generate", "--servers", "60", "--seed", "5", "--out"])
        .arg(&fleet)
        .status()
        .expect("spawn lorentz generate");
    assert!(status.success(), "generate failed");

    // One injected ErrorKind::Interrupted on the store write: the retry
    // layer must absorb it and the train must still succeed.
    let status = lorentz_bin()
        .args(["train", "--fleet"])
        .arg(&fleet)
        .arg("--out")
        .arg(&model)
        .args(["--trees", "5", "--min-bucket", "3", "--store-dir"])
        .arg(&store_dir)
        .env(
            "LORENTZ_FAILPOINTS",
            "store.write.io_error=interrupted@once",
        )
        .status()
        .expect("spawn lorentz train (transient fault)");
    assert!(status.success(), "train must survive a transient I/O error");

    let _obs = OBS_LOCK.lock().unwrap();
    let recovered = DurableStore::open(&store_dir).load().expect("load");
    assert_eq!(recovered.generation, 1);
    assert_eq!(recovered.fallbacks, 0);

    let _ = std::fs::remove_dir_all(&dir);
}
