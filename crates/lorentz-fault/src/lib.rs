//! Deterministic fault injection for the Lorentz serving system.
//!
//! Production recommenders live or die by how they behave when the world
//! misbehaves: torn snapshot writes, transient I/O errors, bit rot, and
//! panicking request handlers. This crate makes those failures *injectable
//! and deterministic* so the rest of the workspace can test its recovery
//! paths:
//!
//! * **Fail points** — named hooks compiled into cold paths
//!   (`fail_point!("store.save.commit")`). A process-wide
//!   [`FailPointRegistry`] decides whether a hook fires, with
//!   deterministic triggers: always, exactly once, after the first N hits,
//!   or with a seeded probability. Actions cover panics, process aborts,
//!   transient/permanent I/O errors, partial (torn) writes, and single-bit
//!   corruption.
//! * **`SnapshotIo`** — the persistence seam used by the durable store:
//!   atomic write, read, remove, and list. [`RealIo`] is the production
//!   implementation (`tmp → fsync → rename`); [`FaultyIo`] wraps any
//!   implementation and injects the registry's `store.write.*` /
//!   `store.read.*` faults.
//! * **Compile-out** — everything fires only under the `fault-injection`
//!   cargo feature. Without it, `fail_point!` expands to nothing and
//!   [`FaultyIo`] is a transparent pass-through, so production builds pay
//!   zero overhead.
//!
//! Fail points can also be configured from the `LORENTZ_FAILPOINTS`
//! environment variable (`name=action[@trigger];...`), which is how the
//! kill-mid-write crash tests drive a child `lorentz train` process. See
//! [`init_from_env`].
//!
//! ```
//! use lorentz_fault::{FailAction, Trigger};
//!
//! // Deterministic: the point passes twice, then fires forever.
//! lorentz_fault::registry().configure(
//!     "doc.example",
//!     Trigger::After(2),
//!     FailAction::Error,
//! );
//! # #[cfg(feature = "fault-injection")]
//! # {
//! assert!(lorentz_fault::registry().hit("doc.example").is_none());
//! assert!(lorentz_fault::registry().hit("doc.example").is_none());
//! assert_eq!(
//!     lorentz_fault::registry().hit("doc.example"),
//!     Some(FailAction::Error)
//! );
//! # }
//! lorentz_fault::registry().clear();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod io;
pub mod registry;

pub use io::{default_io, FaultyIo, RealIo, SnapshotIo};
pub use registry::{registry, FailAction, FailPointRegistry, Trigger};

/// Configures the global registry from the `LORENTZ_FAILPOINTS`
/// environment variable and returns how many points were configured.
///
/// The spec grammar is `name=action[@trigger]` entries separated by `;`:
///
/// * actions: `panic`, `abort`, `error`, `interrupted`, `partial(FRAC)`,
///   `flip(BIT)`
/// * triggers: `@once`, `@after(N)`, `@prob(P)` (default: always)
///
/// `LORENTZ_FAILPOINTS_SEED` (a `u64`) seeds the probability-trigger RNG.
/// Without the `fault-injection` feature this is a no-op returning
/// `Ok(0)`.
///
/// # Errors
/// Returns the offending spec fragment when the variable does not parse.
pub fn init_from_env() -> Result<usize, String> {
    #[cfg(feature = "fault-injection")]
    {
        if let Ok(seed) = std::env::var("LORENTZ_FAILPOINTS_SEED") {
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("LORENTZ_FAILPOINTS_SEED '{seed}' is not a u64"))?;
            registry().seed(seed);
        }
        match std::env::var("LORENTZ_FAILPOINTS") {
            Ok(spec) => registry().configure_from_spec(&spec),
            Err(_) => Ok(0),
        }
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        Ok(0)
    }
}

/// The default interpretation of a fired action at a bare
/// `fail_point!(name)` site: panics for [`FailAction::Panic`], aborts the
/// process for [`FailAction::Abort`], and ignores I/O-shaped actions that
/// only make sense inside [`FaultyIo`].
pub fn act_default(name: &str, action: &FailAction) {
    match action {
        FailAction::Panic => panic!("fail point '{name}' injected a panic"),
        FailAction::Abort => std::process::abort(),
        _ => {}
    }
}

/// A named fault-injection hook.
///
/// Two forms:
///
/// * `fail_point!("name")` — when the registry fires, applies the default
///   interpretation ([`act_default`]): `panic` panics, `abort` aborts,
///   anything else is ignored.
/// * `fail_point!("name", |action| expr)` — when the registry fires, the
///   enclosing function **returns** the handler's value, so sites can map
///   an action to an early `Err(...)`.
///
/// Without the `fault-injection` feature both forms expand to nothing.
#[cfg(feature = "fault-injection")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        if let Some(__fp_action) = $crate::registry().hit($name) {
            $crate::act_default($name, &__fp_action);
        }
    };
    ($name:expr, $handler:expr) => {
        if let Some(__fp_action) = $crate::registry().hit($name) {
            #[allow(clippy::redundant_closure_call)]
            return $handler(__fp_action);
        }
    };
}

/// A named fault-injection hook (disabled: the `fault-injection` feature
/// is off, so every site compiles to nothing).
#[cfg(not(feature = "fault-injection"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {};
    ($name:expr, $handler:expr) => {};
}
