//! The process-wide fail-point registry.
//!
//! Every fail point is a named entry with a [`Trigger`] (when it fires)
//! and a [`FailAction`] (what happens). Evaluation is deterministic: hit
//! counting is exact, and the probability trigger draws from a seeded
//! SplitMix64 stream, so a seeded run replays the same fault schedule.
//!
//! The registry is always compiled (it is cold-path bookkeeping); what the
//! `fault-injection` feature controls is whether `fail_point!` sites exist
//! at all and whether [`crate::FaultyIo`] consults the registry.

use std::sync::Mutex;

/// When a configured fail point fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fires on every hit.
    Always,
    /// Fires on exactly one hit (the first), then never again.
    Once,
    /// Passes the first `N` hits, fires on every hit after them.
    After(u64),
    /// Fires on each hit independently with this probability, drawn from
    /// the registry's seeded RNG.
    Probability(f64),
}

/// What happens when a fail point fires. I/O-shaped actions
/// ([`FailAction::Error`], [`FailAction::Interrupted`],
/// [`FailAction::Partial`], [`FailAction::FlipBit`]) are interpreted by
/// [`crate::FaultyIo`]; [`FailAction::Panic`] and [`FailAction::Abort`]
/// are honored anywhere (see [`crate::act_default`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailAction {
    /// Panic at the fail point (exercises `catch_unwind` isolation).
    Panic,
    /// Abort the whole process (simulates `kill -9` mid-operation).
    Abort,
    /// A permanent I/O error (`ErrorKind::Other`).
    Error,
    /// A transient I/O error (`ErrorKind::Interrupted`) — retryable.
    Interrupted,
    /// A torn write: only this fraction (clamped to `[0, 1]`) of the bytes
    /// reach the destination, yet the operation reports success.
    Partial(f64),
    /// Flip this bit (index modulo payload length) — silent corruption.
    FlipBit(u64),
}

#[derive(Debug)]
struct PointState {
    name: String,
    trigger: Trigger,
    action: FailAction,
    hits: u64,
    fired: u64,
}

#[derive(Debug)]
struct Inner {
    points: Vec<PointState>,
    rng: u64,
}

/// A registry of named fail points. Most code uses the process-wide
/// [`registry()`]; tests that need isolation can hold their own instance.
#[derive(Debug)]
pub struct FailPointRegistry {
    inner: Mutex<Inner>,
}

/// Default SplitMix64 seed (an arbitrary odd constant).
const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FailPointRegistry {
    /// Creates an empty registry (usable in `static` items).
    pub const fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                points: Vec::new(),
                rng: DEFAULT_SEED,
            }),
        }
    }

    /// Configures (or reconfigures) a fail point, resetting its hit and
    /// fire counts.
    pub fn configure(&self, name: &str, trigger: Trigger, action: FailAction) {
        let mut inner = self.inner.lock().expect("fail-point registry poisoned");
        inner.points.retain(|p| p.name != name);
        inner.points.push(PointState {
            name: name.to_owned(),
            trigger,
            action,
            hits: 0,
            fired: 0,
        });
    }

    /// Removes one fail point.
    pub fn remove(&self, name: &str) {
        let mut inner = self.inner.lock().expect("fail-point registry poisoned");
        inner.points.retain(|p| p.name != name);
    }

    /// Removes every fail point (the RNG seed is kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("fail-point registry poisoned");
        inner.points.clear();
    }

    /// Reseeds the probability-trigger RNG.
    pub fn seed(&self, seed: u64) {
        let mut inner = self.inner.lock().expect("fail-point registry poisoned");
        inner.rng = seed;
    }

    /// Evaluates one hit of `name`: counts it and returns the action if
    /// the trigger fires. Unconfigured names always return `None`.
    pub fn hit(&self, name: &str) -> Option<FailAction> {
        let mut inner = self.inner.lock().expect("fail-point registry poisoned");
        let idx = inner.points.iter().position(|p| p.name == name)?;
        inner.points[idx].hits += 1;
        let fires = match inner.points[idx].trigger {
            Trigger::Always => true,
            Trigger::Once => inner.points[idx].fired == 0,
            Trigger::After(n) => inner.points[idx].hits > n,
            Trigger::Probability(p) => {
                // 53 uniform mantissa bits in [0, 1), so p = 1.0 always
                // fires and p = 0.0 never does.
                let frac = (splitmix64(&mut inner.rng) >> 11) as f64 / (1u64 << 53) as f64;
                frac < p
            }
        };
        if fires {
            inner.points[idx].fired += 1;
            Some(inner.points[idx].action)
        } else {
            None
        }
    }

    /// How many times `name` has fired (0 for unconfigured points).
    pub fn fired(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("fail-point registry poisoned");
        inner
            .points
            .iter()
            .find(|p| p.name == name)
            .map_or(0, |p| p.fired)
    }

    /// How many times `name` has been evaluated (0 for unconfigured
    /// points).
    pub fn hits(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("fail-point registry poisoned");
        inner
            .points
            .iter()
            .find(|p| p.name == name)
            .map_or(0, |p| p.hits)
    }

    /// Configures fail points from a `name=action[@trigger];...` spec (the
    /// `LORENTZ_FAILPOINTS` grammar — see [`crate::init_from_env`]).
    /// Returns the number of points configured.
    ///
    /// # Errors
    /// Returns the offending fragment when the spec does not parse.
    pub fn configure_from_spec(&self, spec: &str) -> Result<usize, String> {
        let mut configured = 0;
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (name, rest) = entry
                .split_once('=')
                .ok_or_else(|| format!("fail point '{entry}' is not name=action"))?;
            let (action_spec, trigger_spec) = match rest.split_once('@') {
                Some((a, t)) => (a.trim(), Some(t.trim())),
                None => (rest.trim(), None),
            };
            let action = parse_action(action_spec)?;
            let trigger = match trigger_spec {
                None => Trigger::Always,
                Some(t) => parse_trigger(t)?,
            };
            self.configure(name.trim(), trigger, action);
            configured += 1;
        }
        Ok(configured)
    }
}

impl Default for FailPointRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn parse_paren_arg<'a>(spec: &'a str, head: &str) -> Option<&'a str> {
    spec.strip_prefix(head)?
        .strip_prefix('(')?
        .strip_suffix(')')
}

fn parse_action(spec: &str) -> Result<FailAction, String> {
    match spec {
        "panic" => Ok(FailAction::Panic),
        "abort" => Ok(FailAction::Abort),
        "error" => Ok(FailAction::Error),
        "interrupted" => Ok(FailAction::Interrupted),
        _ => {
            if let Some(arg) = parse_paren_arg(spec, "partial") {
                let frac: f64 = arg
                    .parse()
                    .map_err(|_| format!("partial fraction '{arg}' is not a number"))?;
                return Ok(FailAction::Partial(frac));
            }
            if let Some(arg) = parse_paren_arg(spec, "flip") {
                let bit: u64 = arg
                    .parse()
                    .map_err(|_| format!("flip bit '{arg}' is not an integer"))?;
                return Ok(FailAction::FlipBit(bit));
            }
            Err(format!("unknown fail action '{spec}'"))
        }
    }
}

fn parse_trigger(spec: &str) -> Result<Trigger, String> {
    match spec {
        "once" => Ok(Trigger::Once),
        "always" => Ok(Trigger::Always),
        _ => {
            if let Some(arg) = parse_paren_arg(spec, "after") {
                let n: u64 = arg
                    .parse()
                    .map_err(|_| format!("after count '{arg}' is not an integer"))?;
                return Ok(Trigger::After(n));
            }
            if let Some(arg) = parse_paren_arg(spec, "prob") {
                let p: f64 = arg
                    .parse()
                    .map_err(|_| format!("probability '{arg}' is not a number"))?;
                return Ok(Trigger::Probability(p));
            }
            Err(format!("unknown fail trigger '{spec}'"))
        }
    }
}

static REGISTRY: FailPointRegistry = FailPointRegistry::new();

/// The process-wide fail-point registry.
pub fn registry() -> &'static FailPointRegistry {
    &REGISTRY
}

#[cfg(test)]
mod tests {
    use super::*;

    // Every test uses its own registry instance: the global one is shared
    // across parallel test threads.

    #[test]
    fn unconfigured_points_never_fire() {
        let r = FailPointRegistry::new();
        assert_eq!(r.hit("nope"), None);
        assert_eq!(r.fired("nope"), 0);
        assert_eq!(r.hits("nope"), 0);
    }

    #[test]
    fn once_fires_exactly_once() {
        let r = FailPointRegistry::new();
        r.configure("p", Trigger::Once, FailAction::Panic);
        assert_eq!(r.hit("p"), Some(FailAction::Panic));
        assert_eq!(r.hit("p"), None);
        assert_eq!(r.hit("p"), None);
        assert_eq!(r.fired("p"), 1);
        assert_eq!(r.hits("p"), 3);
    }

    #[test]
    fn after_passes_n_hits_then_fires_forever() {
        let r = FailPointRegistry::new();
        r.configure("p", Trigger::After(2), FailAction::Error);
        assert_eq!(r.hit("p"), None);
        assert_eq!(r.hit("p"), None);
        assert_eq!(r.hit("p"), Some(FailAction::Error));
        assert_eq!(r.hit("p"), Some(FailAction::Error));
        assert_eq!(r.fired("p"), 2);
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let schedule = |seed: u64| {
            let r = FailPointRegistry::new();
            r.seed(seed);
            r.configure("p", Trigger::Probability(0.5), FailAction::Error);
            (0..64).map(|_| r.hit("p").is_some()).collect::<Vec<_>>()
        };
        let a = schedule(7);
        assert_eq!(a, schedule(7), "same seed must replay the same faults");
        assert_ne!(a, schedule(8), "different seeds must diverge");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (8..=56).contains(&fired),
            "p=0.5 over 64 draws fired {fired} times"
        );
    }

    #[test]
    fn probability_bounds_are_exact() {
        let r = FailPointRegistry::new();
        r.configure("never", Trigger::Probability(0.0), FailAction::Error);
        r.configure("always", Trigger::Probability(1.0), FailAction::Error);
        for _ in 0..32 {
            assert_eq!(r.hit("never"), None);
            assert_eq!(r.hit("always"), Some(FailAction::Error));
        }
    }

    #[test]
    fn reconfigure_resets_counts_and_remove_disables() {
        let r = FailPointRegistry::new();
        r.configure("p", Trigger::Once, FailAction::Error);
        assert!(r.hit("p").is_some());
        r.configure("p", Trigger::Once, FailAction::Interrupted);
        assert_eq!(r.hit("p"), Some(FailAction::Interrupted));
        r.remove("p");
        assert_eq!(r.hit("p"), None);
        r.configure("p", Trigger::Always, FailAction::Error);
        r.clear();
        assert_eq!(r.hit("p"), None);
    }

    #[test]
    fn spec_grammar_round_trips() {
        let r = FailPointRegistry::new();
        let n = r
            .configure_from_spec(
                "store.write.partial=partial(0.5)@once; store.save.commit=abort;\
                 a=error@after(2);b=interrupted@prob(1.0);c=flip(12);d=panic@always",
            )
            .unwrap();
        assert_eq!(n, 6);
        assert_eq!(r.hit("store.write.partial"), Some(FailAction::Partial(0.5)));
        assert_eq!(r.hit("store.write.partial"), None);
        assert_eq!(r.hit("a"), None);
        assert_eq!(r.hit("a"), None);
        assert_eq!(r.hit("a"), Some(FailAction::Error));
        assert_eq!(r.hit("b"), Some(FailAction::Interrupted));
        assert_eq!(r.hit("c"), Some(FailAction::FlipBit(12)));
        assert_eq!(r.hit("d"), Some(FailAction::Panic));
        // The abort action is configured but (obviously) not evaluated.
        assert_eq!(r.fired("store.save.commit"), 0);
        // Empty specs and stray separators are fine.
        assert_eq!(r.configure_from_spec("").unwrap(), 0);
        assert_eq!(r.configure_from_spec(" ; ;").unwrap(), 0);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let r = FailPointRegistry::new();
        assert!(r.configure_from_spec("no-equals").is_err());
        assert!(r.configure_from_spec("p=unknown").is_err());
        assert!(r.configure_from_spec("p=partial(x)").is_err());
        assert!(r.configure_from_spec("p=flip(x)").is_err());
        assert!(r.configure_from_spec("p=error@sometimes").is_err());
        assert!(r.configure_from_spec("p=error@after(x)").is_err());
        assert!(r.configure_from_spec("p=error@prob(x)").is_err());
    }
}
