//! The snapshot persistence seam: [`SnapshotIo`], its production
//! implementation [`RealIo`], and the fault-injecting [`FaultyIo`].
//!
//! The durable store never touches the filesystem directly — every write,
//! read, remove, and listing goes through a `SnapshotIo`, so tests can
//! substitute an implementation that tears writes, corrupts bits, or
//! fails transiently, and the production path can stay `tmp → fsync →
//! atomic rename` everywhere.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Filesystem operations used by snapshot persistence.
///
/// `write_atomic` must be all-or-nothing on a well-behaved filesystem: a
/// crash during the call leaves either the previous content or the new
/// content at `path`, never a prefix. ([`FaultyIo`] exists precisely to
/// simulate the ill-behaved case.)
pub trait SnapshotIo: Send + Sync {
    /// Writes `bytes` to `path` atomically: temp file in the same
    /// directory, flush + fsync, then rename over the destination.
    ///
    /// # Errors
    /// Any underlying I/O error; the destination is untouched on failure.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Reads the full contents of `path`.
    ///
    /// # Errors
    /// Any underlying I/O error (`NotFound` when the file is absent).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Removes `path`.
    ///
    /// # Errors
    /// Any underlying I/O error.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Lists the entries of directory `dir`.
    ///
    /// # Errors
    /// Any underlying I/O error.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The production [`SnapshotIo`]: real filesystem calls with
/// `tmp → fsync → rename` atomic writes.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl SnapshotIo for RealIo {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        if let Some(dir) = dir {
            fs::create_dir_all(dir)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // Make the rename itself durable where the platform allows
        // fsyncing a directory handle; best-effort elsewhere.
        if let Some(dir) = dir {
            if let Ok(handle) = fs::File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(dir)? {
            entries.push(entry?.path());
        }
        entries.sort();
        Ok(entries)
    }
}

/// A [`SnapshotIo`] decorator that injects the registry's I/O faults.
///
/// Consulted fail points (all no-ops unless configured, and compiled to a
/// transparent pass-through without the `fault-injection` feature):
///
/// | point | actions honored |
/// |---|---|
/// | `store.write.partial` | `partial(f)` commits only the first `f·len` bytes yet reports success (a torn write fsync never caught); `flip(i)` commits the payload with bit `i` flipped |
/// | `store.write.io_error` | `interrupted` / `error` fail the write; `panic` / `abort` via [`crate::act_default`] |
/// | `store.read.io_error` | `interrupted` / `error` fail the read |
/// | `store.read.corrupt` | `partial(f)` truncates the returned bytes; `flip(i)` flips bit `i` |
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultyIo<I: SnapshotIo = RealIo> {
    inner: I,
}

impl<I: SnapshotIo> FaultyIo<I> {
    /// Wraps an inner implementation.
    pub fn new(inner: I) -> Self {
        Self { inner }
    }
}

/// Applies a bit flip to a copy of `bytes` (bit index modulo total bits).
#[cfg(feature = "fault-injection")]
fn flip_bit(bytes: &[u8], bit: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if !out.is_empty() {
        let bit = bit % (out.len() as u64 * 8);
        out[(bit / 8) as usize] ^= 1 << (bit % 8);
    }
    out
}

/// The byte count a `partial(frac)` tear keeps.
#[cfg(feature = "fault-injection")]
fn torn_len(len: usize, frac: f64) -> usize {
    ((len as f64) * frac.clamp(0.0, 1.0)) as usize
}

#[cfg(feature = "fault-injection")]
fn io_fault(name: &str) -> io::Result<()> {
    use crate::registry::FailAction;
    if let Some(action) = crate::registry().hit(name) {
        match action {
            FailAction::Interrupted => {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("injected transient I/O error at '{name}'"),
                ))
            }
            FailAction::Error => {
                return Err(io::Error::other(format!("injected I/O error at '{name}'")))
            }
            other => crate::act_default(name, &other),
        }
    }
    Ok(())
}

impl<I: SnapshotIo> SnapshotIo for FaultyIo<I> {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        #[cfg(feature = "fault-injection")]
        {
            use crate::registry::FailAction;
            io_fault("store.write.io_error")?;
            if let Some(action) = crate::registry().hit("store.write.partial") {
                match action {
                    FailAction::Partial(frac) => {
                        // The tear commits atomically but truncated: the
                        // observable outcome of a crash (or lying fsync)
                        // between the data write and its durability point.
                        return self
                            .inner
                            .write_atomic(path, &bytes[..torn_len(bytes.len(), frac)]);
                    }
                    FailAction::FlipBit(bit) => {
                        return self.inner.write_atomic(path, &flip_bit(bytes, bit));
                    }
                    other => crate::act_default("store.write.partial", &other),
                }
            }
        }
        self.inner.write_atomic(path, bytes)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        #[cfg(feature = "fault-injection")]
        {
            use crate::registry::FailAction;
            io_fault("store.read.io_error")?;
            if let Some(action) = crate::registry().hit("store.read.corrupt") {
                let bytes = self.inner.read(path)?;
                match action {
                    FailAction::Partial(frac) => {
                        let keep = torn_len(bytes.len(), frac);
                        let mut bytes = bytes;
                        bytes.truncate(keep);
                        return Ok(bytes);
                    }
                    FailAction::FlipBit(bit) => return Ok(flip_bit(&bytes, bit)),
                    other => {
                        crate::act_default("store.read.corrupt", &other);
                        return Ok(bytes);
                    }
                }
            }
        }
        self.inner.read(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }
}

/// The [`SnapshotIo`] the durable store uses by default: fault-injectable
/// when the `fault-injection` feature is on, plain [`RealIo`] otherwise.
pub fn default_io() -> Box<dyn SnapshotIo> {
    #[cfg(feature = "fault-injection")]
    {
        Box::new(FaultyIo::new(RealIo))
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        Box::new(RealIo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lorentz-fault-io-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_io_round_trips_and_replaces_atomically() {
        let dir = tmp_dir("real");
        let path = dir.join("snap.bin");
        RealIo.write_atomic(&path, b"first").unwrap();
        assert_eq!(RealIo.read(&path).unwrap(), b"first");
        RealIo.write_atomic(&path, b"second").unwrap();
        assert_eq!(RealIo.read(&path).unwrap(), b"second");
        // No temp file left behind.
        let listed = RealIo.list(&dir).unwrap();
        assert_eq!(listed, vec![path.clone()]);
        RealIo.remove(&path).unwrap();
        assert_eq!(
            RealIo.read(&path).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_io_is_transparent_when_nothing_is_configured() {
        let dir = tmp_dir("transparent");
        let path = dir.join("snap.bin");
        let io = FaultyIo::new(RealIo);
        io.write_atomic(&path, b"payload").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&dir);
    }

    // The fault behaviors drive the process-wide registry, so they run in
    // one test to avoid cross-talk between parallel test threads.
    #[cfg(feature = "fault-injection")]
    #[test]
    fn faulty_io_injects_tears_corruption_and_errors() {
        use crate::registry::{registry, FailAction, Trigger};
        let dir = tmp_dir("faulty");
        let path = dir.join("snap.bin");
        let io = FaultyIo::new(RealIo);

        registry().configure(
            "store.write.partial",
            Trigger::Once,
            FailAction::Partial(0.5),
        );
        io.write_atomic(&path, b"12345678").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"1234", "torn write kept half");
        io.write_atomic(&path, b"12345678").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"12345678", "fires only once");

        registry().configure("store.write.partial", Trigger::Once, FailAction::FlipBit(0));
        io.write_atomic(&path, &[0u8; 4]).unwrap();
        assert_eq!(io.read(&path).unwrap(), &[1u8, 0, 0, 0]);

        registry().configure(
            "store.write.io_error",
            Trigger::Once,
            FailAction::Interrupted,
        );
        assert_eq!(
            io.write_atomic(&path, b"x").unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        io.write_atomic(&path, b"x").unwrap();

        registry().configure("store.read.io_error", Trigger::Once, FailAction::Error);
        assert!(io.read(&path).is_err());
        assert_eq!(io.read(&path).unwrap(), b"x");

        registry().configure("store.read.corrupt", Trigger::Once, FailAction::FlipBit(3));
        assert_eq!(io.read(&path).unwrap(), &[b'x' ^ 0b1000]);
        assert_eq!(io.read(&path).unwrap(), b"x");

        registry().clear();
        let _ = fs::remove_dir_all(&dir);
    }
}
