//! Entropy primitives over interned categorical columns.
//!
//! All computations skip rows where either column is missing: the paper
//! notes hierarchies are *nearly* strict due to user mis-entry, and missing
//! tags would otherwise register as a spurious shared "value".

use std::collections::HashMap;

/// Shannon entropy `H(X)` in bits of a categorical column, ignoring missing
/// entries. Returns 0 for an all-missing or constant column.
pub fn entropy(column: &[Option<u32>]) -> f64 {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    let mut n = 0usize;
    for v in column.iter().flatten() {
        *counts.entry(*v).or_insert(0) += 1;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Conditional entropy `H(X | Y)` in bits, over rows where both columns are
/// present. Returns 0 if no such rows exist.
pub fn conditional_entropy(x: &[Option<u32>], y: &[Option<u32>]) -> f64 {
    assert_eq!(x.len(), y.len(), "column length mismatch");
    // joint[(y, x)] and marginal[y] counts over complete pairs.
    let mut joint: HashMap<(u32, u32), usize> = HashMap::new();
    let mut marginal: HashMap<u32, usize> = HashMap::new();
    let mut n = 0usize;
    for (xv, yv) in x.iter().zip(y.iter()) {
        if let (Some(xv), Some(yv)) = (xv, yv) {
            *joint.entry((*yv, *xv)).or_insert(0) += 1;
            *marginal.entry(*yv).or_insert(0) += 1;
            n += 1;
        }
    }
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    // H(X|Y) = -sum p(x,y) log2( p(x,y) / p(y) ).
    joint
        .iter()
        .map(|(&(yv, _), &c)| {
            let p_xy = c as f64 / n;
            let p_y = marginal[&yv] as f64 / n;
            -p_xy * (p_xy / p_y).log2()
        })
        .sum()
}

/// Entropy of `x` restricted to rows where both `x` and `y` are present —
/// the proper normalizer for `H(X|Y)` so that the two are computed on the
/// same support.
pub fn entropy_on_joint_support(x: &[Option<u32>], y: &[Option<u32>]) -> f64 {
    assert_eq!(x.len(), y.len(), "column length mismatch");
    let filtered: Vec<Option<u32>> = x
        .iter()
        .zip(y.iter())
        .map(|(xv, yv)| if yv.is_some() { *xv } else { None })
        .collect();
    entropy(&filtered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[i64]) -> Vec<Option<u32>> {
        vals.iter()
            .map(|&v| if v < 0 { None } else { Some(v as u32) })
            .collect()
    }

    #[test]
    fn entropy_of_uniform_binary_is_one_bit() {
        let c = col(&[0, 1, 0, 1]);
        assert!((entropy(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        assert_eq!(entropy(&col(&[3, 3, 3])), 0.0);
        assert_eq!(entropy(&col(&[-1, -1])), 0.0); // all missing
    }

    #[test]
    fn entropy_ignores_missing() {
        let with_missing = col(&[0, 1, -1, 0, 1, -1]);
        let without = col(&[0, 1, 0, 1]);
        assert!((entropy(&with_missing) - entropy(&without)).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_zero_when_determined() {
        // y fully determines x (strict hierarchy child -> parent).
        let x = col(&[0, 0, 1, 1]); // parent
        let y = col(&[10, 11, 12, 13]); // child, unique per row
        assert!(conditional_entropy(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_equals_marginal_when_independent() {
        // x and y independent uniform binary over all 4 combinations.
        let x = col(&[0, 0, 1, 1]);
        let y = col(&[0, 1, 0, 1]);
        assert!((conditional_entropy(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditioning_never_increases_entropy() {
        let x = col(&[0, 1, 2, 0, 1, 2, 0, 0]);
        let y = col(&[0, 0, 1, 1, 2, 2, 3, 3]);
        assert!(conditional_entropy(&x, &y) <= entropy(&x) + 1e-12);
    }

    #[test]
    fn joint_support_normalizer_matches_filtered_rows() {
        let x = col(&[0, 1, 0, 1]);
        let y = col(&[5, -1, 6, -1]);
        // Only rows 0 and 2 have y present; x there is constant 0.
        assert_eq!(entropy_on_joint_support(&x, &y), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        conditional_entropy(&col(&[0]), &col(&[0, 1]));
    }
}
