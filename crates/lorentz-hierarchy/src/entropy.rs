//! Entropy primitives over interned categorical columns.
//!
//! All computations skip rows where either column is missing: the paper
//! notes hierarchies are *nearly* strict due to user mis-entry, and missing
//! tags would otherwise register as a spurious shared "value".
//!
//! Two layers are exposed. The slice functions ([`entropy`],
//! [`conditional_entropy`], [`entropy_on_joint_support`]) are the
//! convenient one-shot API. Underneath, every computation runs on
//! [`DenseColumn`]s — columns re-encoded once into ids `0..card` — through
//! an [`EntropyScratch`] arena, so the O(n²)-pair strength-matrix sweep
//! does no hashing and no per-pair allocation: joint counts are a
//! counting sort by the conditioning column plus dense count arrays reset
//! via touched lists. Accumulation order is fixed (group id, then first
//! appearance within the group), which makes every entropy value
//! run-to-run deterministic — unlike summing over `HashMap` iteration
//! order, which `RandomState` reshuffles per process.

use std::collections::HashMap;

/// Sentinel dense id for a missing entry.
const MISSING: u32 = u32::MAX;

/// A categorical column re-encoded to dense ids `0..card` (first-appearance
/// order); missing entries become an internal sentinel. Build once per
/// column, then run any number of pairwise entropy computations hash-free.
#[derive(Debug, Clone)]
pub struct DenseColumn {
    ids: Vec<u32>,
    card: usize,
}

impl DenseColumn {
    /// Re-encodes an interned column. The only hashing in the entropy
    /// layer happens here, once per column.
    pub fn build(column: &[Option<u32>]) -> Self {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let ids = column
            .iter()
            .map(|v| match v {
                Some(v) => {
                    let next = remap.len() as u32;
                    *remap.entry(*v).or_insert(next)
                }
                None => MISSING,
            })
            .collect();
        Self {
            ids,
            card: remap.len(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of distinct present values.
    pub fn cardinality(&self) -> usize {
        self.card
    }
}

/// Reusable buffers for the dense entropy kernels. One instance serves an
/// entire strength-matrix sweep: buffers grow to the largest column and
/// are reset via touched lists rather than reallocated.
#[derive(Debug, Default)]
pub struct EntropyScratch {
    /// Dense per-value counts, maintained all-zero between calls.
    counts: Vec<usize>,
    /// Which `counts` slots are nonzero (first-touch order).
    touched: Vec<u32>,
    /// Per-group sizes for the conditioning column.
    group_counts: Vec<usize>,
    /// Prefix sums of `group_counts`.
    offsets: Vec<usize>,
    /// Scatter cursors (a working copy of `offsets`).
    cursors: Vec<usize>,
    /// `x` ids grouped by `y` id (counting-sort payload).
    sorted_x: Vec<u32>,
}

impl EntropyScratch {
    /// Zero-extends `counts` to at least `card` slots.
    fn ensure_counts(&mut self, card: usize) {
        if self.counts.len() < card {
            self.counts.resize(card, 0);
        }
    }
}

/// Shannon entropy `H(X)` in bits of a dense column, ignoring missing
/// entries; pass `support` to restrict to rows where that column is also
/// present (the joint support).
fn entropy_with_support(
    x: &DenseColumn,
    support: Option<&DenseColumn>,
    scratch: &mut EntropyScratch,
) -> f64 {
    if let Some(s) = support {
        assert_eq!(x.len(), s.len(), "column length mismatch");
    }
    scratch.ensure_counts(x.card);
    scratch.touched.clear();
    let mut n = 0usize;
    for (row, &xv) in x.ids.iter().enumerate() {
        if xv == MISSING {
            continue;
        }
        if let Some(s) = support {
            if s.ids[row] == MISSING {
                continue;
            }
        }
        if scratch.counts[xv as usize] == 0 {
            scratch.touched.push(xv);
        }
        scratch.counts[xv as usize] += 1;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let mut h = 0.0;
    for &xv in &scratch.touched {
        let p = scratch.counts[xv as usize] as f64 / nf;
        h += -p * p.log2();
        scratch.counts[xv as usize] = 0;
    }
    h
}

/// [`entropy`] over a pre-densified column and reusable scratch.
pub fn entropy_dense(x: &DenseColumn, scratch: &mut EntropyScratch) -> f64 {
    entropy_with_support(x, None, scratch)
}

/// [`entropy_on_joint_support`] over pre-densified columns.
pub fn entropy_on_joint_support_dense(
    x: &DenseColumn,
    y: &DenseColumn,
    scratch: &mut EntropyScratch,
) -> f64 {
    entropy_with_support(x, Some(y), scratch)
}

/// [`conditional_entropy`] over pre-densified columns: a counting sort of
/// `x` ids by `y` group, then one dense count pass per group. O(rows +
/// card) per call, zero hashing, zero allocation once the scratch has
/// grown.
pub fn conditional_entropy_dense(
    x: &DenseColumn,
    y: &DenseColumn,
    scratch: &mut EntropyScratch,
) -> f64 {
    assert_eq!(x.len(), y.len(), "column length mismatch");

    // Pass 1: size each y group over complete pairs.
    scratch.group_counts.clear();
    scratch.group_counts.resize(y.card, 0);
    let mut n = 0usize;
    for (&xv, &yv) in x.ids.iter().zip(&y.ids) {
        if xv != MISSING && yv != MISSING {
            scratch.group_counts[yv as usize] += 1;
            n += 1;
        }
    }
    if n == 0 {
        return 0.0;
    }

    // Prefix sums, then scatter x ids into their y group.
    scratch.offsets.clear();
    scratch.offsets.reserve(y.card);
    let mut acc = 0usize;
    for &c in &scratch.group_counts {
        scratch.offsets.push(acc);
        acc += c;
    }
    scratch.cursors.clear();
    scratch.cursors.extend_from_slice(&scratch.offsets);
    scratch.sorted_x.resize(n, 0);
    for (&xv, &yv) in x.ids.iter().zip(&y.ids) {
        if xv != MISSING && yv != MISSING {
            scratch.sorted_x[scratch.cursors[yv as usize]] = xv;
            scratch.cursors[yv as usize] += 1;
        }
    }

    // H(X|Y) = -sum p(x,y) log2( p(x,y) / p(y) ), accumulated in (y id,
    // first-appearance-of-x) order — fixed, so the sum is reproducible.
    scratch.ensure_counts(x.card);
    let nf = n as f64;
    let mut h = 0.0;
    for y_id in 0..y.card {
        let lo = scratch.offsets[y_id];
        let hi = lo + scratch.group_counts[y_id];
        if lo == hi {
            continue;
        }
        let p_y = (hi - lo) as f64 / nf;
        scratch.touched.clear();
        for &xv in &scratch.sorted_x[lo..hi] {
            if scratch.counts[xv as usize] == 0 {
                scratch.touched.push(xv);
            }
            scratch.counts[xv as usize] += 1;
        }
        for &xv in &scratch.touched {
            let p_xy = scratch.counts[xv as usize] as f64 / nf;
            h += -p_xy * (p_xy / p_y).log2();
            scratch.counts[xv as usize] = 0;
        }
    }
    h
}

/// Shannon entropy `H(X)` in bits of a categorical column, ignoring missing
/// entries. Returns 0 for an all-missing or constant column.
pub fn entropy(column: &[Option<u32>]) -> f64 {
    entropy_dense(&DenseColumn::build(column), &mut EntropyScratch::default())
}

/// Conditional entropy `H(X | Y)` in bits, over rows where both columns are
/// present. Returns 0 if no such rows exist.
pub fn conditional_entropy(x: &[Option<u32>], y: &[Option<u32>]) -> f64 {
    assert_eq!(x.len(), y.len(), "column length mismatch");
    conditional_entropy_dense(
        &DenseColumn::build(x),
        &DenseColumn::build(y),
        &mut EntropyScratch::default(),
    )
}

/// Entropy of `x` restricted to rows where both `x` and `y` are present —
/// the proper normalizer for `H(X|Y)` so that the two are computed on the
/// same support.
pub fn entropy_on_joint_support(x: &[Option<u32>], y: &[Option<u32>]) -> f64 {
    assert_eq!(x.len(), y.len(), "column length mismatch");
    entropy_on_joint_support_dense(
        &DenseColumn::build(x),
        &DenseColumn::build(y),
        &mut EntropyScratch::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: &[i64]) -> Vec<Option<u32>> {
        vals.iter()
            .map(|&v| if v < 0 { None } else { Some(v as u32) })
            .collect()
    }

    #[test]
    fn entropy_of_uniform_binary_is_one_bit() {
        let c = col(&[0, 1, 0, 1]);
        assert!((entropy(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        assert_eq!(entropy(&col(&[3, 3, 3])), 0.0);
        assert_eq!(entropy(&col(&[-1, -1])), 0.0); // all missing
    }

    #[test]
    fn entropy_ignores_missing() {
        let with_missing = col(&[0, 1, -1, 0, 1, -1]);
        let without = col(&[0, 1, 0, 1]);
        assert!((entropy(&with_missing) - entropy(&without)).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_zero_when_determined() {
        // y fully determines x (strict hierarchy child -> parent).
        let x = col(&[0, 0, 1, 1]); // parent
        let y = col(&[10, 11, 12, 13]); // child, unique per row
        assert!(conditional_entropy(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_equals_marginal_when_independent() {
        // x and y independent uniform binary over all 4 combinations.
        let x = col(&[0, 0, 1, 1]);
        let y = col(&[0, 1, 0, 1]);
        assert!((conditional_entropy(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditioning_never_increases_entropy() {
        let x = col(&[0, 1, 2, 0, 1, 2, 0, 0]);
        let y = col(&[0, 0, 1, 1, 2, 2, 3, 3]);
        assert!(conditional_entropy(&x, &y) <= entropy(&x) + 1e-12);
    }

    #[test]
    fn joint_support_normalizer_matches_filtered_rows() {
        let x = col(&[0, 1, 0, 1]);
        let y = col(&[5, -1, 6, -1]);
        // Only rows 0 and 2 have y present; x there is constant 0.
        assert_eq!(entropy_on_joint_support(&x, &y), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        conditional_entropy(&col(&[0]), &col(&[0, 1]));
    }

    #[test]
    fn dense_column_reencodes_in_first_appearance_order() {
        let d = DenseColumn::build(&col(&[7, 3, 7, -1, 9]));
        assert_eq!(d.ids, vec![0, 1, 0, MISSING, 2]);
        assert_eq!(d.cardinality(), 3);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn dense_kernels_match_slice_api_with_shared_scratch() {
        // One scratch reused across every call — counts must come back
        // zeroed after each kernel or these disagree.
        let x = col(&[0, 1, 2, 0, 1, 2, 0, -1, 0]);
        let y = col(&[0, 0, 1, 1, 2, 2, 3, 3, -1]);
        let dx = DenseColumn::build(&x);
        let dy = DenseColumn::build(&y);
        let mut scratch = EntropyScratch::default();
        for _ in 0..3 {
            assert_eq!(entropy_dense(&dx, &mut scratch), entropy(&x));
            assert_eq!(
                conditional_entropy_dense(&dx, &dy, &mut scratch),
                conditional_entropy(&x, &y)
            );
            assert_eq!(
                entropy_on_joint_support_dense(&dx, &dy, &mut scratch),
                entropy_on_joint_support(&x, &y)
            );
        }
    }
}
