//! Hierarchy-chain learning (§3.3 "Hierarchical provisioner", step 1).
//!
//! From the thresholded strength matrix we build a DAG whose edges run from
//! coarser features to the finer features that determine them, select the
//! node with the highest out-degree as the root `h₀`, and greedily walk to
//! the highest-out-degree neighbor until reaching a node with out-degree 0.
//! The visited sequence is the hierarchy chain `h` (Fig. 5:
//! `SegmentName > IndustryName > ... > ServerName`).

use crate::strength::{hierarchy_strength_matrix, StrengthMatrix};
use lorentz_types::{FeatureId, LorentzError, ProfileTable};
use serde::{Deserialize, Serialize};

/// Configuration for hierarchy learning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Strength threshold `γ`: HI(parent ← child) ≥ γ becomes a DAG edge.
    /// Paper value: 0.6 (Table 2), "empirically selected to include only the
    /// observed group of strong hierarchies".
    pub threshold: f64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self { threshold: 0.6 }
    }
}

impl HierarchyConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] if the threshold is outside
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<(), LorentzError> {
        if !self.threshold.is_finite() || self.threshold <= 0.0 || self.threshold > 1.0 {
            return Err(LorentzError::InvalidConfig(format!(
                "hierarchy threshold must be in (0, 1], got {}",
                self.threshold
            )));
        }
        Ok(())
    }
}

/// A learned hierarchy chain, ordered coarsest → finest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyChain {
    features: Vec<FeatureId>,
    excluded: Vec<FeatureId>,
}

impl HierarchyChain {
    /// Features in the chain, coarsest first.
    pub fn features(&self) -> &[FeatureId] {
        &self.features
    }

    /// Features that did not join the chain (no strong hierarchical
    /// relationship at the configured threshold).
    pub fn excluded(&self) -> &[FeatureId] {
        &self.excluded
    }

    /// Chain length.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Levels from *finest to coarsest* — the traversal order of the bucket
    /// lookup (start specific, generalize upward).
    pub fn fine_to_coarse(&self) -> impl Iterator<Item = FeatureId> + '_ {
        self.features.iter().rev().copied()
    }

    /// Position of a feature within the chain (0 = coarsest).
    pub fn level_of(&self, feature: FeatureId) -> Option<usize> {
        self.features.iter().position(|&f| f == feature)
    }
}

/// Learns the hierarchy chain of a profile table.
///
/// ```
/// use lorentz_hierarchy::{learn_hierarchy, HierarchyConfig};
/// use lorentz_types::{ProfileSchema, ProfileTable};
///
/// // 2 industries, each with 3 exclusive customers.
/// let schema = ProfileSchema::new(vec!["industry", "customer"])?;
/// let mut table = ProfileTable::new(schema);
/// for i in 0..60 {
///     let industry = if i % 6 < 3 { "retail" } else { "banking" };
///     let customer = format!("c{}", i % 6);
///     table.push_row(&[Some(industry), Some(customer.as_str())])?;
/// }
///
/// let chain = learn_hierarchy(&table, &HierarchyConfig::default())?;
/// let names: Vec<&str> = chain
///     .features()
///     .iter()
///     .map(|&f| table.schema().name(f))
///     .collect();
/// assert_eq!(names, ["industry", "customer"]); // coarse -> fine
/// # Ok::<(), lorentz_types::LorentzError>(())
/// ```
///
/// # Errors
/// Returns [`LorentzError`] for invalid configs or an empty table.
pub fn learn_hierarchy(
    table: &ProfileTable,
    config: &HierarchyConfig,
) -> Result<HierarchyChain, LorentzError> {
    config.validate()?;
    if table.is_empty() {
        return Err(LorentzError::InvalidProfile(
            "cannot learn hierarchy from an empty table".into(),
        ));
    }
    let matrix = hierarchy_strength_matrix(table);
    Ok(chain_from_matrix(&matrix, table, config.threshold))
}

/// Chain construction from a precomputed strength matrix (exposed for tests
/// and for reuse when the matrix is reported to users for explainability).
pub fn chain_from_matrix(
    matrix: &StrengthMatrix,
    table: &ProfileTable,
    threshold: f64,
) -> HierarchyChain {
    let n = matrix.len();

    // Adjacency: edge coarser → finer. `parent ← child` strength ≥ γ means
    // the child determines the parent, i.e. parent is coarser, so the edge
    // runs parent → child. Mutual determination (1:1 features) is broken by
    // cardinality (fewer distinct values = coarser), then by column order.
    let coarser_than = |a: usize, b: usize| -> bool {
        let a_det_by_b = matrix.get(FeatureId(a), FeatureId(b)) >= threshold;
        if !a_det_by_b {
            return false;
        }
        let b_det_by_a = matrix.get(FeatureId(b), FeatureId(a)) >= threshold;
        if !b_det_by_a {
            return true;
        }
        let ca = table.cardinality(FeatureId(a));
        let cb = table.cardinality(FeatureId(b));
        ca < cb || (ca == cb && a < b)
    };

    // Flat CSR-style adjacency arena: all edges in one buffer, nodes keep
    // index ranges into it — no per-node heap allocation. Edge targets for
    // node `a` live at `edge_targets[edge_starts[a]..edge_starts[a + 1]]`
    // in ascending target order, matching the nested-Vec build exactly.
    let mut edge_targets: Vec<usize> = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
    let mut edge_starts: Vec<usize> = Vec::with_capacity(n + 1);
    edge_starts.push(0);
    for a in 0..n {
        for b in 0..n {
            if a != b && coarser_than(a, b) {
                edge_targets.push(b);
            }
        }
        edge_starts.push(edge_targets.len());
    }
    let out_edges = |f: usize| &edge_targets[edge_starts[f]..edge_starts[f + 1]];
    let out_degree = |f: usize| edge_starts[f + 1] - edge_starts[f];

    // Root: highest out-degree (ties by column order).
    let root = (0..n).max_by_key(|&f| out_degree(f));
    let mut features = Vec::new();
    let mut visited = vec![false; n];
    if let Some(root) = root {
        if out_degree(root) > 0 {
            let mut current = root;
            loop {
                visited[current] = true;
                features.push(FeatureId(current));
                // Highest-out-degree unvisited neighbor.
                let next = out_edges(current)
                    .iter()
                    .copied()
                    .filter(|&f| !visited[f])
                    .max_by_key(|&f| out_degree(f));
                match next {
                    Some(f) => current = f,
                    None => break,
                }
            }
        }
    }
    // A single isolated "chain" of one node is no hierarchy at all.
    if features.len() < 2 {
        features.clear();
    }
    let excluded = (0..n)
        .map(FeatureId)
        .filter(|f| !features.contains(f))
        .collect();
    HierarchyChain { features, excluded }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::ProfileSchema;

    /// segment > industry > customer, plus an unrelated `region` feature.
    /// Columns deliberately shuffled so the learner cannot rely on order.
    fn table() -> ProfileTable {
        let schema = ProfileSchema::new(vec!["customer", "segment", "region", "industry"]).unwrap();
        let mut t = ProfileTable::new(schema);
        // 2 segments -> 4 industries -> 12 customers; region independent.
        for i in 0..120 {
            let customer = format!("c{}", i % 12);
            let industry = format!("i{}", i % 12 / 3);
            let segment = format!("s{}", i % 12 / 6);
            let region = format!("r{}", i % 5);
            t.push_row(&[
                Some(customer.as_str()),
                Some(segment.as_str()),
                Some(region.as_str()),
                Some(industry.as_str()),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn learns_coarse_to_fine_chain() {
        let t = table();
        let chain = learn_hierarchy(&t, &HierarchyConfig::default()).unwrap();
        let names: Vec<&str> = chain
            .features()
            .iter()
            .map(|&f| t.schema().name(f))
            .collect();
        assert_eq!(names, vec!["segment", "industry", "customer"]);
    }

    #[test]
    fn unrelated_feature_is_excluded() {
        let t = table();
        let chain = learn_hierarchy(&t, &HierarchyConfig::default()).unwrap();
        let region = t.schema().feature_id("region").unwrap();
        assert!(chain.excluded().contains(&region));
        assert_eq!(chain.level_of(region), None);
    }

    #[test]
    fn fine_to_coarse_reverses_the_chain() {
        let t = table();
        let chain = learn_hierarchy(&t, &HierarchyConfig::default()).unwrap();
        let fine_first: Vec<&str> = chain.fine_to_coarse().map(|f| t.schema().name(f)).collect();
        assert_eq!(fine_first, vec!["customer", "industry", "segment"]);
    }

    #[test]
    fn level_of_is_chain_position() {
        let t = table();
        let chain = learn_hierarchy(&t, &HierarchyConfig::default()).unwrap();
        let segment = t.schema().feature_id("segment").unwrap();
        let customer = t.schema().feature_id("customer").unwrap();
        assert_eq!(chain.level_of(segment), Some(0));
        assert_eq!(chain.level_of(customer), Some(2));
    }

    #[test]
    fn no_hierarchy_yields_empty_chain() {
        let schema = ProfileSchema::new(vec!["a", "b"]).unwrap();
        let mut t = ProfileTable::new(schema);
        for (a, b) in [("0", "0"), ("0", "1"), ("1", "0"), ("1", "1")] {
            for _ in 0..5 {
                t.push_row(&[Some(a), Some(b)]).unwrap();
            }
        }
        let chain = learn_hierarchy(&t, &HierarchyConfig::default()).unwrap();
        assert!(chain.is_empty());
        assert_eq!(chain.excluded().len(), 2);
    }

    #[test]
    fn noisy_hierarchy_still_found_below_strict_threshold() {
        // 1% mis-entry noise: strict HI would fail a γ=1 threshold but the
        // paper's γ=0.6 keeps the edge.
        let schema = ProfileSchema::new(vec!["industry", "customer"]).unwrap();
        let mut t = ProfileTable::new(schema);
        for i in 0..200 {
            let customer = format!("c{}", i % 20);
            let industry = if i == 7 {
                "iX".to_string() // mis-entry
            } else {
                format!("i{}", i % 20 / 5)
            };
            t.push_row(&[Some(industry.as_str()), Some(customer.as_str())])
                .unwrap();
        }
        let chain = learn_hierarchy(&t, &HierarchyConfig::default()).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(t.schema().name(chain.features()[0]), "industry");
    }

    #[test]
    fn one_to_one_features_tie_break_by_cardinality_then_order() {
        // a and b are 1:1 — both determine each other; a comes first.
        let schema = ProfileSchema::new(vec!["a", "b", "c"]).unwrap();
        let mut t = ProfileTable::new(schema);
        for i in 0..40 {
            let a = format!("a{}", i % 4);
            let b = format!("b{}", i % 4);
            let c = format!("c{}", i % 8);
            t.push_row(&[Some(a.as_str()), Some(b.as_str()), Some(c.as_str())])
                .unwrap();
        }
        let chain = learn_hierarchy(&t, &HierarchyConfig::default()).unwrap();
        let names: Vec<&str> = chain
            .features()
            .iter()
            .map(|&f| t.schema().name(f))
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn invalid_threshold_rejected() {
        let t = table();
        for thr in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(learn_hierarchy(&t, &HierarchyConfig { threshold: thr }).is_err());
        }
    }

    #[test]
    fn chain_serde_round_trip() {
        let t = table();
        let chain = learn_hierarchy(&t, &HierarchyConfig::default()).unwrap();
        let json = serde_json::to_string(&chain).unwrap();
        let back: HierarchyChain = serde_json::from_str(&json).unwrap();
        assert_eq!(chain, back);
    }
}
