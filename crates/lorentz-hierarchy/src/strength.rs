//! Pairwise hierarchy strength.
//!
//! For an ordered feature pair `(parent, child)` the *hierarchy strength*
//! (HI) is the uncertainty coefficient
//!
//! ```text
//! HI(parent ← child) = 1 − H(parent | child) / H(parent)
//! ```
//!
//! computed on the rows where both features are present. HI is 1 exactly
//! when every child value maps to a single parent value — a strict
//! hierarchy edge — and near 0 when the features are unrelated. User
//! mis-entry in real profile data pushes strict edges slightly below 1
//! (§3.3, footnote 1), which is why the chain learner thresholds at
//! `γ < 1`.

use crate::entropy::{
    conditional_entropy_dense, entropy_on_joint_support_dense, DenseColumn, EntropyScratch,
};
use lorentz_types::{FeatureId, ProfileTable};

/// Hierarchy strength of `parent ← child` on a pair of interned columns.
///
/// Degenerate cases: a constant (or all-missing) parent is trivially
/// determined by anything, so its strength is defined as 1.
pub fn hierarchy_strength(parent: &[Option<u32>], child: &[Option<u32>]) -> f64 {
    hierarchy_strength_dense(
        &DenseColumn::build(parent),
        &DenseColumn::build(child),
        &mut EntropyScratch::default(),
    )
}

/// [`hierarchy_strength`] over pre-densified columns and reusable scratch —
/// the kernel the matrix sweep calls O(n²) times without rehashing or
/// reallocating.
pub fn hierarchy_strength_dense(
    parent: &DenseColumn,
    child: &DenseColumn,
    scratch: &mut EntropyScratch,
) -> f64 {
    let h_parent = entropy_on_joint_support_dense(parent, child, scratch);
    if h_parent == 0.0 {
        return 1.0;
    }
    let h_cond = conditional_entropy_dense(parent, child, scratch);
    (1.0 - h_cond / h_parent).clamp(0.0, 1.0)
}

/// All pairwise hierarchy strengths of a profile table.
///
/// `get(parent, child)` is HI(parent ← child); the diagonal is 1 by
/// definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StrengthMatrix {
    n: usize,
    /// Row-major `values[parent * n + child]`.
    values: Vec<f64>,
}

impl StrengthMatrix {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// HI(parent ← child).
    pub fn get(&self, parent: FeatureId, child: FeatureId) -> f64 {
        self.values[parent.0 * self.n + child.0]
    }
}

/// Computes the full [`StrengthMatrix`] for a table.
///
/// Each column is densified once; every one of the `n·(n−1)` ordered pairs
/// then runs the hash-free [`hierarchy_strength_dense`] kernel through a
/// single shared [`EntropyScratch`], so the whole sweep performs exactly
/// `n` hashing passes and a constant number of allocations.
pub fn hierarchy_strength_matrix(table: &ProfileTable) -> StrengthMatrix {
    let n = table.schema().len();
    let dense: Vec<DenseColumn> = (0..n)
        .map(|f| DenseColumn::build(table.column(FeatureId(f))))
        .collect();
    let mut scratch = EntropyScratch::default();
    let mut values = vec![1.0; n * n];
    for p in 0..n {
        for c in 0..n {
            if p != c {
                values[p * n + c] = hierarchy_strength_dense(&dense[p], &dense[c], &mut scratch);
            }
        }
    }
    StrengthMatrix { n, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::ProfileSchema;

    /// industry -> customer -> server: a 2-level strict hierarchy with
    /// 2 industries x 6 customers x 2 servers each.
    fn strict_table() -> ProfileTable {
        let schema = ProfileSchema::new(vec!["industry", "customer", "server"]).unwrap();
        let mut t = ProfileTable::new(schema);
        for i in 0..24 {
            let industry = if i % 12 < 6 { "Retail" } else { "Banking" };
            let customer = format!("cust{}", i % 12);
            let server = format!("s{i}");
            t.push_row(&[
                Some(industry),
                Some(customer.as_str()),
                Some(server.as_str()),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn strict_child_determines_parent() {
        let t = strict_table();
        let industry = t.column(FeatureId(0));
        let customer = t.column(FeatureId(1));
        let server = t.column(FeatureId(2));
        assert_eq!(hierarchy_strength(industry, customer), 1.0);
        assert_eq!(hierarchy_strength(industry, server), 1.0);
        assert_eq!(hierarchy_strength(customer, server), 1.0);
    }

    #[test]
    fn parent_does_not_determine_child() {
        let t = strict_table();
        let industry = t.column(FeatureId(0));
        let customer = t.column(FeatureId(1));
        // Knowing the industry leaves customer uncertainty.
        assert!(hierarchy_strength(customer, industry) < 0.5);
    }

    #[test]
    fn unrelated_features_have_low_strength() {
        let schema = ProfileSchema::new(vec!["a", "b"]).unwrap();
        let mut t = ProfileTable::new(schema);
        // a and b independent: all 4 combinations equally often.
        for (a, b) in [("0", "0"), ("0", "1"), ("1", "0"), ("1", "1")] {
            for _ in 0..5 {
                t.push_row(&[Some(a), Some(b)]).unwrap();
            }
        }
        let s = hierarchy_strength(t.column(FeatureId(0)), t.column(FeatureId(1)));
        assert!(
            s < 1e-9,
            "independent features should have ~0 strength, got {s}"
        );
    }

    #[test]
    fn mis_entry_noise_reduces_but_preserves_strength() {
        let schema = ProfileSchema::new(vec!["industry", "customer"]).unwrap();
        let mut t = ProfileTable::new(schema);
        for i in 0..100 {
            let customer = format!("c{}", i % 10);
            // Customers 0-4 are Retail, 5-9 Banking — except one noisy row.
            let industry = if i == 0 {
                "Banking" // mis-entered: c0 is otherwise Retail
            } else if i % 10 < 5 {
                "Retail"
            } else {
                "Banking"
            };
            t.push_row(&[Some(industry), Some(customer.as_str())])
                .unwrap();
        }
        let s = hierarchy_strength(t.column(FeatureId(0)), t.column(FeatureId(1)));
        assert!(s < 1.0, "noise must reduce strength below 1, got {s}");
        assert!(s > 0.9, "one bad row should barely dent strength, got {s}");
    }

    #[test]
    fn matrix_diagonal_is_one_and_matches_pairwise() {
        let t = strict_table();
        let m = hierarchy_strength_matrix(&t);
        assert_eq!(m.len(), 3);
        for f in 0..3 {
            assert_eq!(m.get(FeatureId(f), FeatureId(f)), 1.0);
        }
        assert_eq!(
            m.get(FeatureId(0), FeatureId(2)),
            hierarchy_strength(t.column(FeatureId(0)), t.column(FeatureId(2)))
        );
    }

    #[test]
    fn constant_parent_is_trivially_determined() {
        let schema = ProfileSchema::new(vec!["const", "x"]).unwrap();
        let mut t = ProfileTable::new(schema);
        for i in 0..4 {
            let x = format!("v{i}");
            t.push_row(&[Some("same"), Some(x.as_str())]).unwrap();
        }
        assert_eq!(
            hierarchy_strength(t.column(FeatureId(0)), t.column(FeatureId(1))),
            1.0
        );
    }
}
