//! HALO-style hierarchy learning over categorical profile features.
//!
//! The hierarchical provisioner (§3.3) needs to know that, e.g.,
//! `SegmentName > IndustryName > ... > ServerName`: which features are
//! coarse and which are fine. Following the paper (and HALO, Zhang et al.
//! KDD'21), this crate measures the *hierarchy strength* between every pair
//! of features from their co-occurrence entropy, thresholds it into a
//! weighted DAG whose edges run from coarser to finer features, picks the
//! node with the highest out-degree as the root, and greedily traverses to
//! produce the hierarchy chain `h`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chain;
pub mod entropy;
pub mod strength;

pub use chain::{learn_hierarchy, HierarchyChain, HierarchyConfig};
pub use entropy::{DenseColumn, EntropyScratch};
pub use strength::{hierarchy_strength_matrix, StrengthMatrix};
