//! The Lorentz concurrent serving engine.
//!
//! Production Lorentz serves recommendations from a periodically
//! re-published offline prediction store (§4, Fig. 8) — at cloud scale
//! that means many concurrent readers racing a background publisher. This
//! crate owns that hot path:
//!
//! * **Hot-swap snapshots** — the engine serves store lookups from
//!   [`SharedPredictionStore`](lorentz_core::SharedPredictionStore)
//!   snapshots: readers clone an `Arc` out of a mutex-guarded slot (the
//!   lock is held only for the refcount bump) and probe an immutable store
//!   version lock-free, while [`ServingEngine::publish`] swaps in a fresh
//!   snapshot atomically — zero-downtime re-publish under drift.
//! * **Worker-pool execution** — [`ServingEngine::start`] spawns a fixed
//!   worker pool behind a bounded submission queue.
//!   [`ServingEngine::submit`] applies backpressure: a full queue rejects
//!   with [`ServeError::Saturated`] instead of buffering unboundedly.
//! * **Deadlines** — each request may carry a deadline (or inherit the
//!   engine default); requests that expire while queued are answered with
//!   [`ServeError::DeadlineExceeded`] rather than served late.
//! * **Degraded mode** — when the queue is saturated past a configurable
//!   threshold, requests fall back from live-model inference to the
//!   precomputed store lookup, trading explanation richness for latency.
//! * **Graceful drain** — [`ServingEngine::drain`] closes intake, lets the
//!   workers finish every in-flight request, joins them, and returns the
//!   final [`EngineStats`]. Every accepted request is answered exactly
//!   once: `submitted = accepted + rejected` and `accepted = answered`.
//! * **Panic isolation** — a request handler that panics is caught at the
//!   worker boundary and answered as [`ServeError::Panicked`], keeping the
//!   drain ledger exact; a supervisor replaces the crashed worker (with
//!   exponential backoff, up to [`ServeConfig::max_worker_restarts`]) so a
//!   poison-pill request cannot empty the pool. Engine construction itself
//!   no longer panics: [`ServingEngine::start`] returns
//!   [`EngineError::SpawnFailed`] when the OS refuses a thread.
//! * **Online feedback** — [`ServingEngine::submit_feedback`] routes
//!   satisfaction signals to a dedicated λ-writer thread that applies the
//!   Stage-3 message-propagation round off to the side and hot-publishes a
//!   fresh [`LambdaSnapshot`](lorentz_core::LambdaSnapshot); workers pin
//!   one snapshot per request, so the next recommendation for an affected
//!   path shifts by `2^λ` with no model reload and no torn reads. With
//!   [`ServingEngine::start_with_wal`] every accepted signal is appended
//!   to a CRC-framed WAL and replayed on restart, so learned λ survives a
//!   crash. Each WAL record carries the epoch-stamped λ delta the signal
//!   published, and publishes are generational-overlay deltas — O(keys
//!   changed), never a full-table flatten. The drain ledger extends to
//!   `feedback_accepted = feedback_applied`.
//! * **Follower replication** — [`FollowerEngine`] tails a leader's WAL
//!   (catch-up-then-serve), applies the framed deltas to its own λ store,
//!   and answers recommendations from the replicated epochs — a read
//!   replica that converges bit-for-bit without re-running propagation.
//! * **Replication over TCP & promotion** — [`serve_replication`] runs a
//!   leader-side listener fanning the WAL frame stream out to subscribed
//!   followers (per-follower outbox threads, so one slow standby never
//!   stalls the leader), with a resume-from-epoch handshake: a follower
//!   reconnecting with its last applied epoch receives only the tail, or
//!   a full-resync verdict when the leader compacted past it. Transports
//!   hide behind the [`ReplicationSource`] trait ([`FileSource`] /
//!   [`TcpSource`]); [`FollowerEngine::start_tcp`] persists received
//!   frames to a local WAL (byte-identical to the leader's) and, when
//!   configured with a [`PromoteConfig`], promotes itself to a serving
//!   leader after the leader stays unreachable past the detection
//!   timeout — exactly-once across racing standbys, arbitrated by the
//!   promotion listen address bind.
//! * **Leader-term fencing** — every leader serves under a monotonically
//!   increasing term, minted at first start and on every promotion and
//!   persisted in-band as a WAL term marker. Subscribe handshakes carry
//!   the follower's highest observed term; a leader contacted with a
//!   strictly higher one has provably been superseded and fences itself:
//!   feedback is refused with [`ServeError::Fenced`] (the WAL lineage
//!   freezes — no split-brain fork), new subscriptions are refused with a
//!   typed `stale_leader` rejection, and a promoted replica that gets
//!   fenced demotes to [`ReplicaState::Demoted`] while reads keep
//!   answering.
//! * **Sharded state** — with [`ServeConfig::shards`] > 1 the prediction
//!   store and λ-state split into power-of-two shards selected by a
//!   multiply-fold hash of the packed key
//!   ([`ShardRouter`](lorentz_types::ShardRouter)); a store hot-swap or
//!   λ-delta publish touches exactly one shard's `Arc` slot, so publishes
//!   to different shards never contend and readers on the other shards
//!   never see so much as a cache-line bounce. λ epochs stay globally
//!   minted, so the WAL/follower protocol is unchanged.
//! * **TCP front end** — [`serve_net`] serves the engine over persistent
//!   TCP connections speaking the length-prefixed JSON frame protocol in
//!   [`wire`]: one acceptor, a reader + writer thread per connection, a
//!   dispatcher routing responses back to the submitting connection, and
//!   a drain frame that closes the ledger exactly. Per-connection traffic
//!   lands in the `engine.net.*` obs metrics and the final [`NetReport`].
//!
//! All of it threads through the process-wide `lorentz_core::obs` metrics
//! (`engine.*` counters, queue-depth gauge, end-to-end latency histogram),
//! so a `--metrics-out` snapshot accounts for the full request ledger.
//!
//! ```
//! use lorentz_core::{FleetDataset, LorentzConfig, LorentzPipeline};
//! use lorentz_serve::{ServeConfig, ServeRequest, ServingEngine};
//! use lorentz_telemetry::{RegularSeries, UsageTrace};
//! use lorentz_types::{
//!     Capacity, CustomerId, ProfileSchema, ProfileTable, ResourceGroupId, ResourcePath,
//!     ServerId, ServerOffering, SubscriptionId,
//! };
//! use std::sync::Arc;
//!
//! // Train a toy deployment (see `LorentzPipeline` for the fleet shape).
//! let schema = ProfileSchema::new(vec!["industry", "customer"])?;
//! let mut fleet = FleetDataset::new(ProfileTable::new(schema));
//! for i in 0..40u32 {
//!     let (industry, demand) = if i % 2 == 0 { ("retail", 1.0) } else { ("banking", 8.0) };
//!     let customer = format!("c{}", i % 8);
//!     fleet.push(
//!         ServerId(i),
//!         ResourcePath::new(CustomerId(i % 4), SubscriptionId(i % 8), ResourceGroupId(i)),
//!         ServerOffering::GeneralPurpose,
//!         &[Some(industry), Some(customer.as_str())],
//!         Capacity::scalar(8.0),
//!         UsageTrace::single(RegularSeries::new(300.0, vec![demand; 12])?),
//!     )?;
//! }
//! let mut config = LorentzConfig::paper_defaults();
//! config.hierarchical.min_bucket = 5;
//! config.target_encoding.boosting.n_trees = 10;
//! let trained = LorentzPipeline::new(config)?.train(&fleet)?;
//!
//! // Serve through the engine: submit, drain, read answers. `start` can
//! // fail (thread spawn), `submit` can reject (saturated or draining
//! // queue), and each response carries its own per-request result — all
//! // three are handled, not unwrapped.
//! let (engine, responses) = ServingEngine::start(Arc::new(trained), ServeConfig::default())?;
//! engine.submit(ServeRequest {
//!     id: 1,
//!     profile: vec![Some("banking".into()), None],
//!     offering: ServerOffering::GeneralPurpose,
//!     path: ResourcePath::new(CustomerId(99), SubscriptionId(1), ResourceGroupId(1)),
//!     deadline: None,
//! })?;
//! let stats = engine.drain();
//! assert_eq!(stats.answered, 1);
//! let response = responses.recv()?;
//! match response.result {
//!     Ok(recommendation) => assert_eq!(recommendation.sku.capacity.primary(), 16.0),
//!     Err(err) => eprintln!("request {} failed: {err}", response.id),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod follower;
mod net;
pub mod replication;
mod types;
pub mod wire;

pub use engine::ServingEngine;
pub use follower::{FollowerConfig, FollowerEngine, FollowerStats, PromoteConfig, ReplicaState};
pub use net::{serve_net, NetConfig, NetReport};
pub use replication::{
    serve_replication, FileSource, ReplicationConfig, ReplicationError, ReplicationListener,
    ReplicationSource, SourcePoll, SourcedEntry, TcpSource,
};
pub use types::{
    EngineError, EngineStats, RequestError, ServeConfig, ServeError, ServeRequest, ServeResponse,
};
