//! Request, response, configuration, and accounting types for the engine.

use lorentz_core::{ModelKind, Recommendation};
use lorentz_types::{LorentzError, ResourcePath, ServerOffering};
use std::time::Duration;
use thiserror::Error;

/// How the serving engine behaves under load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Worker threads serving the queue (clamped to at least 1).
    pub workers: usize,
    /// Maximum queued (accepted but unserved) requests; submissions beyond
    /// this are rejected with [`ServeError::Saturated`](crate::ServeError).
    pub queue_capacity: usize,
    /// Queue depth at or above which newly admitted requests are served
    /// from the prediction store instead of the live model (`None` = never
    /// degrade). Must be below `queue_capacity` to ever trigger.
    pub degraded_threshold: Option<usize>,
    /// Deadline applied to requests that don't carry their own; requests
    /// still queued past their deadline are answered with
    /// [`ServeError::DeadlineExceeded`](crate::ServeError) (`None` = no
    /// default deadline).
    pub default_deadline: Option<Duration>,
    /// The live Stage-2 model served on the non-degraded path.
    pub kind: ModelKind,
    /// How many crashed workers the supervisor will replace over the
    /// engine's lifetime before letting the pool shrink.
    pub max_worker_restarts: u32,
    /// Base delay before a replacement worker starts; doubles per restart
    /// already used, capped at one second.
    pub restart_backoff: Duration,
    /// Power-of-two shard count for the hot-swap prediction store and the
    /// λ-state. 1 (the default) degenerates to the unsharded engine; larger
    /// counts make every store hot-swap and λ-delta a single-shard publish.
    pub shards: usize,
}

impl Default for ServeConfig {
    /// 4 workers, a 1024-deep queue, degraded mode at 3/4 capacity, no
    /// default deadline, hierarchical live model, up to 8 worker restarts
    /// starting at a 10 ms backoff, a single shard.
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 1024,
            degraded_threshold: Some(768),
            default_deadline: None,
            kind: ModelKind::Hierarchical,
            max_worker_restarts: 8,
            restart_backoff: Duration::from_millis(10),
            shards: 1,
        }
    }
}

/// One owned request submitted to the engine. The borrowed
/// [`RecommendRequest`](lorentz_core::RecommendRequest) view is rebuilt by
/// the worker that serves it.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen correlation id, echoed back on the response.
    pub id: u64,
    /// Raw profile feature values in schema order (`None` = missing tag).
    pub profile: Vec<Option<String>>,
    /// The pre-selected server offering.
    pub offering: ServerOffering,
    /// Customer / subscription / resource group the resource will live in.
    pub path: ResourcePath,
    /// Per-request deadline measured from submission; overrides the engine
    /// default when set.
    pub deadline: Option<Duration>,
}

/// The engine's answer to one accepted request.
#[derive(Debug)]
pub struct ServeResponse {
    /// The correlation id of the [`ServeRequest`] this answers.
    pub id: u64,
    /// The recommendation, or why it could not be produced.
    pub result: Result<Recommendation, ServeError>,
    /// Whether this request was served on the degraded (store-lookup) path.
    pub degraded: bool,
    /// Submit-to-answer latency in nanoseconds.
    pub latency_ns: u64,
}

/// Why the engine refused or failed a request.
#[derive(Debug, Error)]
pub enum ServeError {
    /// The bounded submission queue was full; the request was rejected at
    /// admission (backpressure, not buffering).
    #[error("serving queue is saturated ({0} requests queued)")]
    Saturated(usize),
    /// The engine is draining; intake is closed.
    #[error("serving engine is draining; intake is closed")]
    Draining,
    /// The request spent longer than its deadline in the queue and was
    /// answered with an error instead of being served late.
    #[error("deadline exceeded after {0} ns in queue")]
    DeadlineExceeded(u64),
    /// The underlying recommendation failed (unknown offering, malformed
    /// profile, empty store, ...).
    #[error("recommendation failed: {0}")]
    Recommend(LorentzError),
    /// The handler panicked while serving this request. The panic was
    /// caught at the worker boundary: the request is still answered (this
    /// error), the ledger still closes, and the supervisor replaces the
    /// worker.
    #[error("request handler panicked: {0}")]
    Panicked(String),
    /// This leader has been fenced: a leader at a strictly higher term owns
    /// the WAL lineage, so accepting feedback here would fork it. Reads keep
    /// working; only feedback intake is refused.
    #[error("leader at term {term} is fenced: a term-{observed} leader has superseded it")]
    Fenced {
        /// The term this (former) leader held.
        term: u64,
        /// The higher term it observed.
        observed: u64,
    },
}

/// Per-request failure type, as seen in [`ServeResponse::result`]. Alias of
/// [`ServeError`]: admission errors ([`ServeError::Saturated`],
/// [`ServeError::Draining`]) are returned from `submit`, the rest arrive on
/// the response channel.
pub type RequestError = ServeError;

/// Why the engine itself (not an individual request) failed.
#[derive(Debug, Error)]
pub enum EngineError {
    /// A worker thread could not be spawned during engine construction.
    /// Already-spawned workers are shut down before this is returned, so a
    /// failed start leaks nothing.
    #[error("failed to spawn worker thread '{name}': {source}")]
    SpawnFailed {
        /// Name of the thread that failed to spawn.
        name: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// The feedback WAL could not be opened or replayed at startup.
    #[error("feedback WAL failed: {0}")]
    Wal(lorentz_core::StoreError),
    /// The engine configuration is invalid (e.g. a non-power-of-two shard
    /// count).
    #[error("invalid engine configuration: {0}")]
    Config(LorentzError),
    /// A replication subscription could not be established — the connect
    /// or handshake failed, or the leader refused it with a typed error
    /// (e.g. `follower_ahead`).
    #[error("replication failed: {0}")]
    Replication(crate::replication::ReplicationError),
}

impl From<lorentz_core::StoreError> for EngineError {
    fn from(source: lorentz_core::StoreError) -> Self {
        Self::Wal(source)
    }
}

/// The engine's request ledger. After [`drain`](crate::ServingEngine::drain)
/// the invariants hold exactly: `submitted = accepted + rejected`,
/// `accepted = answered`, and `feedback_accepted = feedback_applied` —
/// every accepted request is answered exactly once, every offered request
/// is accounted for, and every accepted feedback signal has been applied
/// and published.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests offered to [`submit`](crate::ServingEngine::submit).
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests refused at admission (queue full or intake closed).
    pub rejected: u64,
    /// Responses emitted (success, recommendation error, or deadline).
    pub answered: u64,
    /// Accepted requests answered with a deadline error.
    pub timed_out: u64,
    /// Requests admitted in degraded (store-lookup) mode.
    pub degraded: u64,
    /// Requests whose handler panicked; each was still answered (with
    /// [`ServeError::Panicked`]), so `panicked ⊆ answered`.
    pub panicked: u64,
    /// Satisfaction signals admitted by
    /// [`submit_feedback`](crate::ServingEngine::submit_feedback).
    pub feedback_accepted: u64,
    /// Satisfaction signals the λ-writer has applied and published. Catches
    /// up to `feedback_accepted` once the engine drains.
    pub feedback_applied: u64,
}
