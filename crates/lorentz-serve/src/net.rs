//! The TCP front end: persistent connections feeding the bounded-queue
//! engine.
//!
//! One acceptor owns the listening socket. Each accepted connection gets
//! a **reader** thread (decodes length-prefixed frames, parses them, and
//! submits requests/feedback to the [`ServingEngine`]) and a **writer**
//! thread (drains a per-connection outbox channel onto the socket, so a
//! slow client never blocks a worker). A single **dispatcher** thread
//! consumes the engine's response channel and routes each answer back to
//! the connection that submitted it: the server rewrites every request id
//! to a process-unique routing id at admission and restores the client's
//! id on the way out, so ids need not be unique across connections.
//!
//! Graceful drain: a `{"op": "drain"}` frame (from any connection) stops
//! the acceptor, half-closes every connection's read side (unblocking the
//! readers), drains the engine — every accepted request still gets its
//! response, flushed to whichever connection submitted it — then closes
//! write sides. The final [`NetReport`] carries the engine's exact ledger
//! plus the per-connection accounting, mirrored into the `engine.net.*`
//! obs metrics.
//!
//! Failure semantics per connection:
//! * clean close / half-open peer → the reader exits, in-flight responses
//!   for that connection are dropped (counted, never blocking the pool);
//! * mid-frame disconnect → counted as a disconnect, same cleanup;
//! * oversized frame → typed `frame_too_large` error frame, then the
//!   connection closes (the payload was never read, so the stream cannot
//!   be resynchronized);
//! * garbage payload → typed `malformed` error frame, connection stays
//!   open (the frame boundary is intact).

use crate::engine::ServingEngine;
use crate::types::{EngineStats, ServeResponse};
use crate::wire::{self, ClientFrame, WireError};
use lorentz_core::{obs, TrainedLorentz};
use lorentz_fault::fail_point;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for the TCP front end.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Largest accepted frame payload; larger declared lengths are
    /// rejected with a typed error before buffering.
    pub max_frame_len: usize,
    /// How often the (non-blocking) acceptor polls for new connections
    /// and for the stop flag.
    pub accept_poll: Duration,
}

impl Default for NetConfig {
    /// 1 MiB frames, 5 ms accept poll.
    fn default() -> Self {
        Self {
            max_frame_len: wire::MAX_FRAME_LEN_DEFAULT,
            accept_poll: Duration::from_millis(5),
        }
    }
}

/// What the front end did over its lifetime, returned by [`serve_net`]
/// after the drain completes.
#[derive(Debug, Clone, Copy)]
pub struct NetReport {
    /// The engine's exact post-drain ledger
    /// (`submitted = accepted + rejected`, `accepted = answered`).
    pub engine: EngineStats,
    /// Prediction-store version at drain time.
    pub store_version: u64,
    /// λ-state version (last globally minted epoch) at drain time.
    pub lambda_version: u64,
    /// The leader term the engine served under.
    pub leader_term: u64,
    /// The higher term that fenced this leader, if one was observed
    /// (`None` = the engine was never superseded).
    pub fenced_by: Option<u64>,
    /// Connections accepted.
    pub connections: u64,
    /// Request frames decoded off sockets.
    pub frames_in: u64,
    /// Frames written back (responses, acks, error frames).
    pub frames_out: u64,
    /// Frames rejected before reaching the engine.
    pub frame_errors: u64,
    /// Connections that ended in an I/O error instead of a clean close.
    pub disconnects: u64,
    /// Responses whose connection was gone when the engine answered.
    pub dropped_responses: u64,
}

/// Local accounting, mirrored into the global `engine.net.*` metrics (the
/// report uses these so concurrent servers in one process — e.g. tests —
/// stay independent).
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    frame_errors: AtomicU64,
    disconnects: AtomicU64,
    dropped_responses: AtomicU64,
}

/// One connection's server-side handle: the outbox the dispatcher and the
/// reader enqueue frames into, and a stream clone for half-close.
struct ConnHandle {
    outbox: Sender<Vec<u8>>,
    stream: TcpStream,
}

/// State shared by the acceptor, readers, writers, and dispatcher.
struct Ctx {
    deployment: Arc<TrainedLorentz>,
    /// Set by a drain frame; the acceptor polls it, readers check it to
    /// decide whether their connection outlives them (drain keeps write
    /// sides open for in-flight responses).
    stop: AtomicBool,
    /// Process-unique routing ids for in-flight requests.
    next_routing_id: AtomicU64,
    /// routing id → (connection id, client's correlation id).
    pending: Mutex<HashMap<u64, (u64, u64)>>,
    conns: Mutex<HashMap<u64, ConnHandle>>,
    counters: Counters,
    max_frame_len: usize,
}

impl Ctx {
    /// Enqueues a frame on a connection's outbox; a vanished connection
    /// counts the frame as dropped.
    fn send_to(&self, conn_id: u64, payload: Vec<u8>) -> bool {
        let delivered = self
            .conns
            .lock()
            .expect("net conns poisoned")
            .get(&conn_id)
            .is_some_and(|conn| conn.outbox.send(payload).is_ok());
        if !delivered {
            self.counters
                .dropped_responses
                .fetch_add(1, Ordering::Relaxed);
            obs::NET_DROPPED_RESPONSES.inc();
        }
        delivered
    }

    /// Removes a connection: drops its outbox, which lets the writer
    /// drain any queued frames and then close the socket itself (closing
    /// here would race the writer and cut off a final error frame).
    fn remove_conn(&self, conn_id: u64) {
        if self
            .conns
            .lock()
            .expect("net conns poisoned")
            .remove(&conn_id)
            .is_some()
        {
            obs::NET_ACTIVE_CONNECTIONS.add(-1);
        }
    }
}

/// Consults a `serve.net.*` fail point (compiled out without the
/// `fault-injection` feature).
fn net_fail(name: &str) -> Option<lorentz_fault::FailAction> {
    #[cfg(feature = "fault-injection")]
    {
        lorentz_fault::registry().hit(name)
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = name;
        None
    }
}

/// Runs the TCP front end over an already-bound listener until a client
/// sends `{"op": "drain"}`, then drains the engine and returns the
/// combined report. Blocks the calling thread for the server's lifetime.
///
/// # Errors
/// Only listener-level I/O errors (e.g. the socket being closed under the
/// acceptor) are fatal; per-connection errors are counted and contained.
pub fn serve_net(
    deployment: Arc<TrainedLorentz>,
    engine: ServingEngine,
    responses: Receiver<ServeResponse>,
    listener: TcpListener,
    config: NetConfig,
) -> std::io::Result<NetReport> {
    let engine = Arc::new(engine);
    let ctx = Arc::new(Ctx {
        deployment,
        stop: AtomicBool::new(false),
        next_routing_id: AtomicU64::new(1),
        pending: Mutex::new(HashMap::new()),
        conns: Mutex::new(HashMap::new()),
        counters: Counters::default(),
        max_frame_len: config.max_frame_len,
    });
    listener.set_nonblocking(true)?;

    let dispatcher = {
        let ctx = Arc::clone(&ctx);
        std::thread::Builder::new()
            .name("lorentz-net-dispatch".to_string())
            .spawn(move || dispatch_loop(&ctx, &responses))?
    };

    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    let mut writers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn_id = 0u64;
    while !ctx.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Some(action) = net_fail("serve.net.accept") {
                    lorentz_fault::act_default("serve.net.accept", &action);
                    // I/O-shaped actions refuse the connection.
                    ctx.counters.disconnects.fetch_add(1, Ordering::Relaxed);
                    obs::NET_DISCONNECTS.inc();
                    drop(stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let conn_id = next_conn_id;
                next_conn_id += 1;
                ctx.counters.connections.fetch_add(1, Ordering::Relaxed);
                obs::NET_CONNECTIONS.inc();
                obs::NET_ACTIVE_CONNECTIONS.add(1);
                let (outbox_tx, outbox_rx) = channel::<Vec<u8>>();
                let write_half = stream.try_clone()?;
                ctx.conns.lock().expect("net conns poisoned").insert(
                    conn_id,
                    ConnHandle {
                        outbox: outbox_tx,
                        stream: stream.try_clone()?,
                    },
                );
                {
                    let ctx = Arc::clone(&ctx);
                    writers.push(
                        std::thread::Builder::new()
                            .name(format!("lorentz-net-write-{conn_id}"))
                            .spawn(move || writer_loop(&ctx, write_half, &outbox_rx))?,
                    );
                }
                {
                    let ctx = Arc::clone(&ctx);
                    let engine = Arc::clone(&engine);
                    readers.push(
                        std::thread::Builder::new()
                            .name(format!("lorentz-net-read-{conn_id}"))
                            .spawn(move || reader_loop(&ctx, &engine, conn_id, stream))?,
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(config.accept_poll);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }

    // Drain: unblock every reader by half-closing the read sides; write
    // sides stay open so in-flight responses still reach their clients.
    for conn in ctx.conns.lock().expect("net conns poisoned").values() {
        let _ = conn.stream.shutdown(Shutdown::Read);
    }
    for reader in readers {
        let _ = reader.join();
    }
    // Readers are gone, so no new submissions: drain the engine. Every
    // accepted request produces its response before the channel closes.
    let engine = Arc::try_unwrap(engine)
        .unwrap_or_else(|_| unreachable!("reader threads joined, no engine clones remain"));
    let store_version = engine.store_version();
    let lambda_version = engine.lambda_version();
    let leader_term = engine.leader_term();
    let fenced_by = engine.fenced_by();
    let stats = engine.drain();
    // The response channel is closed; the dispatcher finishes routing
    // whatever was answered, then exits.
    let _ = dispatcher.join();
    let conn_ids: Vec<u64> = ctx
        .conns
        .lock()
        .expect("net conns poisoned")
        .keys()
        .copied()
        .collect();
    for conn_id in conn_ids {
        ctx.remove_conn(conn_id);
    }
    for writer in writers {
        let _ = writer.join();
    }
    Ok(NetReport {
        engine: stats,
        store_version,
        lambda_version,
        leader_term,
        fenced_by,
        connections: ctx.counters.connections.load(Ordering::Relaxed),
        frames_in: ctx.counters.frames_in.load(Ordering::Relaxed),
        frames_out: ctx.counters.frames_out.load(Ordering::Relaxed),
        frame_errors: ctx.counters.frame_errors.load(Ordering::Relaxed),
        disconnects: ctx.counters.disconnects.load(Ordering::Relaxed),
        dropped_responses: ctx.counters.dropped_responses.load(Ordering::Relaxed),
    })
}

/// Routes engine responses back to the connections that submitted them.
/// Exits when the response channel closes (after the engine drains).
fn dispatch_loop(ctx: &Ctx, responses: &Receiver<ServeResponse>) {
    for response in responses {
        let route = ctx
            .pending
            .lock()
            .expect("net pending poisoned")
            .remove(&response.id);
        let Some((conn_id, client_id)) = route else {
            // A response with no pending entry (rejected at submit after
            // the entry was removed) — nothing to route.
            continue;
        };
        ctx.send_to(conn_id, wire::encode_response(client_id, &response));
    }
}

/// Per-connection writer: drains the outbox onto the socket. Exits when
/// the outbox closes (connection removed) or a write fails. The
/// `serve.net.write` fail point can tear a frame mid-write and kill the
/// connection, simulating a server falling over mid-response.
fn writer_loop(ctx: &Ctx, mut stream: TcpStream, outbox: &Receiver<Vec<u8>>) {
    for payload in outbox {
        if let Some(action) = net_fail("serve.net.write") {
            lorentz_fault::act_default("serve.net.write", &action);
            if let lorentz_fault::FailAction::Partial(frac) = action {
                // Torn response: ship the length prefix plus a prefix of
                // the payload, then kill the connection. The client sees
                // a truncated frame, never a corrupt-but-complete one.
                let keep = ((payload.len() as f64) * frac.clamp(0.0, 1.0)) as usize;
                let mut torn = Vec::with_capacity(4 + keep);
                torn.extend_from_slice(&u32::try_from(payload.len()).unwrap_or(0).to_be_bytes());
                torn.extend_from_slice(&payload[..keep]);
                use std::io::Write;
                let _ = stream.write_all(&torn);
                let _ = stream.flush();
            }
            ctx.counters.disconnects.fetch_add(1, Ordering::Relaxed);
            obs::NET_DISCONNECTS.inc();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        if wire::write_frame(&mut stream, &payload).is_err() {
            ctx.counters.disconnects.fetch_add(1, Ordering::Relaxed);
            obs::NET_DISCONNECTS.inc();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        ctx.counters.frames_out.fetch_add(1, Ordering::Relaxed);
        obs::NET_FRAMES_OUT.inc();
    }
    // The outbox closed (connection removed): everything queued has been
    // written, so the write side can finally close.
    let _ = stream.shutdown(Shutdown::Both);
}

/// Per-connection reader: decode → parse → submit, answering control
/// frames inline. See the module docs for the per-error semantics.
fn reader_loop(ctx: &Ctx, engine: &ServingEngine, conn_id: u64, stream: TcpStream) {
    let mut reader = BufReader::new(stream);
    loop {
        fail_point!("serve.net.read");
        let payload = match wire::read_frame(&mut reader, ctx.max_frame_len) {
            Ok(payload) => payload,
            Err(WireError::Closed) => break,
            Err(err @ WireError::TooLarge { .. }) => {
                // The oversized payload was never read; the stream cannot
                // be resynchronized, so answer and close.
                ctx.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                obs::NET_FRAME_ERRORS.inc();
                ctx.send_to(
                    conn_id,
                    wire::encode_error(None, err.kind(), &err.to_string()),
                );
                break;
            }
            Err(err) => {
                // Truncated frame or socket error: the peer is gone (or
                // the drain half-closed us mid-read).
                if !ctx.stop.load(Ordering::Acquire) {
                    ctx.counters.disconnects.fetch_add(1, Ordering::Relaxed);
                    obs::NET_DISCONNECTS.inc();
                }
                let _ = err;
                break;
            }
        };
        ctx.counters.frames_in.fetch_add(1, Ordering::Relaxed);
        obs::NET_FRAMES_IN.inc();
        match wire::parse_client_frame(&payload, ctx.deployment.profiles().schema()) {
            Err(err) => {
                // Frame boundary intact: report and keep serving.
                ctx.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                obs::NET_FRAME_ERRORS.inc();
                ctx.send_to(
                    conn_id,
                    wire::encode_error(None, err.kind(), &err.to_string()),
                );
            }
            Ok(ClientFrame::Request(mut request)) => {
                let client_id = request.id;
                let routing_id = ctx.next_routing_id.fetch_add(1, Ordering::Relaxed);
                request.id = routing_id;
                ctx.pending
                    .lock()
                    .expect("net pending poisoned")
                    .insert(routing_id, (conn_id, client_id));
                if let Err(err) = engine.submit(request) {
                    ctx.pending
                        .lock()
                        .expect("net pending poisoned")
                        .remove(&routing_id);
                    ctx.send_to(
                        conn_id,
                        wire::encode_error(Some(client_id), "rejected", &err.to_string()),
                    );
                }
            }
            Ok(ClientFrame::Feedback(signal)) => match engine.submit_feedback(signal) {
                Ok(()) => {
                    // Read-your-writes for this connection: the ack only
                    // leaves after the λ publish lands.
                    engine.flush_feedback();
                    ctx.send_to(
                        conn_id,
                        wire::encode_ack("ack", serde::Value::Str("feedback".to_owned())),
                    );
                }
                Err(err) => {
                    ctx.send_to(
                        conn_id,
                        wire::encode_error(None, "rejected", &err.to_string()),
                    );
                }
            },
            Ok(ClientFrame::Ping) => {
                ctx.send_to(conn_id, wire::encode_ack("pong", serde::Value::Bool(true)));
            }
            Ok(ClientFrame::Drain) => {
                ctx.send_to(
                    conn_id,
                    wire::encode_ack("ack", serde::Value::Str("drain".to_owned())),
                );
                ctx.stop.store(true, Ordering::Release);
                break;
            }
        }
    }
    // On drain the connection outlives its reader: pending responses are
    // flushed by the dispatcher before `serve_net` closes write sides.
    if !ctx.stop.load(Ordering::Acquire) {
        ctx.remove_conn(conn_id);
    }
}
