//! The worker-pool request engine over hot-swappable store snapshots.

use crate::replication::ReplicationHub;
use crate::types::{
    EngineError, EngineStats, ServeConfig, ServeError, ServeRequest, ServeResponse,
};
use lorentz_core::obs;
use lorentz_core::personalizer::{
    frame_record, LambdaSnapshot, ShardedLambdaStore, WalRecord, WalRecovery,
};
use lorentz_core::store::PublishBatch;
use lorentz_core::{
    RecommendEngine, RecommendRequest, SatisfactionSignal, ShardedPredictionStore, SignalWal,
    StoreOnly, TrainedLorentz,
};
use lorentz_fault::fail_point;
use lorentz_types::{LorentzError, ResourcePath};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One accepted request waiting in the queue.
struct Job {
    request: ServeRequest,
    submitted_at: Instant,
    deadline_at: Option<Instant>,
    degraded: bool,
}

/// One message on the λ-writer's channel.
enum FeedbackMsg {
    /// Apply one satisfaction signal, publish its λ delta, and WAL-append
    /// the delta-framed record.
    Signal(SatisfactionSignal),
    /// Barrier: acknowledged only after every earlier signal on the
    /// channel has been applied and published.
    Flush(Sender<()>),
}

/// Mutex-guarded engine state: the bounded queue, the intake flag, the
/// feedback intake handle, and the request ledger.
struct State {
    queue: VecDeque<Job>,
    intake_open: bool,
    /// Feedback intake: present while the engine accepts signals, taken
    /// (and thereby closed) by shutdown so the λ-writer drains and exits.
    feedback_tx: Option<Sender<FeedbackMsg>>,
    stats: EngineStats,
}

/// Worker-restart accounting, separate from the hot `State` lock.
struct Supervisor {
    /// Restarts consumed so far (capped by `config.max_worker_restarts`).
    restarts_used: u32,
    /// Next worker thread index, for unique thread names.
    next_id: usize,
}

/// Everything the workers share with the submit side.
struct Shared {
    deployment: Arc<TrainedLorentz>,
    /// The hot-swap store: seeded from the deployment's published store at
    /// startup, split across `config.shards` per-shard snapshot slots,
    /// re-published through [`ServingEngine::publish`] with zero reader
    /// downtime.
    store: ShardedPredictionStore,
    /// The live λ-state: seeded from the deployment's batch personalizer,
    /// sharded by customer, advanced by the λ-writer as feedback arrives
    /// (each delta swapping only its owning shard), read by every worker
    /// through a per-request shard snapshot.
    lambdas: ShardedLambdaStore,
    config: ServeConfig,
    state: Mutex<State>,
    work: Condvar,
    /// Live worker handles. Replacement workers spawned by the supervisor
    /// land here too, so shutdown joins everything ever spawned.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The λ-writer thread, joined at shutdown after its channel closes.
    feedback_worker: Mutex<Option<JoinHandle<()>>>,
    supervisor: Mutex<Supervisor>,
    /// Fanout point for TCP replication: the λ-writer broadcasts each
    /// framed WAL record here; [`crate::serve_replication`] subscribes
    /// follower outboxes. Present (but idle) even without a WAL.
    replication: Arc<ReplicationHub>,
    /// The WAL path, kept so the replication listener can replay it for
    /// resuming followers. `None` for engines without durability.
    wal_path: Option<PathBuf>,
}

/// How a worker's main loop ended.
#[derive(PartialEq, Eq)]
enum WorkerExit {
    /// Queue empty and intake closed: normal drain.
    Drained,
    /// The handler panicked. The request was answered and the ledger
    /// updated; the thread exits so the supervisor can decide on a
    /// replacement.
    Panicked,
}

/// A long-running concurrent serving engine: a bounded submission queue in
/// front of a worker pool, serving live-model recommendations with a
/// store-lookup degraded mode, over hot-swappable prediction-store
/// snapshots. See the crate docs for the full contract.
pub struct ServingEngine {
    shared: Arc<Shared>,
}

impl ServingEngine {
    /// Spawns the worker pool and returns the engine plus the response
    /// channel. Every accepted request produces exactly one
    /// [`ServeResponse`] on the channel; the channel closes once the engine
    /// is drained (or dropped) and all workers have exited.
    ///
    /// The hot-swap store is seeded with a copy of `deployment`'s published
    /// store, so degraded-mode lookups answer from the same world as the
    /// live model until the first [`ServingEngine::publish`].
    ///
    /// # Errors
    /// [`EngineError::SpawnFailed`] when the OS refuses a worker thread;
    /// workers spawned before the failure are shut down first, so nothing
    /// leaks.
    pub fn start(
        deployment: Arc<TrainedLorentz>,
        config: ServeConfig,
    ) -> Result<(Self, Receiver<ServeResponse>), EngineError> {
        Self::start_inner(deployment, config, None, None)
    }

    /// Like [`ServingEngine::start`], but with feedback durability: every
    /// accepted satisfaction signal is appended to the CRC-framed WAL at
    /// `wal_path` before it is applied, and signals already in the WAL
    /// (e.g. from a run that was killed mid-stream) are replayed into the
    /// λ-table before the first worker starts, so a restart resumes from
    /// the last durable signal rather than the batch-trained λ.
    ///
    /// # Errors
    /// [`EngineError::Wal`] when the WAL cannot be opened or replayed;
    /// [`EngineError::SpawnFailed`] as for [`ServingEngine::start`].
    pub fn start_with_wal(
        deployment: Arc<TrainedLorentz>,
        config: ServeConfig,
        wal_path: impl AsRef<Path>,
    ) -> Result<(Self, Receiver<ServeResponse>), EngineError> {
        let (wal, recovery) = SignalWal::open(wal_path)?;
        Self::start_inner(deployment, config, Some((wal, recovery)), None)
    }

    /// Like [`ServingEngine::start_with_wal`], but for a standby taking
    /// over leadership: a fresh leader term is minted strictly above both
    /// the highest term recovered from the WAL and `observed_term` (the
    /// highest term the promoting follower saw on the wire), and appended
    /// to the WAL as a term marker before any feedback is accepted. Every
    /// replication handshake then carries the new term, which is what
    /// fences the old leader when the partition heals.
    ///
    /// # Errors
    /// As [`ServingEngine::start_with_wal`].
    pub fn start_promoted(
        deployment: Arc<TrainedLorentz>,
        config: ServeConfig,
        wal_path: impl AsRef<Path>,
        observed_term: u64,
    ) -> Result<(Self, Receiver<ServeResponse>), EngineError> {
        let (wal, recovery) = SignalWal::open(wal_path)?;
        Self::start_inner(
            deployment,
            config,
            Some((wal, recovery)),
            Some(observed_term),
        )
    }

    fn start_inner(
        deployment: Arc<TrainedLorentz>,
        config: ServeConfig,
        wal: Option<(SignalWal, WalRecovery)>,
        promotion: Option<u64>,
    ) -> Result<(Self, Receiver<ServeResponse>), EngineError> {
        let (tx, rx) = channel();
        let (feedback_tx, feedback_rx) = channel();
        let worker_count = config.workers.max(1);
        let lambdas = ShardedLambdaStore::new(deployment.personalizer().clone(), config.shards)
            .map_err(EngineError::Config)?;
        let (mut wal, recovered, last_epoch, last_term) = match wal {
            Some((wal, recovery)) => (
                Some(wal),
                recovery.signals,
                recovery.last_epoch,
                recovery.last_term,
            ),
            None => (None, Vec::new(), 0, 0),
        };
        if !recovered.is_empty() {
            lambdas.apply_signals(&recovered);
            lambdas.publish();
        }
        // Adopt the on-disk epoch numbering so new appends continue past
        // records already framed (replay publishes one merged epoch, which
        // may lag the per-signal epochs the crashed leader wrote).
        lambdas.restore_epoch(last_epoch);
        // Term lifecycle: a fresh lineage mints term 1; a same-lineage
        // restart resumes the recovered term *unchanged* (re-minting would
        // collide with a standby that promoted to recovered+1 while this
        // node was down — only promotions may raise the term); a promotion
        // mints strictly above everything recovered or observed. Minted
        // terms are made durable as a WAL marker before the λ-writer (and
        // therefore any feedback append) starts.
        let term = match promotion {
            Some(observed) => last_term.max(observed) + 1,
            None => last_term.max(1),
        };
        if term != last_term {
            if let Some(wal) = wal.as_mut() {
                wal.append_term(term).map_err(EngineError::Wal)?;
            }
        }
        let replication = Arc::new(ReplicationHub::new());
        replication.set_last_epoch(last_epoch);
        replication.set_term(term);
        let wal_path = wal.as_ref().map(|w| w.path().to_path_buf());
        let shared = Arc::new(Shared {
            store: ShardedPredictionStore::from_store(deployment.store(), config.shards)
                .map_err(EngineError::Config)?,
            lambdas,
            deployment,
            config,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                intake_open: true,
                feedback_tx: Some(feedback_tx),
                stats: EngineStats::default(),
            }),
            work: Condvar::new(),
            workers: Mutex::new(Vec::with_capacity(worker_count)),
            feedback_worker: Mutex::new(None),
            supervisor: Mutex::new(Supervisor {
                restarts_used: 0,
                next_id: worker_count,
            }),
            replication,
            wal_path,
        });
        let engine = Self {
            shared: Arc::clone(&shared),
        };
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lorentz-serve-lambda".to_string())
                .spawn(move || feedback_loop(&shared, &feedback_rx, wal))
                .map_err(|source| EngineError::SpawnFailed {
                    name: "lorentz-serve-lambda".to_string(),
                    source,
                })?
        };
        *shared
            .feedback_worker
            .lock()
            .expect("engine feedback worker poisoned") = Some(writer);
        for i in 0..worker_count {
            match spawn_worker(&shared, &tx, i, Duration::ZERO) {
                Ok(handle) => shared
                    .workers
                    .lock()
                    .expect("engine workers poisoned")
                    .push(handle),
                Err(source) => {
                    // `engine` drops here, which closes intake and joins
                    // the workers already running.
                    return Err(EngineError::SpawnFailed {
                        name: format!("lorentz-serve-{i}"),
                        source,
                    });
                }
            }
        }
        Ok((engine, rx))
    }

    /// Offers one request to the engine. Admission is O(1) under the state
    /// lock: a full queue or closed intake rejects immediately
    /// (backpressure), otherwise the request is queued — in degraded mode
    /// if the queue is already past the configured threshold — and a worker
    /// is woken.
    ///
    /// # Errors
    /// [`ServeError::Saturated`] when the queue is at capacity,
    /// [`ServeError::Draining`] after [`ServingEngine::drain`] has begun.
    /// Rejected requests produce no [`ServeResponse`].
    pub fn submit(&self, request: ServeRequest) -> Result<(), ServeError> {
        let now = Instant::now();
        let mut state = self.shared.state.lock().expect("engine state poisoned");
        state.stats.submitted += 1;
        obs::ENGINE_SUBMITTED.inc();
        if !state.intake_open {
            state.stats.rejected += 1;
            obs::ENGINE_REJECTED.inc();
            return Err(ServeError::Draining);
        }
        let depth = state.queue.len();
        if depth >= self.shared.config.queue_capacity {
            state.stats.rejected += 1;
            obs::ENGINE_REJECTED.inc();
            return Err(ServeError::Saturated(depth));
        }
        let degraded = self
            .shared
            .config
            .degraded_threshold
            .is_some_and(|threshold| depth >= threshold);
        if degraded {
            state.stats.degraded += 1;
            obs::ENGINE_DEGRADED.inc();
        }
        state.stats.accepted += 1;
        obs::ENGINE_ACCEPTED.inc();
        let deadline_at = request
            .deadline
            .or(self.shared.config.default_deadline)
            .map(|d| now + d);
        state.queue.push_back(Job {
            request,
            submitted_at: now,
            deadline_at,
            degraded,
        });
        obs::ENGINE_QUEUE_DEPTH.set(state.queue.len() as i64);
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Offers one satisfaction signal to the λ-writer. Admission mirrors
    /// [`ServingEngine::submit`]: a draining engine rejects the signal,
    /// otherwise it is queued for the dedicated writer thread, which
    /// appends it to the WAL (when configured), applies the
    /// message-propagation round, and hot-publishes a fresh λ snapshot —
    /// all without pausing the worker pool. Subsequent recommendations for
    /// the affected paths shift by `2^λ` with no model reload.
    ///
    /// # Errors
    /// [`ServeError::Fenced`] once a higher-term leader has been observed
    /// (accepting the signal would fork the WAL lineage);
    /// [`ServeError::Draining`] after [`ServingEngine::drain`] has begun.
    pub fn submit_feedback(&self, signal: SatisfactionSignal) -> Result<(), ServeError> {
        if let Some(observed) = self.shared.replication.fenced_by() {
            obs::ENGINE_REPLICATION_FENCED.inc();
            return Err(ServeError::Fenced {
                term: self.shared.replication.term(),
                observed,
            });
        }
        let mut state = self.shared.state.lock().expect("engine state poisoned");
        let Some(tx) = state.feedback_tx.as_ref().filter(|_| state.intake_open) else {
            return Err(ServeError::Draining);
        };
        // The send cannot fail while we hold the state lock: the λ-writer
        // only exits after shutdown takes `feedback_tx` under this lock.
        tx.send(FeedbackMsg::Signal(signal))
            .expect("lambda writer exited while intake open");
        state.stats.feedback_accepted += 1;
        obs::ENGINE_FEEDBACK_ACCEPTED.inc();
        Ok(())
    }

    /// Barrier: returns once every signal accepted before this call has
    /// been applied and published. Callers that need read-your-writes
    /// ordering (e.g. a feedback line followed by a recommend in the same
    /// stream) flush between the two.
    pub fn flush_feedback(&self) {
        let tx = {
            let state = self.shared.state.lock().expect("engine state poisoned");
            state.feedback_tx.clone()
        };
        let Some(tx) = tx else { return };
        let (ack_tx, ack_rx) = channel();
        if tx.send(FeedbackMsg::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// The current published λ snapshot (a cheap `Arc` clone). Only
    /// meaningful for single-shard engines (the default); sharded engines
    /// serve per-customer shards — use
    /// [`ServingEngine::lambda_snapshot_for`].
    pub fn lambda_snapshot(&self) -> Arc<LambdaSnapshot> {
        debug_assert_eq!(
            self.shared.lambdas.shards(),
            1,
            "lambda_snapshot() on a sharded engine; use lambda_snapshot_for(path)"
        );
        self.shared
            .lambdas
            .snapshot_shard(0)
            .expect("shard 0 always exists")
    }

    /// The current published λ snapshot covering `path`'s customer (a
    /// cheap `Arc` clone of the owning shard's epoch).
    pub fn lambda_snapshot_for(&self, path: &ResourcePath) -> Arc<LambdaSnapshot> {
        self.shared.lambdas.snapshot_for(path)
    }

    /// How many shards the engine's store and λ-state are split across.
    pub fn shards(&self) -> usize {
        self.shared.store.shards()
    }

    /// The currently published λ snapshot version.
    pub fn lambda_version(&self) -> u64 {
        self.shared.lambdas.version()
    }

    /// Followers currently subscribed to this engine's replication hub.
    pub fn replication_followers(&self) -> usize {
        self.shared.replication.subscriber_count()
    }

    /// The leader term this engine serves under (minted or resumed at
    /// start; see [`ServingEngine::start_promoted`]).
    pub fn leader_term(&self) -> u64 {
        self.shared.replication.term()
    }

    /// The higher term that fenced this leader, if any. A fenced leader
    /// keeps serving reads but refuses feedback (its WAL lineage is
    /// frozen) and refuses new replication subscriptions.
    pub fn fenced_by(&self) -> Option<u64> {
        self.shared.replication.fenced_by()
    }

    /// Whether a higher-term leader has been observed.
    pub fn is_fenced(&self) -> bool {
        self.fenced_by().is_some()
    }

    /// The engine's replication fanout hub (shared with the listener).
    pub(crate) fn replication_hub(&self) -> Arc<ReplicationHub> {
        Arc::clone(&self.shared.replication)
    }

    /// The WAL path the engine appends to, when durability is configured.
    pub(crate) fn wal_path(&self) -> Option<PathBuf> {
        self.shared.wal_path.clone()
    }

    /// Atomically re-publishes the degraded-path store with zero reader
    /// downtime: in-flight lookups finish on their captured snapshot,
    /// subsequent lookups see the new version. Returns the new store
    /// version.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for invalid batches; the
    /// previous snapshot keeps serving.
    pub fn publish(&self, batch: PublishBatch) -> Result<u64, LorentzError> {
        self.shared.store.publish(batch)
    }

    /// The hot-swap store's current version.
    pub fn store_version(&self) -> u64 {
        self.shared.store.version()
    }

    /// Requests currently queued (accepted, not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .queue
            .len()
    }

    /// A point-in-time copy of the request ledger. Only after
    /// [`ServingEngine::drain`] are the [`EngineStats`] invariants exact.
    pub fn stats(&self) -> EngineStats {
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .stats
    }

    /// Worker restarts the supervisor has performed so far.
    pub fn worker_restarts(&self) -> u32 {
        self.shared
            .supervisor
            .lock()
            .expect("engine supervisor poisoned")
            .restarts_used
    }

    /// Gracefully shuts down: closes intake (new submissions are rejected
    /// with [`ServeError::Draining`]), lets the workers finish every queued
    /// request, joins them, and returns the final ledger — for which
    /// `submitted = accepted + rejected` and `accepted = answered` hold
    /// exactly, panics included (a panicked request is an answered
    /// request).
    pub fn drain(self) -> EngineStats {
        self.shutdown();
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .stats
    }

    /// Closes intake (requests and feedback), wakes every worker, joins
    /// the λ-writer after it drains its channel, then joins the workers —
    /// looping because the supervisor may spawn replacements while earlier
    /// handles are being joined. Idempotent.
    fn shutdown(&self) {
        let feedback_tx = {
            let mut state = self.shared.state.lock().expect("engine state poisoned");
            state.intake_open = false;
            state.feedback_tx.take()
        };
        self.shared.work.notify_all();
        // Dropping the last sender closes the channel; the λ-writer
        // finishes every queued signal first, so after the join the
        // `feedback_accepted = feedback_applied` invariant holds.
        drop(feedback_tx);
        if let Some(writer) = self
            .shared
            .feedback_worker
            .lock()
            .expect("engine feedback worker poisoned")
            .take()
        {
            let _ = writer.join();
        }
        loop {
            let handles: Vec<JoinHandle<()>> =
                std::mem::take(&mut *self.shared.workers.lock().expect("engine workers poisoned"));
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ServingEngine {
    /// Dropping the engine drains it: queued work is finished, not lost.
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns one worker thread. Replacement workers pass a nonzero
/// `initial_delay` (the supervisor's backoff), slept before the first pop.
fn spawn_worker(
    shared: &Arc<Shared>,
    tx: &Sender<ServeResponse>,
    index: usize,
    initial_delay: Duration,
) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let tx = tx.clone();
    std::thread::Builder::new()
        .name(format!("lorentz-serve-{index}"))
        .spawn(move || {
            if !initial_delay.is_zero() {
                std::thread::sleep(initial_delay);
            }
            if worker_loop(&shared, &tx) == WorkerExit::Panicked {
                maybe_restart(&shared, &tx);
            }
        })
}

/// Decides whether a crashed worker gets a replacement: only while there is
/// (or can be) work left, and only within the restart cap. The replacement
/// sleeps an exponential backoff before serving, so a poison-pill request
/// stream can't spin the pool.
fn maybe_restart(shared: &Arc<Shared>, tx: &Sender<ServeResponse>) {
    let mut supervisor = shared
        .supervisor
        .lock()
        .expect("engine supervisor poisoned");
    let work_pending = {
        let state = shared.state.lock().expect("engine state poisoned");
        state.intake_open || !state.queue.is_empty()
    };
    if !work_pending || supervisor.restarts_used >= shared.config.max_worker_restarts {
        return;
    }
    let backoff = shared
        .config
        .restart_backoff
        .saturating_mul(1u32 << supervisor.restarts_used.min(16))
        .min(Duration::from_secs(1));
    supervisor.restarts_used += 1;
    let index = supervisor.next_id;
    supervisor.next_id += 1;
    drop(supervisor);
    if let Ok(handle) = spawn_worker(shared, tx, index, backoff) {
        obs::ENGINE_WORKER_RESTARTS.inc();
        shared
            .workers
            .lock()
            .expect("engine workers poisoned")
            .push(handle);
    }
}

/// Worker body: pop jobs until the queue is empty *and* intake is closed,
/// serving each and emitting exactly one response per job. A panicking
/// handler is caught at this boundary: the request is answered with
/// [`ServeError::Panicked`], the ledger is updated, and the loop exits with
/// [`WorkerExit::Panicked`] so the supervisor can replace the thread.
fn worker_loop(shared: &Shared, tx: &Sender<ServeResponse>) -> WorkerExit {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("engine state poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    obs::ENGINE_QUEUE_DEPTH.set(state.queue.len() as i64);
                    break job;
                }
                if !state.intake_open {
                    return WorkerExit::Drained;
                }
                state = shared.work.wait(state).expect("engine state poisoned");
            }
        };
        // Everything needed to answer the request survives outside the
        // closure, because the Job moves in and a panic destroys it.
        let id = job.request.id;
        let degraded = job.degraded;
        let submitted_at = job.submitted_at;
        let outcome = catch_unwind(AssertUnwindSafe(|| serve_job(shared, job)));
        match outcome {
            Ok((response, timed_out)) => {
                {
                    let mut state = shared.state.lock().expect("engine state poisoned");
                    state.stats.answered += 1;
                    if timed_out {
                        state.stats.timed_out += 1;
                    }
                }
                obs::ENGINE_ANSWERED.inc();
                // The receiver may have been dropped by an impatient
                // caller; the answer ledger above is still the source of
                // truth.
                let _ = tx.send(response);
            }
            Err(payload) => {
                {
                    let mut state = shared.state.lock().expect("engine state poisoned");
                    state.stats.answered += 1;
                    state.stats.panicked += 1;
                }
                obs::ENGINE_ANSWERED.inc();
                obs::ENGINE_WORKER_PANICS.inc();
                let latency_ns =
                    u64::try_from(submitted_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                obs::ENGINE_E2E_SPAN_NS.record(latency_ns);
                let _ = tx.send(ServeResponse {
                    id,
                    result: Err(ServeError::Panicked(panic_message(payload.as_ref()))),
                    degraded,
                    latency_ns,
                });
                return WorkerExit::Panicked;
            }
        }
    }
}

/// The λ-writer body: drains the feedback channel in order, WAL-appending
/// (when durability is configured), applying, and hot-publishing each
/// signal. Exits when every sender is gone — shutdown drops the intake
/// handle only after closing admission, so nothing accepted is lost.
fn feedback_loop(shared: &Shared, rx: &Receiver<FeedbackMsg>, mut wal: Option<SignalWal>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            FeedbackMsg::Signal(signal) => {
                shared.lambdas.apply_signal(&signal);
                // Publish only the owning shard, at a globally minted epoch
                // (so the WAL frames stay strictly increasing).
                let delta = shared.lambdas.publish_delta_for(&signal.path);
                let epoch = delta.epoch;
                // Frame the epoch-stamped record once; the same bytes go
                // to the WAL and to every TCP follower, so the replicated
                // stream is byte-identical to the on-disk log. A failed
                // append loses durability for this signal but not
                // liveness: the epoch is already published, and the
                // ledger still closes.
                if let Ok(frame) = frame_record(&WalRecord { signal, delta }) {
                    if let Some(wal) = wal.as_mut() {
                        let _ = wal.append_frame(&frame);
                    }
                    shared.replication.broadcast(epoch, frame);
                }
                {
                    let mut state = shared.state.lock().expect("engine state poisoned");
                    state.stats.feedback_applied += 1;
                }
                obs::ENGINE_FEEDBACK_APPLIED.inc();
            }
            FeedbackMsg::Flush(ack) => {
                // The sender may have stopped waiting; the barrier already
                // did its job by ordering behind earlier signals.
                let _ = ack.send(());
            }
        }
    }
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Serves one dequeued job: deadline check, then the degraded store path or
/// the live model. Returns the response and whether the deadline expired.
fn serve_job(shared: &Shared, job: Job) -> (ServeResponse, bool) {
    fail_point!("serve.worker.panic");
    let Job {
        request,
        submitted_at,
        deadline_at,
        degraded,
    } = job;
    let mut timed_out = false;
    let result = if deadline_at.is_some_and(|deadline| Instant::now() >= deadline) {
        timed_out = true;
        obs::ENGINE_TIMED_OUT.inc();
        Err(ServeError::DeadlineExceeded(
            u64::try_from(submitted_at.elapsed().as_nanos()).unwrap_or(u64::MAX),
        ))
    } else {
        let borrowed = RecommendRequest {
            profile: request.profile.iter().map(|v| v.as_deref()).collect(),
            offering: request.offering,
            path: request.path,
        };
        // Pin one λ snapshot (the shard owning this request's customer)
        // for the whole request: a feedback publish landing mid-serve
        // changes later requests, never this one.
        let lambdas = shared.lambdas.snapshot_for(&request.path);
        let served = if degraded {
            // Serve from the hot-swap snapshot: the per-shard Arc clones
            // pin one consistent store world for this request, publishes
            // land in later snapshots.
            let snapshot = shared.store.snapshot();
            StoreOnly::with_probe_and_lambdas(&shared.deployment, &snapshot, &lambdas)
                .recommend_one(&borrowed)
        } else {
            shared
                .deployment
                .live_engine_with_lambdas(shared.config.kind, &lambdas)
                .recommend_one(&borrowed)
        };
        served.map_err(ServeError::Recommend)
    };
    let latency_ns = u64::try_from(submitted_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
    obs::ENGINE_E2E_SPAN_NS.record(latency_ns);
    (
        ServeResponse {
            id: request.id,
            result,
            degraded,
            latency_ns,
        },
        timed_out,
    )
}
