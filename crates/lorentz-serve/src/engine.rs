//! The worker-pool request engine over hot-swappable store snapshots.

use crate::types::{
    EngineError, EngineStats, ServeConfig, ServeError, ServeRequest, ServeResponse,
};
use lorentz_core::obs;
use lorentz_core::store::PublishBatch;
use lorentz_core::{RecommendEngine, RecommendRequest, SharedPredictionStore, TrainedLorentz};
use lorentz_fault::fail_point;
use lorentz_types::LorentzError;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One accepted request waiting in the queue.
struct Job {
    request: ServeRequest,
    submitted_at: Instant,
    deadline_at: Option<Instant>,
    degraded: bool,
}

/// Mutex-guarded engine state: the bounded queue, the intake flag, and the
/// request ledger.
struct State {
    queue: VecDeque<Job>,
    intake_open: bool,
    stats: EngineStats,
}

/// Worker-restart accounting, separate from the hot `State` lock.
struct Supervisor {
    /// Restarts consumed so far (capped by `config.max_worker_restarts`).
    restarts_used: u32,
    /// Next worker thread index, for unique thread names.
    next_id: usize,
}

/// Everything the workers share with the submit side.
struct Shared {
    deployment: Arc<TrainedLorentz>,
    /// The hot-swap store: seeded from the deployment's published store at
    /// startup, re-published through [`ServingEngine::publish`] with zero
    /// reader downtime.
    store: SharedPredictionStore,
    config: ServeConfig,
    state: Mutex<State>,
    work: Condvar,
    /// Live worker handles. Replacement workers spawned by the supervisor
    /// land here too, so shutdown joins everything ever spawned.
    workers: Mutex<Vec<JoinHandle<()>>>,
    supervisor: Mutex<Supervisor>,
}

/// How a worker's main loop ended.
#[derive(PartialEq, Eq)]
enum WorkerExit {
    /// Queue empty and intake closed: normal drain.
    Drained,
    /// The handler panicked. The request was answered and the ledger
    /// updated; the thread exits so the supervisor can decide on a
    /// replacement.
    Panicked,
}

/// A long-running concurrent serving engine: a bounded submission queue in
/// front of a worker pool, serving live-model recommendations with a
/// store-lookup degraded mode, over hot-swappable prediction-store
/// snapshots. See the crate docs for the full contract.
pub struct ServingEngine {
    shared: Arc<Shared>,
}

impl ServingEngine {
    /// Spawns the worker pool and returns the engine plus the response
    /// channel. Every accepted request produces exactly one
    /// [`ServeResponse`] on the channel; the channel closes once the engine
    /// is drained (or dropped) and all workers have exited.
    ///
    /// The hot-swap store is seeded with a copy of `deployment`'s published
    /// store, so degraded-mode lookups answer from the same world as the
    /// live model until the first [`ServingEngine::publish`].
    ///
    /// # Errors
    /// [`EngineError::SpawnFailed`] when the OS refuses a worker thread;
    /// workers spawned before the failure are shut down first, so nothing
    /// leaks.
    pub fn start(
        deployment: Arc<TrainedLorentz>,
        config: ServeConfig,
    ) -> Result<(Self, Receiver<ServeResponse>), EngineError> {
        let (tx, rx) = channel();
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            store: SharedPredictionStore::from_store(deployment.store().clone()),
            deployment,
            config,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                intake_open: true,
                stats: EngineStats::default(),
            }),
            work: Condvar::new(),
            workers: Mutex::new(Vec::with_capacity(worker_count)),
            supervisor: Mutex::new(Supervisor {
                restarts_used: 0,
                next_id: worker_count,
            }),
        });
        let engine = Self {
            shared: Arc::clone(&shared),
        };
        for i in 0..worker_count {
            match spawn_worker(&shared, &tx, i, Duration::ZERO) {
                Ok(handle) => shared
                    .workers
                    .lock()
                    .expect("engine workers poisoned")
                    .push(handle),
                Err(source) => {
                    // `engine` drops here, which closes intake and joins
                    // the workers already running.
                    return Err(EngineError::SpawnFailed {
                        name: format!("lorentz-serve-{i}"),
                        source,
                    });
                }
            }
        }
        Ok((engine, rx))
    }

    /// Offers one request to the engine. Admission is O(1) under the state
    /// lock: a full queue or closed intake rejects immediately
    /// (backpressure), otherwise the request is queued — in degraded mode
    /// if the queue is already past the configured threshold — and a worker
    /// is woken.
    ///
    /// # Errors
    /// [`ServeError::Saturated`] when the queue is at capacity,
    /// [`ServeError::Draining`] after [`ServingEngine::drain`] has begun.
    /// Rejected requests produce no [`ServeResponse`].
    pub fn submit(&self, request: ServeRequest) -> Result<(), ServeError> {
        let now = Instant::now();
        let mut state = self.shared.state.lock().expect("engine state poisoned");
        state.stats.submitted += 1;
        obs::ENGINE_SUBMITTED.inc();
        if !state.intake_open {
            state.stats.rejected += 1;
            obs::ENGINE_REJECTED.inc();
            return Err(ServeError::Draining);
        }
        let depth = state.queue.len();
        if depth >= self.shared.config.queue_capacity {
            state.stats.rejected += 1;
            obs::ENGINE_REJECTED.inc();
            return Err(ServeError::Saturated(depth));
        }
        let degraded = self
            .shared
            .config
            .degraded_threshold
            .is_some_and(|threshold| depth >= threshold);
        if degraded {
            state.stats.degraded += 1;
            obs::ENGINE_DEGRADED.inc();
        }
        state.stats.accepted += 1;
        obs::ENGINE_ACCEPTED.inc();
        let deadline_at = request
            .deadline
            .or(self.shared.config.default_deadline)
            .map(|d| now + d);
        state.queue.push_back(Job {
            request,
            submitted_at: now,
            deadline_at,
            degraded,
        });
        obs::ENGINE_QUEUE_DEPTH.set(state.queue.len() as i64);
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Atomically re-publishes the degraded-path store with zero reader
    /// downtime: in-flight lookups finish on their captured snapshot,
    /// subsequent lookups see the new version. Returns the new store
    /// version.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for invalid batches; the
    /// previous snapshot keeps serving.
    pub fn publish(&self, batch: PublishBatch) -> Result<u64, LorentzError> {
        self.shared.store.publish(batch)
    }

    /// The hot-swap store's current version.
    pub fn store_version(&self) -> u64 {
        self.shared.store.version()
    }

    /// Requests currently queued (accepted, not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .queue
            .len()
    }

    /// A point-in-time copy of the request ledger. Only after
    /// [`ServingEngine::drain`] are the [`EngineStats`] invariants exact.
    pub fn stats(&self) -> EngineStats {
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .stats
    }

    /// Worker restarts the supervisor has performed so far.
    pub fn worker_restarts(&self) -> u32 {
        self.shared
            .supervisor
            .lock()
            .expect("engine supervisor poisoned")
            .restarts_used
    }

    /// Gracefully shuts down: closes intake (new submissions are rejected
    /// with [`ServeError::Draining`]), lets the workers finish every queued
    /// request, joins them, and returns the final ledger — for which
    /// `submitted = accepted + rejected` and `accepted = answered` hold
    /// exactly, panics included (a panicked request is an answered
    /// request).
    pub fn drain(self) -> EngineStats {
        self.shutdown();
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .stats
    }

    /// Closes intake, wakes every worker, and joins them — looping because
    /// the supervisor may spawn replacements while earlier handles are
    /// being joined. Idempotent.
    fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("engine state poisoned");
            state.intake_open = false;
        }
        self.shared.work.notify_all();
        loop {
            let handles: Vec<JoinHandle<()>> =
                std::mem::take(&mut *self.shared.workers.lock().expect("engine workers poisoned"));
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ServingEngine {
    /// Dropping the engine drains it: queued work is finished, not lost.
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns one worker thread. Replacement workers pass a nonzero
/// `initial_delay` (the supervisor's backoff), slept before the first pop.
fn spawn_worker(
    shared: &Arc<Shared>,
    tx: &Sender<ServeResponse>,
    index: usize,
    initial_delay: Duration,
) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let tx = tx.clone();
    std::thread::Builder::new()
        .name(format!("lorentz-serve-{index}"))
        .spawn(move || {
            if !initial_delay.is_zero() {
                std::thread::sleep(initial_delay);
            }
            if worker_loop(&shared, &tx) == WorkerExit::Panicked {
                maybe_restart(&shared, &tx);
            }
        })
}

/// Decides whether a crashed worker gets a replacement: only while there is
/// (or can be) work left, and only within the restart cap. The replacement
/// sleeps an exponential backoff before serving, so a poison-pill request
/// stream can't spin the pool.
fn maybe_restart(shared: &Arc<Shared>, tx: &Sender<ServeResponse>) {
    let mut supervisor = shared
        .supervisor
        .lock()
        .expect("engine supervisor poisoned");
    let work_pending = {
        let state = shared.state.lock().expect("engine state poisoned");
        state.intake_open || !state.queue.is_empty()
    };
    if !work_pending || supervisor.restarts_used >= shared.config.max_worker_restarts {
        return;
    }
    let backoff = shared
        .config
        .restart_backoff
        .saturating_mul(1u32 << supervisor.restarts_used.min(16))
        .min(Duration::from_secs(1));
    supervisor.restarts_used += 1;
    let index = supervisor.next_id;
    supervisor.next_id += 1;
    drop(supervisor);
    if let Ok(handle) = spawn_worker(shared, tx, index, backoff) {
        obs::ENGINE_WORKER_RESTARTS.inc();
        shared
            .workers
            .lock()
            .expect("engine workers poisoned")
            .push(handle);
    }
}

/// Worker body: pop jobs until the queue is empty *and* intake is closed,
/// serving each and emitting exactly one response per job. A panicking
/// handler is caught at this boundary: the request is answered with
/// [`ServeError::Panicked`], the ledger is updated, and the loop exits with
/// [`WorkerExit::Panicked`] so the supervisor can replace the thread.
fn worker_loop(shared: &Shared, tx: &Sender<ServeResponse>) -> WorkerExit {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("engine state poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    obs::ENGINE_QUEUE_DEPTH.set(state.queue.len() as i64);
                    break job;
                }
                if !state.intake_open {
                    return WorkerExit::Drained;
                }
                state = shared.work.wait(state).expect("engine state poisoned");
            }
        };
        // Everything needed to answer the request survives outside the
        // closure, because the Job moves in and a panic destroys it.
        let id = job.request.id;
        let degraded = job.degraded;
        let submitted_at = job.submitted_at;
        let outcome = catch_unwind(AssertUnwindSafe(|| serve_job(shared, job)));
        match outcome {
            Ok((response, timed_out)) => {
                {
                    let mut state = shared.state.lock().expect("engine state poisoned");
                    state.stats.answered += 1;
                    if timed_out {
                        state.stats.timed_out += 1;
                    }
                }
                obs::ENGINE_ANSWERED.inc();
                // The receiver may have been dropped by an impatient
                // caller; the answer ledger above is still the source of
                // truth.
                let _ = tx.send(response);
            }
            Err(payload) => {
                {
                    let mut state = shared.state.lock().expect("engine state poisoned");
                    state.stats.answered += 1;
                    state.stats.panicked += 1;
                }
                obs::ENGINE_ANSWERED.inc();
                obs::ENGINE_WORKER_PANICS.inc();
                let latency_ns =
                    u64::try_from(submitted_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
                obs::ENGINE_E2E_SPAN_NS.record(latency_ns);
                let _ = tx.send(ServeResponse {
                    id,
                    result: Err(ServeError::Panicked(panic_message(payload.as_ref()))),
                    degraded,
                    latency_ns,
                });
                return WorkerExit::Panicked;
            }
        }
    }
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Serves one dequeued job: deadline check, then the degraded store path or
/// the live model. Returns the response and whether the deadline expired.
fn serve_job(shared: &Shared, job: Job) -> (ServeResponse, bool) {
    fail_point!("serve.worker.panic");
    let Job {
        request,
        submitted_at,
        deadline_at,
        degraded,
    } = job;
    let mut timed_out = false;
    let result = if deadline_at.is_some_and(|deadline| Instant::now() >= deadline) {
        timed_out = true;
        obs::ENGINE_TIMED_OUT.inc();
        Err(ServeError::DeadlineExceeded(
            u64::try_from(submitted_at.elapsed().as_nanos()).unwrap_or(u64::MAX),
        ))
    } else {
        let borrowed = RecommendRequest {
            profile: request.profile.iter().map(|v| v.as_deref()).collect(),
            offering: request.offering,
            path: request.path,
        };
        let served = if degraded {
            // Serve from the hot-swap snapshot: the Arc clone pins one
            // consistent store version for this request, publishes land in
            // later snapshots.
            let snapshot = shared.store.snapshot();
            shared
                .deployment
                .store_engine_with(&snapshot)
                .recommend_one(&borrowed)
        } else {
            shared
                .deployment
                .live_engine(shared.config.kind)
                .recommend_one(&borrowed)
        };
        served.map_err(ServeError::Recommend)
    };
    let latency_ns = u64::try_from(submitted_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
    obs::ENGINE_E2E_SPAN_NS.record(latency_ns);
    (
        ServeResponse {
            id: request.id,
            result,
            degraded,
            latency_ns,
        },
        timed_out,
    )
}
