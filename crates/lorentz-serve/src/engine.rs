//! The worker-pool request engine over hot-swappable store snapshots.

use crate::types::{EngineStats, ServeConfig, ServeError, ServeRequest, ServeResponse};
use lorentz_core::obs;
use lorentz_core::store::PublishBatch;
use lorentz_core::{RecommendEngine, RecommendRequest, SharedPredictionStore, TrainedLorentz};
use lorentz_types::LorentzError;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One accepted request waiting in the queue.
struct Job {
    request: ServeRequest,
    submitted_at: Instant,
    deadline_at: Option<Instant>,
    degraded: bool,
}

/// Mutex-guarded engine state: the bounded queue, the intake flag, and the
/// request ledger.
struct State {
    queue: VecDeque<Job>,
    intake_open: bool,
    stats: EngineStats,
}

/// Everything the workers share with the submit side.
struct Shared {
    deployment: Arc<TrainedLorentz>,
    /// The hot-swap store: seeded from the deployment's published store at
    /// startup, re-published through [`ServingEngine::publish`] with zero
    /// reader downtime.
    store: SharedPredictionStore,
    config: ServeConfig,
    state: Mutex<State>,
    work: Condvar,
}

/// A long-running concurrent serving engine: a bounded submission queue in
/// front of a worker pool, serving live-model recommendations with a
/// store-lookup degraded mode, over hot-swappable prediction-store
/// snapshots. See the crate docs for the full contract.
pub struct ServingEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServingEngine {
    /// Spawns the worker pool and returns the engine plus the response
    /// channel. Every accepted request produces exactly one
    /// [`ServeResponse`] on the channel; the channel closes once the engine
    /// is drained (or dropped) and all workers have exited.
    ///
    /// The hot-swap store is seeded with a copy of `deployment`'s published
    /// store, so degraded-mode lookups answer from the same world as the
    /// live model until the first [`ServingEngine::publish`].
    pub fn start(
        deployment: Arc<TrainedLorentz>,
        config: ServeConfig,
    ) -> (Self, Receiver<ServeResponse>) {
        let (tx, rx) = channel();
        let shared = Arc::new(Shared {
            store: SharedPredictionStore::from_store(deployment.store().clone()),
            deployment,
            config,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                intake_open: true,
                stats: EngineStats::default(),
            }),
            work: Condvar::new(),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("lorentz-serve-{i}"))
                    .spawn(move || worker_loop(&shared, &tx))
                    .expect("worker thread spawn")
            })
            .collect();
        (Self { shared, workers }, rx)
    }

    /// Offers one request to the engine. Admission is O(1) under the state
    /// lock: a full queue or closed intake rejects immediately
    /// (backpressure), otherwise the request is queued — in degraded mode
    /// if the queue is already past the configured threshold — and a worker
    /// is woken.
    ///
    /// # Errors
    /// [`ServeError::Saturated`] when the queue is at capacity,
    /// [`ServeError::Draining`] after [`ServingEngine::drain`] has begun.
    /// Rejected requests produce no [`ServeResponse`].
    pub fn submit(&self, request: ServeRequest) -> Result<(), ServeError> {
        let now = Instant::now();
        let mut state = self.shared.state.lock().expect("engine state poisoned");
        state.stats.submitted += 1;
        obs::ENGINE_SUBMITTED.inc();
        if !state.intake_open {
            state.stats.rejected += 1;
            obs::ENGINE_REJECTED.inc();
            return Err(ServeError::Draining);
        }
        let depth = state.queue.len();
        if depth >= self.shared.config.queue_capacity {
            state.stats.rejected += 1;
            obs::ENGINE_REJECTED.inc();
            return Err(ServeError::Saturated(depth));
        }
        let degraded = self
            .shared
            .config
            .degraded_threshold
            .is_some_and(|threshold| depth >= threshold);
        if degraded {
            state.stats.degraded += 1;
            obs::ENGINE_DEGRADED.inc();
        }
        state.stats.accepted += 1;
        obs::ENGINE_ACCEPTED.inc();
        let deadline_at = request
            .deadline
            .or(self.shared.config.default_deadline)
            .map(|d| now + d);
        state.queue.push_back(Job {
            request,
            submitted_at: now,
            deadline_at,
            degraded,
        });
        obs::ENGINE_QUEUE_DEPTH.set(state.queue.len() as i64);
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Atomically re-publishes the degraded-path store with zero reader
    /// downtime: in-flight lookups finish on their captured snapshot,
    /// subsequent lookups see the new version. Returns the new store
    /// version.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] for invalid batches; the
    /// previous snapshot keeps serving.
    pub fn publish(&self, batch: PublishBatch) -> Result<u64, LorentzError> {
        self.shared.store.publish(batch)
    }

    /// The hot-swap store's current version.
    pub fn store_version(&self) -> u64 {
        self.shared.store.version()
    }

    /// Requests currently queued (accepted, not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .queue
            .len()
    }

    /// A point-in-time copy of the request ledger. Only after
    /// [`ServingEngine::drain`] are the [`EngineStats`] invariants exact.
    pub fn stats(&self) -> EngineStats {
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .stats
    }

    /// Gracefully shuts down: closes intake (new submissions are rejected
    /// with [`ServeError::Draining`]), lets the workers finish every queued
    /// request, joins them, and returns the final ledger — for which
    /// `submitted = accepted + rejected` and `accepted = answered` hold
    /// exactly.
    pub fn drain(mut self) -> EngineStats {
        self.shutdown();
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .stats
    }

    /// Closes intake, wakes every worker, and joins them. Idempotent.
    fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("engine state poisoned");
            state.intake_open = false;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServingEngine {
    /// Dropping the engine drains it: queued work is finished, not lost.
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Worker body: pop jobs until the queue is empty *and* intake is closed,
/// serving each and emitting exactly one response per job.
fn worker_loop(shared: &Shared, tx: &Sender<ServeResponse>) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("engine state poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    obs::ENGINE_QUEUE_DEPTH.set(state.queue.len() as i64);
                    break job;
                }
                if !state.intake_open {
                    return;
                }
                state = shared.work.wait(state).expect("engine state poisoned");
            }
        };
        let (response, timed_out) = serve_job(shared, job);
        {
            let mut state = shared.state.lock().expect("engine state poisoned");
            state.stats.answered += 1;
            if timed_out {
                state.stats.timed_out += 1;
            }
        }
        obs::ENGINE_ANSWERED.inc();
        // The receiver may have been dropped by an impatient caller; the
        // answer ledger above is still the source of truth.
        let _ = tx.send(response);
    }
}

/// Serves one dequeued job: deadline check, then the degraded store path or
/// the live model. Returns the response and whether the deadline expired.
fn serve_job(shared: &Shared, job: Job) -> (ServeResponse, bool) {
    let Job {
        request,
        submitted_at,
        deadline_at,
        degraded,
    } = job;
    let mut timed_out = false;
    let result = if deadline_at.is_some_and(|deadline| Instant::now() >= deadline) {
        timed_out = true;
        obs::ENGINE_TIMED_OUT.inc();
        Err(ServeError::DeadlineExceeded(
            u64::try_from(submitted_at.elapsed().as_nanos()).unwrap_or(u64::MAX),
        ))
    } else {
        let borrowed = RecommendRequest {
            profile: request.profile.iter().map(|v| v.as_deref()).collect(),
            offering: request.offering,
            path: request.path,
        };
        let served = if degraded {
            // Serve from the hot-swap snapshot: the Arc clone pins one
            // consistent store version for this request, publishes land in
            // later snapshots.
            let snapshot = shared.store.snapshot();
            shared
                .deployment
                .store_engine_with(&snapshot)
                .recommend_one(&borrowed)
        } else {
            shared
                .deployment
                .live_engine(shared.config.kind)
                .recommend_one(&borrowed)
        };
        served.map_err(ServeError::Recommend)
    };
    let latency_ns = u64::try_from(submitted_at.elapsed().as_nanos()).unwrap_or(u64::MAX);
    obs::ENGINE_E2E_SPAN_NS.record(latency_ns);
    (
        ServeResponse {
            id: request.id,
            result,
            degraded,
            latency_ns,
        },
        timed_out,
    )
}
