//! The NDJSON-over-TCP wire protocol: length-prefixed JSON frames.
//!
//! Every frame on the socket — in either direction — is a big-endian
//! `u32` byte length followed by exactly that many bytes of UTF-8 JSON.
//! The length prefix makes framing unambiguous under partial reads (a
//! mid-frame disconnect is distinguishable from a clean close) and lets
//! the server reject an oversized frame *before* buffering it.
//!
//! Client → server frames are one JSON object each, the same shape the
//! CLI's stdin serve mode reads:
//!
//! * a **request**: `{"id": 7, "profile": {"industry": "banking"},
//!   "offering": "general_purpose", "customer": 3, "subscription": 1,
//!   "resource_group": 9, "deadline_ms": 50}` — every field optional
//!   (`id` defaults to 0 and is echoed back verbatim; the server routes
//!   responses internally, so ids need not be unique across connections);
//! * a **feedback signal**: any object with a `gamma` field (`gamma` ∈
//!   [-1, 1] plus the path ids and optional `offering`), acknowledged
//!   with `{"ack": "feedback"}` after the λ publish lands;
//! * a **control frame**: `{"op": "ping"}` (answered `{"pong": true}`) or
//!   `{"op": "drain"}` (acknowledged, then the server drains and exits).
//!
//! Server → client frames echo the request id:
//! `{"id": 7, "ok": {...}}` or `{"id": 7, "error": "...", "kind": "..."}`
//! plus `degraded` and `latency_ns`. Protocol-level rejections carry a
//! typed `kind` (see [`WireError::kind`]) so clients can distinguish an
//! oversized frame from garbage JSON from an admission rejection.

use crate::types::{ServeRequest, ServeResponse};
use lorentz_core::SatisfactionSignal;
use lorentz_types::framing::{FrameCodec, FrameError, StreamError};
use lorentz_types::{
    CustomerId, ProfileSchema, ResourceGroupId, ResourcePath, ServerOffering, SubscriptionId,
};
use serde::{Deserialize, Serialize, Value};
use std::io::{Read, Write};
use std::time::Duration;
use thiserror::Error;

/// Default cap on a single frame's payload (1 MiB). A request frame is a
/// few hundred bytes; anything near this is a protocol error or abuse.
pub const MAX_FRAME_LEN_DEFAULT: usize = 1 << 20;

/// Why a frame could not be read or understood.
#[derive(Debug, Error)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    #[error("connection closed")]
    Closed,
    /// The peer disconnected mid-frame (length prefix or payload cut
    /// short) — a torn frame, not a clean close.
    #[error("connection closed mid-frame")]
    Truncated,
    /// The declared frame length exceeds the configured cap; the payload
    /// was not read.
    #[error("frame of {len} bytes exceeds the {max}-byte cap")]
    TooLarge {
        /// Declared payload length.
        len: usize,
        /// Configured cap.
        max: usize,
    },
    /// The payload was read but is not a usable frame (bad UTF-8, bad
    /// JSON, or bad field types/values).
    #[error("malformed frame: {0}")]
    Malformed(String),
    /// An I/O error other than EOF while reading or writing.
    #[error("socket i/o failed: {0}")]
    Io(#[from] std::io::Error),
}

impl WireError {
    /// The stable `kind` tag error frames carry, so clients can branch
    /// without parsing prose.
    pub fn kind(&self) -> &'static str {
        match self {
            WireError::Closed => "closed",
            WireError::Truncated => "truncated",
            WireError::TooLarge { .. } => "frame_too_large",
            WireError::Malformed(_) => "malformed",
            WireError::Io(_) => "io",
        }
    }
}

/// Translates the shared codec's stream verdicts into this protocol's
/// typed errors, preserving the `kind` tags clients branch on.
fn from_stream_error(e: StreamError) -> WireError {
    match e {
        StreamError::Closed => WireError::Closed,
        StreamError::Truncated => WireError::Truncated,
        StreamError::Frame(FrameError::TooLarge { len, max }) => WireError::TooLarge { len, max },
        // The wire codec has no magic or checksum, so other structural
        // verdicts cannot occur; map defensively rather than panic.
        StreamError::Frame(other) => WireError::Malformed(other.to_string()),
        StreamError::Io(e) => WireError::Io(e),
    }
}

/// Reads one length-prefixed frame, enforcing `max_len` before buffering
/// the payload. Framing is [`FrameCodec::wire`] — the same codec the
/// replication handshake and the WAL share.
///
/// # Errors
/// [`WireError::Closed`] on EOF before the first length byte,
/// [`WireError::Truncated`] on EOF inside the prefix or payload,
/// [`WireError::TooLarge`] for an over-cap declared length, and
/// [`WireError::Io`] for any other socket error.
pub fn read_frame(reader: &mut impl Read, max_len: usize) -> Result<Vec<u8>, WireError> {
    FrameCodec::wire(max_len)
        .read_frame(reader)
        .map_err(from_stream_error)
}

/// Writes one length-prefixed frame and flushes it.
///
/// # Errors
/// Any socket error; a frame over the codec's absolute cap is an
/// `InvalidInput` error (never produced by this crate's encoders).
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    FrameCodec::wire(lorentz_types::framing::ABSOLUTE_MAX_PAYLOAD).write_frame(writer, payload)
}

/// One decoded client frame.
#[derive(Debug)]
pub enum ClientFrame {
    /// A recommendation request for the engine's bounded queue.
    Request(ServeRequest),
    /// A satisfaction signal for the λ-writer.
    Feedback(SatisfactionSignal),
    /// Liveness probe; answered immediately by the connection's reader.
    Ping,
    /// Graceful-drain request: the server stops accepting, finishes every
    /// in-flight request, and exits.
    Drain,
}

/// Reads an optional unsigned-integer field.
fn opt_u64_field(item: &Value, field: &str) -> Result<Option<u64>, WireError> {
    match item.get_field(field) {
        None => Ok(None),
        Some(v) => u64::from_value(v)
            .map(Some)
            .map_err(|_| WireError::Malformed(format!("{field} must be an unsigned integer"))),
    }
}

/// Parses one client frame payload against the deployment's profile
/// schema. The accepted shapes mirror the CLI's serve stream (see the
/// module docs).
///
/// # Errors
/// [`WireError::Malformed`] describing the first offending field.
pub fn parse_client_frame(
    payload: &[u8],
    schema: &ProfileSchema,
) -> Result<ClientFrame, WireError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| WireError::Malformed("frame is not UTF-8".into()))?;
    let value = serde_json::parse(text).map_err(|e| WireError::Malformed(e.to_string()))?;
    if value.as_map().is_none() {
        return Err(WireError::Malformed("frame must be a JSON object".into()));
    }
    if let Some(op) = value.get_field("op") {
        return match op.as_str() {
            Some("ping") => Ok(ClientFrame::Ping),
            Some("drain") => Ok(ClientFrame::Drain),
            Some(other) => Err(WireError::Malformed(format!("unknown op '{other}'"))),
            None => Err(WireError::Malformed("op must be a string".into())),
        };
    }
    let offering = match value.get_field("offering") {
        None => ServerOffering::GeneralPurpose,
        Some(v) => v
            .as_str()
            .ok_or_else(|| WireError::Malformed("offering must be a string".into()))?
            .parse()
            .map_err(|e: lorentz_types::LorentzError| WireError::Malformed(e.to_string()))?,
    };
    let path_id = |field: &str| -> Result<u32, WireError> {
        opt_u64_field(&value, field)?
            .map(|v| {
                u32::try_from(v)
                    .map_err(|_| WireError::Malformed(format!("{field} must fit in 32 bits")))
            })
            .transpose()
            .map(|v| v.unwrap_or(0))
    };
    let path = ResourcePath::new(
        CustomerId(path_id("customer")?),
        SubscriptionId(path_id("subscription")?),
        ResourceGroupId(path_id("resource_group")?),
    );
    if let Some(g) = value.get_field("gamma") {
        let gamma = f64::from_value(g)
            .map_err(|_| WireError::Malformed("gamma must be a number".into()))?;
        let signal = SatisfactionSignal::new(path, offering, gamma)
            .map_err(|e| WireError::Malformed(e.to_string()))?;
        return Ok(ClientFrame::Feedback(signal));
    }
    let mut profile: Vec<Option<String>> = vec![None; schema.len()];
    if let Some(p) = value.get_field("profile") {
        let entries = p
            .as_map()
            .ok_or_else(|| WireError::Malformed("profile must be an object".into()))?;
        for (name, v) in entries {
            let feature = schema.feature_id(name).ok_or_else(|| {
                WireError::Malformed(format!(
                    "unknown profile feature '{name}' (schema: {:?})",
                    schema.names()
                ))
            })?;
            let s = v.as_str().ok_or_else(|| {
                WireError::Malformed(format!("profile value for '{name}' must be a string"))
            })?;
            profile[feature.index()] = Some(s.to_owned());
        }
    }
    Ok(ClientFrame::Request(ServeRequest {
        id: opt_u64_field(&value, "id")?.unwrap_or(0),
        profile,
        offering,
        path,
        deadline: opt_u64_field(&value, "deadline_ms")?.map(Duration::from_millis),
    }))
}

/// Encodes a served response, echoing the client's correlation id (the
/// engine's internal routing id never appears on the wire).
pub fn encode_response(client_id: u64, response: &ServeResponse) -> Vec<u8> {
    let mut fields = vec![("id".to_owned(), Value::UInt(client_id))];
    match &response.result {
        Ok(rec) => fields.push(("ok".to_owned(), rec.to_value())),
        Err(e) => {
            fields.push(("error".to_owned(), Value::Str(e.to_string())));
            fields.push(("kind".to_owned(), Value::Str("serve".to_owned())));
        }
    }
    fields.push(("degraded".to_owned(), Value::Bool(response.degraded)));
    fields.push(("latency_ns".to_owned(), Value::UInt(response.latency_ns)));
    encode_value(&Value::Map(fields))
}

/// Encodes a typed protocol error frame: `{"id": ..., "error": "...",
/// "kind": "..."}`. `client_id` is `None` when the error is not
/// attributable to a specific request (e.g. an unparseable frame).
pub fn encode_error(client_id: Option<u64>, kind: &str, message: &str) -> Vec<u8> {
    let mut fields = Vec::with_capacity(3);
    if let Some(id) = client_id {
        fields.push(("id".to_owned(), Value::UInt(id)));
    }
    fields.push(("error".to_owned(), Value::Str(message.to_owned())));
    fields.push(("kind".to_owned(), Value::Str(kind.to_owned())));
    encode_value(&Value::Map(fields))
}

/// Encodes a one-field acknowledgement frame (`{"ack": "drain"}`,
/// `{"ack": "feedback"}`, `{"pong": true}`).
pub fn encode_ack(key: &str, value: Value) -> Vec<u8> {
    encode_value(&Value::Map(vec![(key.to_owned(), value)]))
}

fn encode_value(value: &Value) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("wire values contain no unserializable variants")
        .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ProfileSchema {
        ProfileSchema::new(vec!["industry", "customer"]).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"ping\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut reader = &buf[..];
        assert_eq!(read_frame(&mut reader, 64).unwrap(), b"{\"op\":\"ping\"}");
        assert_eq!(read_frame(&mut reader, 64).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut reader, 64),
            Err(WireError::Closed)
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_before_buffering() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[b'x'; 100]).unwrap();
        let err = read_frame(&mut &buf[..], 10).unwrap_err();
        assert!(matches!(err, WireError::TooLarge { len: 100, max: 10 }));
        assert_eq!(err.kind(), "frame_too_large");
    }

    #[test]
    fn torn_frames_are_truncated_not_closed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        // Cut inside the payload.
        let cut = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut &cut[..], 64),
            Err(WireError::Truncated)
        ));
        // Cut inside the length prefix.
        assert!(matches!(
            read_frame(&mut &buf[..2], 64),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn parses_requests_feedback_and_control_frames() {
        let schema = schema();
        let frame = parse_client_frame(
            br#"{"id": 9, "profile": {"industry": "banking"}, "customer": 3, "deadline_ms": 50}"#,
            &schema,
        )
        .unwrap();
        match frame {
            ClientFrame::Request(r) => {
                assert_eq!(r.id, 9);
                assert_eq!(r.profile, vec![Some("banking".to_owned()), None]);
                assert_eq!(r.path.customer, CustomerId(3));
                assert_eq!(r.deadline, Some(Duration::from_millis(50)));
            }
            other => panic!("expected request, got {other:?}"),
        }
        assert!(matches!(
            parse_client_frame(br#"{"gamma": -0.5, "customer": 1}"#, &schema).unwrap(),
            ClientFrame::Feedback(_)
        ));
        assert!(matches!(
            parse_client_frame(br#"{"op": "ping"}"#, &schema).unwrap(),
            ClientFrame::Ping
        ));
        assert!(matches!(
            parse_client_frame(br#"{"op": "drain"}"#, &schema).unwrap(),
            ClientFrame::Drain
        ));
    }

    #[test]
    fn garbage_frames_produce_typed_malformed_errors() {
        let schema = schema();
        for garbage in [
            &b"\xff\xfe"[..],
            b"not json",
            b"[1, 2]",
            br#"{"op": "reboot"}"#,
            br#"{"gamma": 99, "customer": 1}"#,
            br#"{"profile": {"unknown_feature": "x"}}"#,
            br#"{"customer": 5000000000}"#,
        ] {
            let err = parse_client_frame(garbage, &schema).unwrap_err();
            assert_eq!(err.kind(), "malformed", "payload: {garbage:?}");
        }
    }
}
