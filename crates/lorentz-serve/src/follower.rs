//! The WAL-tailing replication follower.
//!
//! A leader running [`ServingEngine::start_with_wal`](crate::ServingEngine)
//! frames every accepted satisfaction signal together with the
//! epoch-stamped λ delta it published. [`FollowerEngine`] tails that log
//! with a [`WalTailer`] and applies the deltas to its own
//! [`LambdaStore`] — no propagation re-run, no full-table transfer — so a
//! read replica converges to the leader's published λ bit-for-bit and can
//! answer recommendations from its own snapshot.
//!
//! The follower is **read-only by construction**: it exposes no feedback
//! intake, so the single-writer discipline of the λ epoch chain is
//! preserved — only the leader mints epochs; the follower replays them.
//! Startup is catch-up-then-serve: [`FollowerEngine::start`] drains the
//! log to its current end before returning, so the first recommendation
//! already reflects every durable signal. The tailer interface is
//! file-based today but transport-shaped (each poll yields complete
//! records), so a socket-fed stream can replace it without touching the
//! apply path.

use crate::types::{EngineError, ServeError, ServeRequest};
use lorentz_core::obs;
use lorentz_core::personalizer::{LambdaSnapshot, LambdaStore, WalEntry, WalTailer};
use lorentz_core::{ModelKind, RecommendEngine, RecommendRequest, Recommendation, TrainedLorentz};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the follower tails the leader's WAL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FollowerConfig {
    /// Sleep between polls once the log is drained.
    pub poll_interval: Duration,
    /// The live Stage-2 model recommendations are served with.
    pub kind: ModelKind,
}

impl Default for FollowerConfig {
    /// 20 ms poll interval, hierarchical live model.
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(20),
            kind: ModelKind::Hierarchical,
        }
    }
}

/// The follower's replication ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FollowerStats {
    /// Delta records applied to the local λ store.
    pub applied: u64,
    /// Records skipped because their epoch did not advance the local
    /// store (duplicates from a tailer rescan after the log shrank).
    pub skipped: u64,
    /// Legacy bare-signal records replayed through propagation (visible
    /// with the next delta epoch).
    pub legacy: u64,
    /// The highest epoch seen in the log so far.
    pub last_epoch: u64,
}

/// State shared between the tailer thread and the serving side.
struct FollowerShared {
    deployment: Arc<TrainedLorentz>,
    lambdas: LambdaStore,
    config: FollowerConfig,
    stop: AtomicBool,
    stats: Mutex<FollowerStats>,
}

/// A read replica that tails a leader's signal WAL and serves
/// recommendations from the replicated λ epochs. See the module docs for
/// the replication contract.
pub struct FollowerEngine {
    shared: Arc<FollowerShared>,
    tailer: Mutex<Option<JoinHandle<()>>>,
}

impl FollowerEngine {
    /// Starts a follower over `deployment`, catching up to the current
    /// end of the WAL at `wal_path` before returning, then tailing it on
    /// a background thread. The file may not exist yet; the follower
    /// starts serving the batch-trained λ and picks records up as the
    /// leader writes them.
    ///
    /// # Errors
    /// [`EngineError::Wal`] when the existing log cannot be read during
    /// catch-up; [`EngineError::SpawnFailed`] when the OS refuses the
    /// tailer thread.
    pub fn start(
        deployment: Arc<TrainedLorentz>,
        wal_path: impl AsRef<Path>,
        config: FollowerConfig,
    ) -> Result<Self, EngineError> {
        let lambdas = LambdaStore::new(deployment.personalizer().clone());
        let shared = Arc::new(FollowerShared {
            deployment,
            lambdas,
            config,
            stop: AtomicBool::new(false),
            stats: Mutex::new(FollowerStats::default()),
        });
        let mut tailer = WalTailer::new(wal_path);
        // Catch-up-then-serve: drain everything already durable so the
        // first recommendation reflects it.
        loop {
            let batch = tailer.poll()?;
            if batch.is_empty() {
                break;
            }
            apply_batch(&shared, batch);
        }
        let handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lorentz-follow".to_string())
                .spawn(move || tail_loop(&shared, tailer))
                .map_err(|source| EngineError::SpawnFailed {
                    name: "lorentz-follow".to_string(),
                    source,
                })?
        };
        Ok(Self {
            shared,
            tailer: Mutex::new(Some(handle)),
        })
    }

    /// Serves one recommendation from the replicated state, pinning one λ
    /// epoch for the whole request — a delta applied mid-serve changes
    /// later requests, never this one.
    ///
    /// # Errors
    /// [`ServeError::Recommend`] when the underlying recommendation fails
    /// (unknown offering, malformed profile, ...).
    pub fn recommend_one(&self, request: &ServeRequest) -> Result<Recommendation, ServeError> {
        let borrowed = RecommendRequest {
            profile: request.profile.iter().map(|v| v.as_deref()).collect(),
            offering: request.offering,
            path: request.path,
        };
        let lambdas = self.shared.lambdas.snapshot();
        self.shared
            .deployment
            .live_engine_with_lambdas(self.shared.config.kind, &lambdas)
            .recommend_one(&borrowed)
            .map_err(ServeError::Recommend)
    }

    /// The currently replicated λ epoch — a cheap `Arc` clone.
    pub fn lambda_snapshot(&self) -> Arc<LambdaSnapshot> {
        self.shared.lambdas.snapshot()
    }

    /// The currently replicated λ epoch number.
    pub fn lambda_version(&self) -> u64 {
        self.shared.lambdas.version()
    }

    /// A point-in-time copy of the replication ledger.
    pub fn stats(&self) -> FollowerStats {
        *self.shared.stats.lock().expect("follower stats poisoned")
    }

    /// Stops tailing and returns the final replication ledger. Idempotent
    /// with [`Drop`]; records appended after this are not applied.
    pub fn stop(self) -> FollowerStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self
            .tailer
            .lock()
            .expect("follower tailer handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for FollowerEngine {
    /// Dropping the follower stops the tailer thread.
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The tailer thread body: poll, apply, sleep — until stopped. Read
/// errors are transient from the follower's perspective (the leader may
/// be mid-truncate); the next poll retries from the same offset.
fn tail_loop(shared: &Arc<FollowerShared>, mut tailer: WalTailer) {
    while !shared.stop.load(Ordering::Acquire) {
        match tailer.poll() {
            Ok(batch) if !batch.is_empty() => {
                apply_batch(shared, batch);
                // Drain eagerly; only sleep once the log is dry.
                continue;
            }
            Ok(_) | Err(_) => {}
        }
        std::thread::sleep(shared.config.poll_interval);
    }
}

/// Applies one polled batch: delta records advance the local epoch chain
/// (stale epochs from a rescan are skipped — replay is idempotent);
/// legacy bare-signal records go through propagation and become visible
/// with the next delta's swap.
fn apply_batch(shared: &FollowerShared, batch: Vec<WalEntry>) {
    let mut stats = shared.stats.lock().expect("follower stats poisoned");
    for entry in batch {
        match entry {
            WalEntry::Record(record) => {
                stats.last_epoch = stats.last_epoch.max(record.delta.epoch);
                if shared.lambdas.apply_delta(&record.delta).is_ok() {
                    stats.applied += 1;
                    obs::ENGINE_REPLICATION_APPLIED.inc();
                } else {
                    stats.skipped += 1;
                }
            }
            WalEntry::Signal(signal) => {
                shared.lambdas.apply_signal(&signal);
                stats.legacy += 1;
            }
        }
    }
    let lag = stats.last_epoch.saturating_sub(shared.lambdas.version());
    obs::ENGINE_REPLICATION_LAG_EPOCHS.set(lag as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_core::personalizer::WalRecord;
    use lorentz_core::{SatisfactionSignal, SignalWal};
    use lorentz_types::{
        CustomerId, LambdaDelta, PathKey, ResourceGroupId, ResourcePath, ServerOffering,
        SubscriptionId,
    };

    fn leader_wal(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lorentz-follow-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("signals.wal")
    }

    fn path(c: u32) -> ResourcePath {
        ResourcePath::new(CustomerId(c), SubscriptionId(1), ResourceGroupId(1))
    }

    fn record(c: u32, lambda: f64, epoch: u64) -> WalRecord {
        let signal = SatisfactionSignal::new(path(c), ServerOffering::GeneralPurpose, 1.0).unwrap();
        WalRecord {
            signal,
            delta: LambdaDelta::new(epoch, vec![(PathKey::new(path(c)), [0.0, lambda, 0.0])]),
        }
    }

    #[test]
    fn stale_epochs_are_skipped_not_fatal() {
        // Exercise the apply path directly on a store, as the follower
        // does after a tailer rescan re-reads old records.
        let store = LambdaStore::new(
            lorentz_core::Personalizer::new(lorentz_core::PersonalizerConfig::default()).unwrap(),
        );
        let r = record(1, 0.5, 2);
        assert!(store.apply_delta(&r.delta).is_ok());
        assert!(store.apply_delta(&r.delta).is_err(), "duplicate skipped");
        assert_eq!(store.version(), 2);
    }

    #[test]
    fn wal_records_round_trip_through_the_tailer() {
        let wal_path = leader_wal("tailer-roundtrip");
        let (mut wal, _) = SignalWal::open(&wal_path).unwrap();
        wal.append_record(&record(1, 0.5, 2)).unwrap();
        wal.append_record(&record(2, -0.25, 3)).unwrap();
        let mut tailer = WalTailer::new(&wal_path);
        let batch = tailer.poll().unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[1].epoch(), Some(3));
    }
}
