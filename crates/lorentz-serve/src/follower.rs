//! The replication follower: file- or TCP-fed read replica, with
//! promotion.
//!
//! A leader running [`ServingEngine::start_with_wal`](crate::ServingEngine)
//! frames every accepted satisfaction signal together with the
//! epoch-stamped λ delta it published. [`FollowerEngine`] consumes that
//! stream through a [`ReplicationSource`] — [`FileSource`] tails the
//! leader's WAL through the filesystem (same-machine standby),
//! [`TcpSource`] subscribes to the leader's replication listener over a
//! socket (two-machine standby) — and applies the deltas to its own
//! [`LambdaStore`]: no propagation re-run, no full-table transfer, so
//! either transport converges to the leader's published λ bit-for-bit.
//!
//! While following, the replica is **read-only by construction**: only
//! the leader mints epochs; the follower replays them. Startup is
//! catch-up-then-serve: the constructors drain the source to its current
//! end before returning, so the first recommendation already reflects
//! every durable signal.
//!
//! A TCP follower configured with [`FollowerConfig::local_wal`] persists
//! each received frame verbatim (the frames are byte-identical to the
//! leader's log, CRC and all), so a restarted follower replays its local
//! log and resumes the subscription *from its last epoch* instead of
//! re-reading the leader's entire WAL. A leader that has compacted past
//! that epoch answers the handshake with full-resync; the follower then
//! truncates its local log, resets its λ-state, and applies the fresh
//! stream.
//!
//! **Promotion**: with [`FollowerConfig::promote`] set, a TCP follower
//! that loses its leader for longer than
//! [`PromoteConfig::detection_timeout`] promotes itself — it finishes
//! applying whatever was buffered, opens its local WAL as a real
//! [`ServingEngine`](crate::ServingEngine) (replaying it, so the promoted
//! λ equals the replicated λ), starts its own replication listener, and
//! flips to [`ReplicaState::Leader`]: recommendations keep flowing and
//! [`FollowerEngine::submit_feedback`] starts accepting. When several
//! standbys race, the OS arbitrates exactly-once promotion through
//! [`PromoteConfig::listen`]: binding the address is the election, and
//! the losers re-subscribe to the winner as their new upstream.
//!
//! **Term fencing**: promotion mints a leader term strictly above every
//! term the follower recovered or observed, so when a partition heals the
//! cluster can tell the real leader from the zombie. A replica whose
//! subscription is refused with `stale_leader` treats its upstream as
//! lost (the upstream is the zombie — the replica promotes past it or
//! finds the winner); a *promoted* replica whose own engine gets fenced
//! (a higher-term subscriber reached its listener) demotes itself: the
//! tail thread — which stays alive after promotion precisely as this
//! watchdog — flips the state to [`ReplicaState::Demoted`], shuts the
//! listener down, and feedback is refused with
//! [`ServeError::Fenced`](crate::ServeError) while reads keep working.

use crate::engine::ServingEngine;
use crate::replication::{
    serve_replication, FileSource, ReplicationConfig, ReplicationError, ReplicationListener,
    ReplicationSource, SourcePoll, SourcedEntry, TcpSource,
};
use crate::types::{EngineError, ServeConfig, ServeError, ServeRequest, ServeResponse};
use lorentz_core::obs;
use lorentz_core::personalizer::{LambdaSnapshot, LambdaStore, PollBackoff, WalEntry, WalTailer};
use lorentz_core::{
    ModelKind, RecommendEngine, RecommendRequest, Recommendation, SatisfactionSignal, SignalWal,
    TrainedLorentz,
};
use lorentz_types::{DeltaCorruption, HandshakeRejection};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a follower does when its leader stops answering.
#[derive(Debug, Clone)]
pub struct PromoteConfig {
    /// The WAL the promoted leader opens and replays — normally the same
    /// path as [`FollowerConfig::local_wal`], which holds every frame the
    /// follower durably replicated.
    pub wal_path: PathBuf,
    /// Replication listen address (`host:port`) the promoted leader
    /// binds. Binding doubles as the election: when several standbys race,
    /// exactly one bind succeeds (`AddrInUse` means "lost; re-subscribe
    /// to the winner here"). `None` promotes unconditionally without a
    /// listener — single-standby deployments only.
    pub listen: Option<String>,
    /// Engine configuration for the promoted leader.
    pub serve: ServeConfig,
    /// Listener tuning for the promoted leader's own followers.
    pub replication: ReplicationConfig,
    /// How long the leader must stay unreachable before promotion starts.
    pub detection_timeout: Duration,
}

impl PromoteConfig {
    /// Promotion over `wal_path` with defaults: no listener, default
    /// engine config, one-second detection timeout.
    pub fn new(wal_path: impl Into<PathBuf>) -> Self {
        Self {
            wal_path: wal_path.into(),
            listen: None,
            serve: ServeConfig::default(),
            replication: ReplicationConfig::default(),
            detection_timeout: Duration::from_secs(1),
        }
    }
}

/// How the follower tails its leader.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Base sleep between polls once the stream is drained; consecutive
    /// idle polls back off exponentially up to `idle_backoff_cap`.
    pub poll_interval: Duration,
    /// Ceiling for the idle backoff.
    pub idle_backoff_cap: Duration,
    /// The live Stage-2 model recommendations are served with.
    pub kind: ModelKind,
    /// Where a TCP follower persists received frames (byte-identical to
    /// the leader's log), enabling resume-from-epoch after a restart and
    /// WAL replay on promotion. Ignored by file followers, whose source
    /// *is* a durable log.
    pub local_wal: Option<PathBuf>,
    /// Self-promotion on leader loss; `None` (the default) keeps the
    /// replica a follower forever.
    pub promote: Option<PromoteConfig>,
}

impl Default for FollowerConfig {
    /// 20 ms base poll backing off to ~200 ms, hierarchical live model,
    /// no local WAL, no promotion.
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(20),
            idle_backoff_cap: PollBackoff::DEFAULT_CAP,
            kind: ModelKind::Hierarchical,
            local_wal: None,
            promote: None,
        }
    }
}

/// The follower's replication ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FollowerStats {
    /// Delta records applied to the local λ store.
    pub applied: u64,
    /// Records skipped because applying them failed for a reason other
    /// than a stale epoch.
    pub skipped: u64,
    /// Re-delivered records whose epoch the local store had already
    /// passed — resume-overlap after a reconnect, or a tailer rescan after
    /// the log shrank. Applying is idempotent: each is dropped without
    /// touching λ.
    pub duplicates: u64,
    /// Legacy bare-signal records replayed through propagation (visible
    /// with the next delta epoch).
    pub legacy: u64,
    /// The highest epoch seen in the stream so far.
    pub last_epoch: u64,
    /// The highest leader term seen in the stream so far (0 until the
    /// first term marker arrives).
    pub leader_term: u64,
    /// Full resyncs performed (λ-state discarded and rebuilt from the
    /// leader's log start).
    pub full_resyncs: u64,
}

/// Where the replica is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaState {
    /// Tailing a leader; read-only.
    Following,
    /// Promoted: serving as a leader with its own WAL (and, when
    /// configured, its own replication listener). Feedback is accepted.
    Leader,
    /// The subscription was refused with a typed error (e.g.
    /// `follower_ahead`) and tailing stopped; operator intervention
    /// required.
    Halted(String),
    /// Promoted, then superseded: a leader at a strictly higher term was
    /// observed and this replica fenced itself. Reads keep answering from
    /// the λ-state at the moment of demotion; feedback is refused with
    /// [`ServeError::Fenced`](crate::ServeError); the local WAL is frozen
    /// (no divergence past the fence point).
    Demoted {
        /// The term this replica held as a leader.
        term: u64,
        /// The higher term that superseded it.
        observed: u64,
    },
}

/// The promoted leader's moving parts, swapped in by the tail thread.
struct PromotedLeader {
    engine: ServingEngine,
    /// The promoted engine's response channel. The follower serves
    /// recommendations synchronously off the engine's λ-state, so worker
    /// responses are not routed; the receiver is kept so sends never
    /// error.
    _responses: Receiver<ServeResponse>,
    /// The promoted leader's own replication listener, when it bound one.
    listener: Option<ReplicationListener>,
}

/// State shared between the tail thread and the serving side.
struct FollowerShared {
    deployment: Arc<TrainedLorentz>,
    /// The replicated λ-state. Behind an `RwLock` only for full resync,
    /// which swaps in a fresh store; applies and reads go through the
    /// store's own interior mutability under the read lock.
    lambdas: RwLock<LambdaStore>,
    config: FollowerConfig,
    stop: AtomicBool,
    stats: Mutex<FollowerStats>,
    state: Mutex<ReplicaState>,
    promoted: Mutex<Option<PromotedLeader>>,
}

/// A read replica that follows a leader's λ-WAL — through the filesystem
/// or over TCP — and serves recommendations from the replicated epochs;
/// optionally promotes itself to a serving leader when the leader dies.
/// See the module docs for the replication and promotion contracts.
pub struct FollowerEngine {
    shared: Arc<FollowerShared>,
    tailer: Mutex<Option<JoinHandle<()>>>,
}

impl FollowerEngine {
    /// Starts a follower tailing the leader's WAL file at `wal_path`,
    /// catching up to its current end before returning. The file may not
    /// exist yet; the follower starts serving the batch-trained λ and
    /// picks records up as the leader writes them.
    ///
    /// # Errors
    /// [`EngineError::Wal`] when the existing log cannot be read during
    /// catch-up; [`EngineError::SpawnFailed`] when the OS refuses the
    /// tailer thread.
    pub fn start(
        deployment: Arc<TrainedLorentz>,
        wal_path: impl AsRef<Path>,
        config: FollowerConfig,
    ) -> Result<Self, EngineError> {
        let shared = Self::make_shared(deployment, config);
        let source = FileSource::new(wal_path.as_ref());
        Self::finish_start(shared, Box::new(source), None)
    }

    /// Starts a follower subscribed to a leader's replication listener at
    /// `addr` (`host:port`). When the config carries a
    /// [`FollowerConfig::local_wal`], records already persisted there are
    /// replayed first and the subscription resumes from their last epoch —
    /// the leader streams only the tail.
    ///
    /// # Errors
    /// [`EngineError::Replication`] when the connect or handshake fails
    /// (including the typed `follower_ahead` rejection);
    /// [`EngineError::Wal`] when the local WAL cannot be opened or read;
    /// [`EngineError::SpawnFailed`] when the OS refuses the tail thread.
    pub fn start_tcp(
        deployment: Arc<TrainedLorentz>,
        addr: &str,
        config: FollowerConfig,
    ) -> Result<Self, EngineError> {
        let shared = Self::make_shared(deployment, config);
        let mut local_wal = None;
        if let Some(path) = shared.config.local_wal.clone() {
            // Open first: a torn tail from a crashed run is truncated, so
            // the tailer below reads a clean log.
            let (wal, _recovery) = SignalWal::open(&path)?;
            local_wal = Some(wal);
            let mut tailer = WalTailer::new(&path);
            loop {
                let batch = tailer.poll()?;
                if batch.is_empty() {
                    break;
                }
                let batch = batch
                    .into_iter()
                    .map(|entry| SourcedEntry { entry, raw: None })
                    .collect();
                apply_sourced(&shared, batch, None);
            }
        }
        let (last_epoch, observed_term) = {
            let stats = shared.stats.lock().expect("follower stats poisoned");
            (stats.last_epoch, stats.leader_term)
        };
        // Declare every term recovered from the local WAL in the
        // handshake: reconnecting to a leader at a lower term fences that
        // leader instead of silently resubscribing to a stale lineage.
        let source = TcpSource::connect_with_term(addr, last_epoch, observed_term)
            .map_err(EngineError::Replication)?;
        Self::finish_start(shared, Box::new(source), local_wal)
    }

    /// Starts a follower over an arbitrary [`ReplicationSource`] — the
    /// seam the transport-specific constructors share, public so tests
    /// and embedders can inject sources.
    ///
    /// # Errors
    /// As [`FollowerEngine::start`].
    pub fn start_with_source(
        deployment: Arc<TrainedLorentz>,
        source: Box<dyn ReplicationSource>,
        config: FollowerConfig,
    ) -> Result<Self, EngineError> {
        let shared = Self::make_shared(deployment, config);
        let local_wal = match shared.config.local_wal.clone() {
            Some(path) => Some(SignalWal::open(&path)?.0),
            None => None,
        };
        Self::finish_start(shared, source, local_wal)
    }

    fn make_shared(deployment: Arc<TrainedLorentz>, config: FollowerConfig) -> Arc<FollowerShared> {
        let lambdas = RwLock::new(LambdaStore::new(deployment.personalizer().clone()));
        Arc::new(FollowerShared {
            deployment,
            lambdas,
            config,
            stop: AtomicBool::new(false),
            stats: Mutex::new(FollowerStats::default()),
            state: Mutex::new(ReplicaState::Following),
            promoted: Mutex::new(None),
        })
    }

    /// Catch-up-then-serve: drain the source to its current end, then tail
    /// it on a background thread.
    fn finish_start(
        shared: Arc<FollowerShared>,
        mut source: Box<dyn ReplicationSource>,
        mut local_wal: Option<SignalWal>,
    ) -> Result<Self, EngineError> {
        loop {
            match source.poll() {
                SourcePoll::Entries(batch) => apply_sourced(&shared, batch, local_wal.as_mut()),
                SourcePoll::Reset => full_resync(&shared, local_wal.as_mut()),
                SourcePoll::Rejected(rejection) => {
                    return Err(EngineError::Replication(ReplicationError::Rejected(
                        rejection,
                    )));
                }
                // A leader lost during catch-up is the tail loop's problem
                // (it retries and may promote); serve what we have.
                SourcePoll::Idle | SourcePoll::LeaderLost(_) => break,
            }
        }
        let handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lorentz-follow".to_string())
                .spawn(move || tail_loop(&shared, source, local_wal))
                .map_err(|source| EngineError::SpawnFailed {
                    name: "lorentz-follow".to_string(),
                    source,
                })?
        };
        Ok(Self {
            shared,
            tailer: Mutex::new(Some(handle)),
        })
    }

    /// Serves one recommendation from the replicated state (or, after
    /// promotion, from the promoted leader's live λ), pinning one λ epoch
    /// for the whole request — a delta applied mid-serve changes later
    /// requests, never this one.
    ///
    /// # Errors
    /// [`ServeError::Recommend`] when the underlying recommendation fails
    /// (unknown offering, malformed profile, ...).
    pub fn recommend_one(&self, request: &ServeRequest) -> Result<Recommendation, ServeError> {
        let borrowed = RecommendRequest {
            profile: request.profile.iter().map(|v| v.as_deref()).collect(),
            offering: request.offering,
            path: request.path,
        };
        let lambdas = self.lambda_snapshot_for_path(&request.path);
        self.shared
            .deployment
            .live_engine_with_lambdas(self.shared.config.kind, &lambdas)
            .recommend_one(&borrowed)
            .map_err(ServeError::Recommend)
    }

    /// Offers one satisfaction signal. A follower is read-only — only the
    /// leader mints λ epochs — so this is rejected with
    /// [`ServeError::Draining`] until promotion; a promoted replica
    /// accepts, applies, and durably logs the signal like any leader
    /// (blocking until the λ publish lands, so the caller reads its own
    /// write).
    ///
    /// # Errors
    /// [`ServeError::Draining`] while the replica is (still) a follower;
    /// [`ServeError::Fenced`] after it was promoted and then superseded by
    /// a higher-term leader.
    pub fn submit_feedback(&self, signal: SatisfactionSignal) -> Result<(), ServeError> {
        if let ReplicaState::Demoted { term, observed } = self.state() {
            return Err(ServeError::Fenced { term, observed });
        }
        let promoted = self
            .shared
            .promoted
            .lock()
            .expect("promoted leader poisoned");
        match promoted.as_ref() {
            Some(leader) => {
                leader.engine.submit_feedback(signal)?;
                leader.engine.flush_feedback();
                Ok(())
            }
            None => Err(ServeError::Draining),
        }
    }

    /// Whether this replica has promoted itself to a serving leader.
    pub fn is_leader(&self) -> bool {
        matches!(self.state(), ReplicaState::Leader)
    }

    /// The replica's lifecycle state.
    pub fn state(&self) -> ReplicaState {
        self.shared
            .state
            .lock()
            .expect("follower state poisoned")
            .clone()
    }

    /// The λ snapshot covering `path` — the replicated store's while
    /// following, the promoted engine's after promotion.
    fn lambda_snapshot_for_path(&self, path: &lorentz_types::ResourcePath) -> Arc<LambdaSnapshot> {
        let promoted = self
            .shared
            .promoted
            .lock()
            .expect("promoted leader poisoned");
        match promoted.as_ref() {
            Some(leader) => leader.engine.lambda_snapshot_for(path),
            None => self
                .shared
                .lambdas
                .read()
                .expect("follower lambdas poisoned")
                .snapshot(),
        }
    }

    /// The currently replicated λ epoch — a cheap `Arc` clone. After
    /// promotion this keeps answering from the promoted engine's shard 0.
    pub fn lambda_snapshot(&self) -> Arc<LambdaSnapshot> {
        let promoted = self
            .shared
            .promoted
            .lock()
            .expect("promoted leader poisoned");
        match promoted.as_ref() {
            Some(leader) => leader.engine.lambda_snapshot(),
            None => self
                .shared
                .lambdas
                .read()
                .expect("follower lambdas poisoned")
                .snapshot(),
        }
    }

    /// The currently replicated (or, after promotion, served) λ epoch
    /// number.
    pub fn lambda_version(&self) -> u64 {
        let promoted = self
            .shared
            .promoted
            .lock()
            .expect("promoted leader poisoned");
        match promoted.as_ref() {
            Some(leader) => leader.engine.lambda_version(),
            None => self
                .shared
                .lambdas
                .read()
                .expect("follower lambdas poisoned")
                .version(),
        }
    }

    /// The promoted leader's replication listen address, once bound.
    pub fn promoted_listen_addr(&self) -> Option<std::net::SocketAddr> {
        let promoted = self
            .shared
            .promoted
            .lock()
            .expect("promoted leader poisoned");
        promoted.as_ref().and_then(|leader| {
            leader
                .listener
                .as_ref()
                .map(ReplicationListener::local_addr)
        })
    }

    /// A point-in-time copy of the replication ledger.
    pub fn stats(&self) -> FollowerStats {
        *self.shared.stats.lock().expect("follower stats poisoned")
    }

    /// The leader term this replica is operating under: the promoted
    /// engine's own term after promotion, otherwise the highest term seen
    /// in the replicated stream.
    pub fn leader_term(&self) -> u64 {
        let promoted = self
            .shared
            .promoted
            .lock()
            .expect("promoted leader poisoned");
        match promoted.as_ref() {
            Some(leader) => leader.engine.leader_term(),
            None => {
                drop(promoted);
                self.stats().leader_term
            }
        }
    }

    /// Stops tailing (and, after promotion, drains the promoted engine),
    /// returning the final replication ledger. Idempotent with [`Drop`];
    /// records appended after this are not applied.
    pub fn stop(self) -> FollowerStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self
            .tailer
            .lock()
            .expect("follower tailer handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
        // Tear down the promoted leader after the tail thread is gone
        // (it can no longer install a new one).
        if let Some(leader) = self
            .shared
            .promoted
            .lock()
            .expect("promoted leader poisoned")
            .take()
        {
            drop(leader.listener);
            drop(leader.engine); // drop = drain
        }
    }
}

impl Drop for FollowerEngine {
    /// Dropping the follower stops the tailer thread (and any promoted
    /// engine).
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How one promotion attempt ended.
enum PromotionOutcome {
    /// This replica is the new leader.
    Promoted,
    /// Another replica bound the promotion address first; re-subscribe to
    /// it at the returned address.
    LostRace(String),
    /// The attempt failed (bind error, WAL open failure); retry after the
    /// next detection timeout.
    Failed,
}

/// Seeds the tail loop's idle jitter so replicas of one leader desynchronize
/// their poll (and therefore promotion-retry) schedules.
fn tail_jitter_seed() -> u64 {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    (u64::from(std::process::id()) << 32) ^ NEXT.fetch_add(0x9E37_79B9, Ordering::Relaxed)
}

/// The tail thread body: poll, apply, back off when idle — until stopped,
/// halted by a typed rejection, or promoted (after which the same thread
/// stays alive as the demotion watchdog, see [`watch_promoted`]). Leader
/// loss is tolerated up to the promotion detection timeout (sources
/// reconnect internally); without a promote config it is tolerated
/// forever, preserving the original file-follower behavior of riding out
/// leader restarts. A `stale_leader` rejection is handled as a *loss*,
/// not a halt: the refusing upstream is the zombie of an older term, and
/// the right move is to promote past it or find the real leader.
fn tail_loop(
    shared: &Arc<FollowerShared>,
    mut source: Box<dyn ReplicationSource>,
    mut local_wal: Option<SignalWal>,
) {
    let mut backoff = PollBackoff::with_jitter(
        shared.config.poll_interval,
        shared.config.idle_backoff_cap,
        tail_jitter_seed(),
    );
    let mut lost_since: Option<Instant> = None;
    while !shared.stop.load(Ordering::Acquire) {
        let lost = match source.poll() {
            SourcePoll::Entries(batch) => {
                lost_since = None;
                backoff.reset();
                apply_sourced(shared, batch, local_wal.as_mut());
                // Drain eagerly; only sleep once the stream is dry.
                continue;
            }
            SourcePoll::Reset => {
                lost_since = None;
                backoff.reset();
                full_resync(shared, local_wal.as_mut());
                continue;
            }
            SourcePoll::Idle => {
                lost_since = None;
                false
            }
            SourcePoll::Rejected(rejection @ HandshakeRejection::StaleLeader { .. }) => {
                let mut stats = shared.stats.lock().expect("follower stats poisoned");
                if let HandshakeRejection::StaleLeader { observed_term, .. } = rejection {
                    stats.leader_term = stats.leader_term.max(observed_term);
                }
                true
            }
            SourcePoll::Rejected(rejection) => {
                *shared.state.lock().expect("follower state poisoned") =
                    ReplicaState::Halted(rejection.to_string());
                return;
            }
            SourcePoll::LeaderLost(_reason) => true,
        };
        if lost {
            let since = *lost_since.get_or_insert_with(Instant::now);
            if let Some(promote) = shared.config.promote.clone() {
                if since.elapsed() >= promote.detection_timeout {
                    // The promoted engine reopens the local WAL; close
                    // our append handle first so there is exactly one
                    // writer.
                    drop(local_wal.take());
                    let observed_term = {
                        let stats = shared.stats.lock().expect("follower stats poisoned");
                        stats.leader_term.max(source.observed_term())
                    };
                    match try_promote(shared, &promote, observed_term) {
                        PromotionOutcome::Promoted => {
                            watch_promoted(shared);
                            return;
                        }
                        PromotionOutcome::LostRace(winner) => {
                            let last_epoch = shared
                                .stats
                                .lock()
                                .expect("follower stats poisoned")
                                .last_epoch;
                            local_wal = reopen_local_wal(shared);
                            if let Ok(new_source) =
                                TcpSource::connect_with_term(&winner, last_epoch, observed_term)
                            {
                                source = Box::new(new_source);
                                lost_since = None;
                                backoff.reset();
                                continue;
                            }
                            // The winner is not accepting yet; fall
                            // through, sleep, and retry the election.
                        }
                        PromotionOutcome::Failed => {
                            local_wal = reopen_local_wal(shared);
                        }
                    }
                }
            }
        }
        std::thread::sleep(backoff.idle());
    }
}

/// The tail thread's afterlife as a promoted leader's demotion watchdog:
/// poll the promoted engine for the fence flag (set when a subscriber at
/// a strictly higher term reaches its replication listener). On a fence,
/// stop the listener (existing followers must go find the real leader),
/// flip to [`ReplicaState::Demoted`], and exit. The engine itself stays
/// up: reads keep answering from the λ-state at demotion, while its own
/// fence check refuses feedback, so the local WAL cannot diverge past the
/// fence point.
fn watch_promoted(shared: &Arc<FollowerShared>) {
    while !shared.stop.load(Ordering::Acquire) {
        let fenced = {
            let promoted = shared.promoted.lock().expect("promoted leader poisoned");
            match promoted.as_ref() {
                Some(leader) => leader
                    .engine
                    .fenced_by()
                    .map(|observed| (leader.engine.leader_term(), observed)),
                None => return,
            }
        };
        if let Some((term, observed)) = fenced {
            if let Some(leader) = shared
                .promoted
                .lock()
                .expect("promoted leader poisoned")
                .as_mut()
            {
                leader.listener.take();
            }
            obs::ENGINE_REPLICATION_DEMOTIONS.inc();
            *shared.state.lock().expect("follower state poisoned") =
                ReplicaState::Demoted { term, observed };
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Reopens the local WAL append handle after a promotion attempt that did
/// not promote (the handle was closed to guarantee a single writer).
fn reopen_local_wal(shared: &FollowerShared) -> Option<SignalWal> {
    shared
        .config
        .local_wal
        .as_ref()
        .and_then(|path| SignalWal::open(path).ok().map(|(wal, _)| wal))
}

/// One promotion attempt: win the bind election (when a listen address is
/// configured), replay the local WAL into a real serving engine — minting
/// a leader term strictly above `observed_term` and everything in the WAL
/// — start the replication listener, and flip the replica state.
fn try_promote(
    shared: &Arc<FollowerShared>,
    promote: &PromoteConfig,
    observed_term: u64,
) -> PromotionOutcome {
    let listener = match &promote.listen {
        Some(addr) => match TcpListener::bind(addr) {
            Ok(listener) => Some(listener),
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                return PromotionOutcome::LostRace(addr.clone());
            }
            Err(_) => return PromotionOutcome::Failed,
        },
        None => None,
    };
    // Replaying the local WAL's signals through propagation converges to
    // the same λ the deltas produced (the delta chain is a reordering-free
    // transcript of exactly these applies), and `restore_epoch` continues
    // the leader's epoch numbering.
    let started = ServingEngine::start_promoted(
        Arc::clone(&shared.deployment),
        promote.serve,
        &promote.wal_path,
        observed_term,
    );
    let (engine, responses) = match started {
        Ok(pair) => pair,
        Err(_) => return PromotionOutcome::Failed,
    };
    let listener = listener
        .and_then(|listener| serve_replication(&engine, listener, promote.replication).ok());
    obs::ENGINE_REPLICATION_PROMOTIONS.inc();
    *shared.promoted.lock().expect("promoted leader poisoned") = Some(PromotedLeader {
        engine,
        _responses: responses,
        listener,
    });
    *shared.state.lock().expect("follower state poisoned") = ReplicaState::Leader;
    PromotionOutcome::Promoted
}

/// Applies one polled batch: delta records advance the local epoch chain
/// (stale epochs from a rescan are skipped — replay is idempotent);
/// legacy bare-signal records go through propagation and become visible
/// with the next delta's swap. Socket-sourced frames carrying raw bytes
/// are appended to the local WAL first, so what the follower applied is
/// what it can replay.
fn apply_sourced(
    shared: &FollowerShared,
    batch: Vec<SourcedEntry>,
    mut local_wal: Option<&mut SignalWal>,
) {
    let lambdas = shared.lambdas.read().expect("follower lambdas poisoned");
    let mut stats = shared.stats.lock().expect("follower stats poisoned");
    for sourced in batch {
        if let (Some(wal), Some(raw)) = (local_wal.as_deref_mut(), sourced.raw.as_deref()) {
            let _ = wal.append_frame(raw);
        }
        match sourced.entry {
            WalEntry::Record(record) => {
                stats.last_epoch = stats.last_epoch.max(record.delta.epoch);
                match lambdas.apply_delta(&record.delta) {
                    Ok(_) => {
                        stats.applied += 1;
                        obs::ENGINE_REPLICATION_APPLIED.inc();
                    }
                    // A stale epoch is a re-delivery (resume overlap after
                    // a reconnect, or a tailer rescan), not damage: the
                    // apply is idempotent and the record is dropped.
                    Err(DeltaCorruption::EpochRegression { .. }) => {
                        stats.duplicates += 1;
                        obs::ENGINE_REPLICATION_DUPLICATES.inc();
                    }
                    Err(_) => {
                        stats.skipped += 1;
                    }
                }
            }
            WalEntry::Signal(signal) => {
                lambdas.apply_signal(&signal);
                stats.legacy += 1;
            }
            WalEntry::Term(term) => {
                stats.leader_term = stats.leader_term.max(term);
            }
        }
    }
    let lag = stats.last_epoch.saturating_sub(lambdas.version());
    obs::ENGINE_REPLICATION_LAG_EPOCHS.set(lag as i64);
}

/// Full resync: the leader's log no longer reaches back to our epoch, so
/// the replicated λ-state (and the local copy of the log) is discarded;
/// the stream that follows rebuilds both from the log's start.
fn full_resync(shared: &FollowerShared, local_wal: Option<&mut SignalWal>) {
    if let Some(wal) = local_wal {
        let _ = wal.truncate_all();
    }
    let fresh = LambdaStore::new(shared.deployment.personalizer().clone());
    *shared.lambdas.write().expect("follower lambdas poisoned") = fresh;
    let mut stats = shared.stats.lock().expect("follower stats poisoned");
    stats.last_epoch = 0;
    stats.full_resyncs += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_core::personalizer::WalRecord;
    use lorentz_core::{SatisfactionSignal, SignalWal};
    use lorentz_types::{
        CustomerId, LambdaDelta, PathKey, ResourceGroupId, ResourcePath, ServerOffering,
        SubscriptionId,
    };

    fn leader_wal(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lorentz-follow-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("signals.wal")
    }

    fn path(c: u32) -> ResourcePath {
        ResourcePath::new(CustomerId(c), SubscriptionId(1), ResourceGroupId(1))
    }

    fn record(c: u32, lambda: f64, epoch: u64) -> WalRecord {
        let signal = SatisfactionSignal::new(path(c), ServerOffering::GeneralPurpose, 1.0).unwrap();
        WalRecord {
            signal,
            delta: LambdaDelta::new(epoch, vec![(PathKey::new(path(c)), [0.0, lambda, 0.0])]),
        }
    }

    #[test]
    fn stale_epochs_are_skipped_not_fatal() {
        // Exercise the apply path directly on a store, as the follower
        // does after a tailer rescan re-reads old records.
        let store = LambdaStore::new(
            lorentz_core::Personalizer::new(lorentz_core::PersonalizerConfig::default()).unwrap(),
        );
        let r = record(1, 0.5, 2);
        assert!(store.apply_delta(&r.delta).is_ok());
        assert!(store.apply_delta(&r.delta).is_err(), "duplicate skipped");
        assert_eq!(store.version(), 2);
    }

    #[test]
    fn wal_records_round_trip_through_the_tailer() {
        let wal_path = leader_wal("tailer-roundtrip");
        let (mut wal, _) = SignalWal::open(&wal_path).unwrap();
        wal.append_record(&record(1, 0.5, 2)).unwrap();
        wal.append_record(&record(2, -0.25, 3)).unwrap();
        let mut tailer = WalTailer::new(&wal_path);
        let batch = tailer.poll().unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[1].epoch(), Some(3));
    }
}
