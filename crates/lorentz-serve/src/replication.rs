//! λ-WAL replication over TCP: leader fanout, resume handshake, sources.
//!
//! The leader side ([`serve_replication`]) accepts follower connections on
//! a dedicated listener, performs the one-frame-each subscribe handshake
//! (see [`lorentz_types::SubscribeRequest`] for the wire shapes and the
//! epoch-gap semantics), replays the on-disk WAL from the follower's
//! resume epoch, and then streams every newly published record live. Each
//! follower gets its **own outbox thread** fed through a bounded channel
//! from the [`ReplicationHub`], so one slow or wedged standby can never
//! stall the λ-writer or the other followers — a subscriber whose outbox
//! fills is dropped (it reconnects and resumes from its own epoch, which
//! is exactly what the handshake is for).
//!
//! The frames on the socket are **byte-identical to the leader's on-disk
//! WAL frames** (CRC32C-framed by [`wal_codec`]): the follower can append
//! them verbatim to a local log and later restart from it, and torn sends
//! are caught by the same checksum that catches torn disk writes.
//!
//! Every subscribe carries the follower's highest **observed leader term**
//! and every ack carries the leader's own term. A leader contacted with a
//! strictly higher term has provably been superseded: it answers with a
//! typed `stale_leader` rejection and fences itself (feedback intake stops
//! with [`ServeError::Fenced`](crate::ServeError); new subscriptions are
//! refused), which is what keeps a healed split-brain from forking the
//! WAL lineage. Terms travel *in-band* as WAL term-marker frames, so the
//! replica-WAL-is-a-byte-prefix property is preserved.
//!
//! The follower side is abstracted behind [`ReplicationSource`] — "where
//! do replicated WAL entries come from" — with two implementations:
//! [`FileSource`] (tail the leader's WAL through the filesystem, the
//! original same-machine transport) and [`TcpSource`] (subscribe to a
//! leader's replication listener over a socket). The
//! [`FollowerEngine`](crate::FollowerEngine) drives either through the
//! same apply path, which is what makes the tcp:// and file: followers
//! byte-equivalent.
//!
//! Fail points (compiled in with the `fault-injection` feature):
//! `serve.replication.send` fires on every leader→follower frame send;
//! its `partial(F)` action ships a prefix of the frame and kills the
//! connection, simulating a leader dying mid-send — the follower's codec
//! sees a torn frame, discards it, and resumes from its last good epoch.

use crate::engine::ServingEngine;
use crate::wire::{self, WireError};
use lorentz_core::obs;
use lorentz_core::personalizer::{PollBackoff, SignalWal, WalEntry, WalTailer};
use lorentz_types::{
    HandshakeRejection, ResumeMode, StoreCorruption, SubscribeAck, SubscribeReply, SubscribeRequest,
};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use thiserror::Error;

/// Why a replication subscription could not be established.
#[derive(Debug, Error)]
pub enum ReplicationError {
    /// The leader answered the handshake with a typed refusal (e.g.
    /// `follower_ahead`). Retrying without operator intervention is wrong.
    #[error("replication subscription rejected: {0}")]
    Rejected(HandshakeRejection),
    /// Connecting, framing, or parsing failed at the transport level.
    #[error("replication transport failed: {0}")]
    Transport(String),
}

/// Tuning for the leader's replication listener.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationConfig {
    /// How often the (non-blocking) acceptor polls for new followers and
    /// for shutdown.
    pub accept_poll: Duration,
    /// How long a connected follower may take to send its subscribe frame
    /// before the connection is dropped.
    pub handshake_timeout: Duration,
    /// Bounded per-follower outbox depth (in records). A follower that
    /// falls this many live records behind is disconnected rather than
    /// allowed to backpressure the leader; it reconnects and resumes.
    pub outbox_capacity: usize,
    /// Largest accepted subscribe frame.
    pub max_handshake_frame: usize,
}

impl Default for ReplicationConfig {
    /// 5 ms accept poll, 5 s handshake timeout, 1024-record outboxes.
    fn default() -> Self {
        Self {
            accept_poll: Duration::from_millis(5),
            handshake_timeout: Duration::from_secs(5),
            outbox_capacity: 1024,
            max_handshake_frame: wire::MAX_FRAME_LEN_DEFAULT,
        }
    }
}

/// One subscribed follower's leader-side state.
struct Subscriber {
    id: u64,
    tx: SyncSender<(u64, Arc<Vec<u8>>)>,
    /// Highest epoch this follower's outbox thread has put on the wire,
    /// for the max-lag gauge.
    last_sent: Arc<AtomicU64>,
}

/// A subscription as seen by its outbox thread.
pub(crate) struct SubscriberHandle {
    pub(crate) id: u64,
    pub(crate) rx: Receiver<(u64, Arc<Vec<u8>>)>,
    pub(crate) last_sent: Arc<AtomicU64>,
}

/// The leader's fanout point: the λ-writer broadcasts each framed WAL
/// record here; per-follower outbox threads drain their bounded channels
/// onto their sockets. `broadcast` never blocks — a full outbox drops its
/// follower (see [`ReplicationConfig::outbox_capacity`]).
pub struct ReplicationHub {
    subs: Mutex<Vec<Subscriber>>,
    next_id: AtomicU64,
    /// Highest epoch ever appended/broadcast — the leader's position for
    /// handshake purposes, seeded from WAL recovery at engine start.
    last_epoch: AtomicU64,
    /// The leader term this hub fans out under, minted/resumed at engine
    /// start and stamped into every handshake ack.
    term: AtomicU64,
    /// 0 while this leader is live; once a subscriber presents a strictly
    /// higher term, the higher term is recorded here and the leader is
    /// fenced — feedback intake stops and new subscriptions are refused.
    fenced_by: AtomicU64,
}

impl ReplicationHub {
    /// An empty hub at epoch 0, term 0, unfenced.
    pub(crate) fn new() -> Self {
        Self {
            subs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            last_epoch: AtomicU64::new(0),
            term: AtomicU64::new(0),
            fenced_by: AtomicU64::new(0),
        }
    }

    /// Adopts the recovered on-disk epoch as the leader position.
    pub(crate) fn set_last_epoch(&self, epoch: u64) {
        self.last_epoch.store(epoch, Ordering::Release);
    }

    /// The leader's current replication epoch.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch.load(Ordering::Acquire)
    }

    /// Installs the leader term (engine start only).
    pub(crate) fn set_term(&self, term: u64) {
        self.term.store(term, Ordering::Release);
    }

    /// The term this leader fans out under.
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::Acquire)
    }

    /// Fences this leader against `observed`, a strictly higher term seen
    /// on the wire. Idempotent; keeps the highest term observed so far.
    pub(crate) fn fence(&self, observed: u64) {
        self.fenced_by.fetch_max(observed, Ordering::AcqRel);
    }

    /// The higher term that fenced this leader, if any.
    pub fn fenced_by(&self) -> Option<u64> {
        match self.fenced_by.load(Ordering::Acquire) {
            0 => None,
            observed => Some(observed),
        }
    }

    /// Currently subscribed followers.
    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().expect("replication hub poisoned").len()
    }

    /// Registers a follower outbox. Called by the connection handler
    /// *before* it reads the on-disk replay, so no record broadcast during
    /// the file read can be missed (duplicates are deduped by epoch).
    pub(crate) fn subscribe(&self, capacity: usize) -> SubscriberHandle {
        let (tx, rx) = sync_channel(capacity.max(1));
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let last_sent = Arc::new(AtomicU64::new(0));
        let mut subs = self.subs.lock().expect("replication hub poisoned");
        subs.push(Subscriber {
            id,
            tx,
            last_sent: Arc::clone(&last_sent),
        });
        self.update_gauges(&subs);
        SubscriberHandle { id, rx, last_sent }
    }

    /// Removes a follower (disconnect or shutdown).
    pub(crate) fn unsubscribe(&self, id: u64) {
        let mut subs = self.subs.lock().expect("replication hub poisoned");
        subs.retain(|s| s.id != id);
        self.update_gauges(&subs);
    }

    /// Fans one framed record out to every outbox. Non-blocking by
    /// construction: `try_send` either queues or evicts the subscriber
    /// (its outbox thread sees the closed channel and tears down the
    /// connection; the follower reconnects and resumes from its epoch).
    pub(crate) fn broadcast(&self, epoch: u64, frame: Vec<u8>) {
        self.last_epoch.store(epoch, Ordering::Release);
        let frame = Arc::new(frame);
        let mut subs = self.subs.lock().expect("replication hub poisoned");
        if subs.is_empty() {
            return;
        }
        subs.retain(|s| match s.tx.try_send((epoch, Arc::clone(&frame))) {
            Ok(()) => true,
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => false,
        });
        self.update_gauges(&subs);
    }

    /// Refreshes the follower-count and max-lag gauges (caller holds the
    /// subscriber lock).
    fn update_gauges(&self, subs: &[Subscriber]) {
        obs::ENGINE_REPLICATION_FOLLOWERS.set(subs.len() as i64);
        let leader = self.last_epoch.load(Ordering::Acquire);
        let max_lag = subs
            .iter()
            .map(|s| leader.saturating_sub(s.last_sent.load(Ordering::Acquire)))
            .max()
            .unwrap_or(0);
        obs::ENGINE_REPLICATION_MAX_FOLLOWER_LAG.set(max_lag as i64);
    }
}

/// Consults a `serve.replication.*` fail point (compiled out without the
/// `fault-injection` feature).
fn repl_fail(name: &str) -> Option<lorentz_fault::FailAction> {
    #[cfg(feature = "fault-injection")]
    {
        lorentz_fault::registry().hit(name)
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = name;
        None
    }
}

/// Puts one replicated frame on a follower's socket. The
/// `serve.replication.send` fail point can tear the frame mid-send and
/// kill the connection — the follower's CRC framing rejects the torn
/// record, exactly as it rejects a torn disk write.
fn send_frame(stream: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    if let Some(action) = repl_fail("serve.replication.send") {
        lorentz_fault::act_default("serve.replication.send", &action);
        if let lorentz_fault::FailAction::Partial(frac) = action {
            let keep = ((frame.len() as f64) * frac.clamp(0.0, 1.0)) as usize;
            let _ = stream.write_all(&frame[..keep]);
            let _ = stream.flush();
        }
        let _ = stream.shutdown(Shutdown::Both);
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "injected replication send fault",
        ));
    }
    stream.write_all(frame)
}

/// A running replication listener, returned by [`serve_replication`].
/// Dropping it (or calling [`ReplicationListener::shutdown`]) stops the
/// acceptor, disconnects every follower, and joins all threads.
pub struct ReplicationListener {
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl ReplicationListener {
    /// The bound address (useful with port 0 in tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, disconnects followers, joins threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplicationListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts the leader-side replication listener over an already-bound
/// socket: accepted followers handshake, replay from their resume epoch
/// out of the engine's on-disk WAL, then live-tail the hub. Returns
/// immediately; the acceptor and per-follower outboxes run on background
/// threads owned by the returned handle.
///
/// # Errors
/// `InvalidInput` when the engine has no WAL (nothing durable to replay —
/// a replication leader must be started with
/// [`ServingEngine::start_with_wal`]); otherwise listener-level I/O
/// errors.
pub fn serve_replication(
    engine: &ServingEngine,
    listener: TcpListener,
    config: ReplicationConfig,
) -> io::Result<ReplicationListener> {
    let Some(wal_path) = engine.wal_path() else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "replication requires a WAL-backed engine (start_with_wal)",
        ));
    };
    let hub = engine.replication_hub();
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("lorentz-repl-accept".to_string())
            .spawn(move || accept_loop(&hub, wal_path, listener, config, &stop))?
    };
    Ok(ReplicationListener {
        stop,
        acceptor: Some(acceptor),
        local_addr,
    })
}

/// The acceptor body: poll for connections until stopped, spawning one
/// handler (outbox) thread per follower; joins every handler on the way
/// out so shutdown leaves no thread behind.
fn accept_loop(
    hub: &Arc<ReplicationHub>,
    wal_path: PathBuf,
    listener: TcpListener,
    config: ReplicationConfig,
    stop: &Arc<AtomicBool>,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let hub = Arc::clone(hub);
                let wal_path = wal_path.clone();
                let stop = Arc::clone(stop);
                let spawned = std::thread::Builder::new()
                    .name("lorentz-repl-out".to_string())
                    .spawn(move || handle_follower(&hub, &wal_path, stream, config, &stop));
                match spawned {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => {
                        // Refused thread: drop the connection; the
                        // follower retries.
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(config.accept_poll);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One follower connection, handshake to hangup:
///
/// 1. read the subscribe frame (bounded by the handshake timeout);
/// 2. reject a follower ahead of this leader with a typed error;
/// 3. **subscribe to the hub first**, then read the on-disk replay — any
///    record broadcast during the file read is queued, and the epoch
///    dedup below drops the copies the file already covered (sound
///    because the single λ-writer appends in mint order: a record in the
///    queue with `epoch <= log_last_epoch` is on disk);
/// 4. ack (resume or full-resync), send the replay frames, then live-tail
///    the outbox until disconnect, eviction, or shutdown.
fn handle_follower(
    hub: &Arc<ReplicationHub>,
    wal_path: &PathBuf,
    mut stream: TcpStream,
    config: ReplicationConfig,
    stop: &Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(config.handshake_timeout))
        .is_err()
    {
        return;
    }
    let request = match read_subscribe(&mut stream, config.max_handshake_frame) {
        Ok(request) => request,
        Err(Some(reject)) => {
            let _ = write_reply(&mut stream, &SubscribeReply::Err(reject));
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        Err(None) => {
            // Mid-handshake disconnect or timeout: nothing to answer.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    // Term fencing, checked before anything epoch-shaped. A subscriber
    // carrying a strictly higher term proves a newer leader was elected:
    // this leader fences itself (feedback intake stops; see
    // `ServingEngine::submit_feedback`) and the subscriber is told who it
    // just demoted so it can go find the real leader. An already-fenced
    // leader refuses everyone — streaming a stale lineage would only
    // spread it.
    let leader_term = hub.term();
    if request.term > leader_term {
        hub.fence(request.term);
        let _ = write_reply(
            &mut stream,
            &SubscribeReply::Err(HandshakeRejection::StaleLeader {
                leader_term,
                observed_term: request.term,
            }),
        );
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    if let Some(observed) = hub.fenced_by() {
        let _ = write_reply(
            &mut stream,
            &SubscribeReply::Err(HandshakeRejection::StaleLeader {
                leader_term,
                observed_term: observed,
            }),
        );
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    if request.last_epoch > hub.last_epoch() {
        let _ = write_reply(
            &mut stream,
            &SubscribeReply::Err(HandshakeRejection::FollowerAhead {
                follower: request.last_epoch,
                leader: hub.last_epoch(),
            }),
        );
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let sub = hub.subscribe(config.outbox_capacity);
    let replay = match SignalWal::replay_from(wal_path, request.last_epoch) {
        Ok(replay) => replay,
        Err(_) => {
            // The log vanished or broke under us; the follower retries.
            hub.unsubscribe(sub.id);
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };
    let mode = if replay.full_resync {
        obs::ENGINE_REPLICATION_FULL_RESYNCS.inc();
        ResumeMode::FullResync
    } else {
        if request.last_epoch > 0 {
            obs::ENGINE_REPLICATION_RESUME_REPLAYS.inc();
        }
        ResumeMode::Resume
    };
    let ack = SubscribeAck {
        mode,
        from_epoch: if replay.full_resync {
            0
        } else {
            request.last_epoch
        },
        leader_epoch: hub.last_epoch().max(replay.log_last_epoch),
        leader_term,
    };
    if write_reply(&mut stream, &SubscribeReply::Ok(ack)).is_err() {
        hub.unsubscribe(sub.id);
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    // Dedup floor: live frames at or below the replayed log position are
    // already on the wire via the file replay.
    let floor = replay.log_last_epoch;
    let mut ok = true;
    for frame in &replay.frames {
        if send_frame(&mut stream, frame).is_err() {
            ok = false;
            break;
        }
        obs::ENGINE_REPLICATION_BYTES_SENT.add(frame.len() as u64);
    }
    sub.last_sent
        .store(floor.max(request.last_epoch), Ordering::Release);
    while ok && !stop.load(Ordering::Acquire) {
        match sub.rx.recv_timeout(Duration::from_millis(50)) {
            Ok((epoch, frame)) => {
                if epoch <= floor {
                    continue;
                }
                if send_frame(&mut stream, &frame).is_err() {
                    break;
                }
                obs::ENGINE_REPLICATION_BYTES_SENT.add(frame.len() as u64);
                sub.last_sent.store(epoch, Ordering::Release);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    hub.unsubscribe(sub.id);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads and parses the follower's subscribe frame. `Err(Some(_))` is a
/// malformed frame worth answering with a typed rejection; `Err(None)` is
/// a transport-level failure (timeout, disconnect) with nobody to answer.
fn read_subscribe(
    stream: &mut TcpStream,
    max_frame: usize,
) -> Result<SubscribeRequest, Option<HandshakeRejection>> {
    let payload = match wire::read_frame(stream, max_frame) {
        Ok(payload) => payload,
        Err(WireError::TooLarge { len, max }) => {
            return Err(Some(HandshakeRejection::Malformed(format!(
                "subscribe frame of {len} bytes exceeds the {max}-byte cap"
            ))));
        }
        Err(_) => return Err(None),
    };
    let text = std::str::from_utf8(&payload).map_err(|_| {
        Some(HandshakeRejection::Malformed(
            "frame is not UTF-8".to_owned(),
        ))
    })?;
    serde_json::from_str::<SubscribeRequest>(text)
        .map_err(|e| Some(HandshakeRejection::Malformed(e.to_string())))
}

/// Writes one handshake reply frame.
fn write_reply(stream: &mut TcpStream, reply: &SubscribeReply) -> io::Result<()> {
    let payload =
        serde_json::to_string(reply).expect("handshake replies contain no unserializable variants");
    wire::write_frame(stream, payload.as_bytes())
}

// ---------------------------------------------------------------------------
// Follower-side sources
// ---------------------------------------------------------------------------

/// One replicated WAL entry plus, for socket transports, the raw on-wire
/// frame bytes (so the follower can persist them to a local WAL verbatim).
#[derive(Debug)]
pub struct SourcedEntry {
    /// The decoded WAL entry.
    pub entry: WalEntry,
    /// The exact frame bytes as the leader wrote them; `None` for sources
    /// that already read from a durable local file.
    pub raw: Option<Vec<u8>>,
}

/// What one poll of a [`ReplicationSource`] produced.
#[derive(Debug)]
pub enum SourcePoll {
    /// New complete entries, in stream order.
    Entries(Vec<SourcedEntry>),
    /// Nothing new; sleep and poll again.
    Idle,
    /// The leader granted a full resync: the follower must discard its
    /// λ-state (and truncate its local WAL) before applying what follows.
    Reset,
    /// The connection to the leader is gone (clean close, timeout, torn
    /// stream). The source will retry on the next poll; the follower
    /// counts consecutive losses toward its promotion timeout.
    LeaderLost(String),
    /// The leader refused the subscription with a typed error; retrying
    /// is pointless without operator intervention.
    Rejected(HandshakeRejection),
}

/// Where replicated WAL entries come from. Implementations are polled by
/// the follower's tail loop; each poll returns complete entries only (a
/// partial frame stays buffered inside the source).
pub trait ReplicationSource: Send {
    /// Pulls whatever the transport has ready.
    fn poll(&mut self) -> SourcePoll;
    /// Human-readable endpoint, for logs and errors.
    fn describe(&self) -> String;
    /// The highest leader term this source has observed (handshake acks
    /// and streamed term markers). 0 for transports without terms; a
    /// promoting follower mints strictly above this.
    fn observed_term(&self) -> u64 {
        0
    }
}

/// The filesystem transport: tail the leader's WAL through a shared file,
/// exactly the original same-machine follower. Never reports
/// [`SourcePoll::LeaderLost`] — a file does not disconnect — so a
/// file-following replica never self-promotes.
pub struct FileSource {
    path: PathBuf,
    tailer: WalTailer,
}

impl FileSource {
    /// A source tailing the WAL at `path` (which may not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let tailer = WalTailer::new(&path);
        Self { path, tailer }
    }
}

impl ReplicationSource for FileSource {
    fn poll(&mut self) -> SourcePoll {
        match self.tailer.poll() {
            Ok(batch) if batch.is_empty() => SourcePoll::Idle,
            Ok(batch) => SourcePoll::Entries(
                batch
                    .into_iter()
                    .map(|entry| SourcedEntry { entry, raw: None })
                    .collect(),
            ),
            // Read errors are transient from the follower's perspective
            // (the leader may be mid-truncate); retry from the same offset.
            Err(_) => SourcePoll::Idle,
        }
    }

    fn describe(&self) -> String {
        format!("file:{}", self.path.display())
    }
}

/// An established leader connection and its decode buffer.
struct TcpConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Seeds a source's redial jitter from its endpoint and process (FNV-1a
/// over the address, xor'd with the pid), so followers of one leader never
/// share a backoff schedule and redials don't stampede in lockstep.
fn redial_seed(addr: &str) -> u64 {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in addr.bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x1_0000_01b3);
    }
    seed ^ (u64::from(std::process::id()) << 32)
}

/// The socket transport: subscribe to a leader's replication listener,
/// decode the streamed WAL frames with the on-disk codec, reconnect with
/// a resume handshake after any loss.
pub struct TcpSource {
    addr: String,
    /// Highest epoch delivered to the follower — the resume position for
    /// the next (re)connect.
    resume_epoch: u64,
    /// Highest leader term observed (from handshake acks and streamed term
    /// markers); sent with every subscribe so a stale leader fences itself.
    observed_term: Arc<AtomicU64>,
    /// Set when a (re)handshake was granted full-resync; surfaced as
    /// [`SourcePoll::Reset`] on the next poll so the caller resets its
    /// λ-state before any streamed entry is applied.
    pending_reset: bool,
    conn: Option<TcpConn>,
    handshake_timeout: Duration,
    /// Per-poll read budget while connected; WouldBlock/TimedOut means
    /// "idle", not "lost".
    read_timeout: Duration,
    last_ack: Option<SubscribeAck>,
    /// Jittered exponential backoff between redial attempts, so a fleet of
    /// followers does not stampede a recovering leader in lockstep.
    redial_backoff: PollBackoff,
    /// Earliest instant the next redial may happen; polls before it report
    /// [`SourcePoll::LeaderLost`] without touching the network (the loss
    /// must stay visible so the follower's promotion clock keeps running).
    next_redial: Option<Instant>,
}

/// How `TcpSource::establish` failed.
enum EstablishError {
    Rejected(HandshakeRejection),
    Transport(String),
}

impl TcpSource {
    /// Connects and subscribes eagerly, resuming from `last_epoch`, so
    /// misconfiguration (wrong address, stale leader, follower ahead)
    /// surfaces as a typed error instead of a silent retry loop.
    ///
    /// # Errors
    /// [`ReplicationError::Rejected`] for a typed handshake refusal,
    /// [`ReplicationError::Transport`] for connect/frame failures.
    pub fn connect(addr: impl Into<String>, last_epoch: u64) -> Result<Self, ReplicationError> {
        Self::connect_with_term(addr, last_epoch, 0)
    }

    /// [`TcpSource::connect`] with a pre-observed leader term. The term is
    /// declared in the subscribe handshake, so connecting to a leader at a
    /// *lower* term fences that leader and fails here with a typed
    /// [`HandshakeRejection::StaleLeader`] — which is exactly how a healed
    /// partition's zombie leader learns it has been superseded.
    ///
    /// # Errors
    /// As [`TcpSource::connect`].
    pub fn connect_with_term(
        addr: impl Into<String>,
        last_epoch: u64,
        observed_term: u64,
    ) -> Result<Self, ReplicationError> {
        let addr = addr.into();
        let seed = redial_seed(&addr);
        let mut source = Self {
            addr,
            resume_epoch: last_epoch,
            observed_term: Arc::new(AtomicU64::new(observed_term)),
            pending_reset: false,
            conn: None,
            handshake_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_millis(5),
            last_ack: None,
            redial_backoff: PollBackoff::with_jitter(
                Duration::from_millis(10),
                Duration::from_millis(200),
                seed,
            ),
            next_redial: None,
        };
        match source.establish() {
            Ok(()) => Ok(source),
            Err(EstablishError::Rejected(r)) => Err(ReplicationError::Rejected(r)),
            Err(EstablishError::Transport(msg)) => Err(ReplicationError::Transport(msg)),
        }
    }

    /// The handshake ack from the most recent successful subscription.
    pub fn last_ack(&self) -> Option<SubscribeAck> {
        self.last_ack
    }

    /// Dials the leader and runs the subscribe handshake. On success the
    /// connection is installed with the steady-state read timeout; a
    /// granted full resync sets `pending_reset` so the next poll surfaces
    /// it before any streamed entry.
    fn establish(&mut self) -> Result<(), EstablishError> {
        let io_err = |e: &dyn std::fmt::Display| EstablishError::Transport(e.to_string());
        let mut stream = TcpStream::connect(&self.addr).map_err(|e| io_err(&e))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(self.handshake_timeout))
            .map_err(|e| io_err(&e))?;
        let observed = self.observed_term.load(Ordering::Acquire);
        let request = SubscribeRequest {
            last_epoch: self.resume_epoch,
            term: observed,
        };
        let payload = serde_json::to_string(&request)
            .expect("subscribe requests contain no unserializable variants");
        wire::write_frame(&mut stream, payload.as_bytes()).map_err(|e| io_err(&e))?;
        let reply =
            wire::read_frame(&mut stream, wire::MAX_FRAME_LEN_DEFAULT).map_err(|e| io_err(&e))?;
        let text = std::str::from_utf8(&reply)
            .map_err(|_| EstablishError::Transport("handshake reply is not UTF-8".to_owned()))?;
        let reply: SubscribeReply = serde_json::from_str(text)
            .map_err(|e| EstablishError::Transport(format!("bad handshake reply: {e}")))?;
        match reply {
            SubscribeReply::Ok(ack) => {
                // Belt-and-suspenders for leaders that don't check terms
                // (a legacy leader acks with leader_term 0): a stream from
                // a term below what this follower has already seen is a
                // stale lineage and must not be applied.
                if ack.leader_term < observed {
                    return Err(EstablishError::Rejected(HandshakeRejection::StaleLeader {
                        leader_term: ack.leader_term,
                        observed_term: observed,
                    }));
                }
                self.observed_term
                    .fetch_max(ack.leader_term, Ordering::AcqRel);
                stream
                    .set_read_timeout(Some(self.read_timeout))
                    .map_err(|e| io_err(&e))?;
                self.last_ack = Some(ack);
                self.conn = Some(TcpConn {
                    stream,
                    buf: Vec::new(),
                });
                if ack.mode == ResumeMode::FullResync {
                    self.pending_reset = true;
                    self.resume_epoch = 0;
                }
                Ok(())
            }
            SubscribeReply::Err(rejection) => Err(EstablishError::Rejected(rejection)),
        }
    }

    /// Decodes every complete frame buffered so far, recording the raw
    /// bytes of each. Returns `Err` with a reason when the stream bytes
    /// are structurally corrupt (the connection must be dropped).
    fn drain_buffer(conn: &mut TcpConn) -> Result<Vec<SourcedEntry>, String> {
        let mut entries = Vec::new();
        let mut consumed = 0usize;
        loop {
            match lorentz_core::personalizer::wal::next_frame(&conn.buf, consumed) {
                None => break,
                Some(Ok((entry, end))) => {
                    entries.push(SourcedEntry {
                        entry,
                        raw: Some(conn.buf[consumed..end].to_vec()),
                    });
                    consumed = end;
                }
                // An incomplete frame at the buffer's end is "wait for
                // more bytes" on a stream, not corruption.
                Some(Err(
                    StoreCorruption::HeaderTruncated { .. } | StoreCorruption::Truncated { .. },
                )) => break,
                Some(Err(corruption)) => return Err(format!("corrupt stream: {corruption}")),
            }
        }
        conn.buf.drain(..consumed);
        Ok(entries)
    }
}

impl ReplicationSource for TcpSource {
    fn poll(&mut self) -> SourcePoll {
        if self.conn.is_none() {
            // Honor the redial backoff. The answer while waiting is
            // LeaderLost, never Idle: Idle would reset the follower's
            // promotion clock, and a leader we're backing off from is
            // still a lost leader.
            if let Some(at) = self.next_redial {
                if Instant::now() < at {
                    return SourcePoll::LeaderLost("redial backoff in progress".to_owned());
                }
            }
            match self.establish() {
                Ok(()) => {
                    self.redial_backoff.reset();
                    self.next_redial = None;
                }
                Err(EstablishError::Rejected(r)) => return SourcePoll::Rejected(r),
                Err(EstablishError::Transport(msg)) => {
                    self.next_redial = Some(Instant::now() + self.redial_backoff.idle());
                    return SourcePoll::LeaderLost(msg);
                }
            }
        }
        if self.pending_reset {
            self.pending_reset = false;
            return SourcePoll::Reset;
        }
        let conn = self.conn.as_mut().expect("connection installed above");
        let mut lost: Option<String> = None;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    lost = Some("leader closed the stream".to_owned());
                    break;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    lost = Some(e.to_string());
                    break;
                }
            }
        }
        let entries = match Self::drain_buffer(conn) {
            Ok(entries) => entries,
            Err(reason) => {
                self.conn = None;
                return SourcePoll::LeaderLost(reason);
            }
        };
        for sourced in &entries {
            if let Some(epoch) = sourced.entry.epoch() {
                self.resume_epoch = self.resume_epoch.max(epoch);
            }
            if let Some(term) = sourced.entry.term() {
                self.observed_term.fetch_max(term, Ordering::AcqRel);
            }
        }
        if !entries.is_empty() {
            // Deliver what arrived; a pending disconnect is rediscovered
            // on the next poll, after these entries are applied.
            return SourcePoll::Entries(entries);
        }
        if let Some(reason) = lost {
            self.conn = None;
            return SourcePoll::LeaderLost(reason);
        }
        SourcePoll::Idle
    }

    fn describe(&self) -> String {
        format!("tcp://{}", self.addr)
    }

    fn observed_term(&self) -> u64 {
        self.observed_term.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_broadcast_drops_full_outboxes_instead_of_blocking() {
        let hub = ReplicationHub::new();
        let healthy = hub.subscribe(8);
        let slow = hub.subscribe(1);
        assert_eq!(hub.subscriber_count(), 2);
        hub.broadcast(1, vec![1]);
        hub.broadcast(2, vec![2]);
        // The slow subscriber's single-slot outbox was full at epoch 2:
        // it is evicted, the healthy one keeps receiving.
        assert_eq!(hub.subscriber_count(), 1);
        assert_eq!(healthy.rx.try_recv().unwrap().0, 1);
        assert_eq!(healthy.rx.try_recv().unwrap().0, 2);
        let _ = slow.rx.try_recv(); // epoch 1 was queued before eviction
        assert!(
            slow.rx.try_recv().is_err(),
            "evicted outbox is disconnected"
        );
        hub.unsubscribe(healthy.id);
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn hub_tracks_leader_epoch() {
        let hub = ReplicationHub::new();
        assert_eq!(hub.last_epoch(), 0);
        hub.set_last_epoch(7);
        assert_eq!(hub.last_epoch(), 7);
        hub.broadcast(9, vec![0]);
        assert_eq!(hub.last_epoch(), 9);
    }
}
