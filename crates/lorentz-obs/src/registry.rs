//! The named-metric registry and its serializable snapshot.

use crate::metrics::{Counter, Gauge, Histogram};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A registry of named metrics living in `static` storage.
///
/// The registry itself is `const`-constructible, so a process-wide
/// `static REGISTRY: Registry` needs no lazy-init machinery. Hot paths
/// never touch the registry — they update their `static` [`Counter`] /
/// [`Histogram`] items directly; the registry only knows the name → metric
/// mapping so [`Registry::snapshot`] can enumerate everything.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(&'static str, &'static Counter)>>,
    gauges: Mutex<Vec<(&'static str, &'static Gauge)>>,
    histograms: Mutex<Vec<(&'static str, &'static Histogram)>>,
}

impl Registry {
    /// Creates an empty registry (usable in `static` items).
    pub const fn new() -> Self {
        Self {
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
        }
    }

    /// Registers a counter under `name`. Re-registering a name is a no-op,
    /// so registration blocks can run on every entry without guards.
    pub fn register_counter(&self, name: &'static str, metric: &'static Counter) {
        let mut list = self.counters.lock().expect("registry poisoned");
        if !list.iter().any(|(n, _)| *n == name) {
            list.push((name, metric));
        }
    }

    /// Registers a gauge under `name` (idempotent, like counters).
    pub fn register_gauge(&self, name: &'static str, metric: &'static Gauge) {
        let mut list = self.gauges.lock().expect("registry poisoned");
        if !list.iter().any(|(n, _)| *n == name) {
            list.push((name, metric));
        }
    }

    /// Registers a histogram under `name` (idempotent, like counters).
    pub fn register_histogram(&self, name: &'static str, metric: &'static Histogram) {
        let mut list = self.histograms.lock().expect("registry poisoned");
        if !list.iter().any(|(n, _)| *n == name) {
            list.push((name, metric));
        }
    }

    /// Captures every registered metric into a serializable snapshot.
    /// Concurrent recorders may land between individual reads; each metric's
    /// own fields are internally consistent enough for monitoring (counts
    /// never decrease, quantiles never exceed max).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, c)| ((*name).to_owned(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, g)| ((*name).to_owned(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, h)| ((*name).to_owned(), HistogramSnapshot::of(h)))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Resets every registered metric to zero (test support).
    pub fn reset(&self) {
        for (_, c) in self.counters.lock().expect("registry poisoned").iter() {
            c.reset();
        }
        for (_, g) in self.gauges.lock().expect("registry poisoned").iter() {
            g.reset();
        }
        for (_, h) in self.histograms.lock().expect("registry poisoned").iter() {
            h.reset();
        }
    }
}

/// The frozen statistics of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (nanoseconds for span histograms).
    pub sum: u64,
    /// Median, resolved to the covering log₂ bucket.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Freezes a histogram's current statistics.
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            p50: h.quantile(0.5),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            max: h.max(),
        }
    }
}

/// A point-in-time capture of every registered metric, serializable to the
/// same sorted-key JSON style as the prediction-store snapshot: metric
/// names are the (sorted) object keys, values are plain integers or
/// [`HistogramSnapshot`] objects.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter totals by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram statistics by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's total, or `None` if the name is unknown.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A gauge's level, or `None` if the name is unknown.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's statistics, or `None` if the name is unknown.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static HITS: Counter = Counter::new();
    static DEPTH: Gauge = Gauge::new();
    static LATENCY: Histogram = Histogram::new();

    #[test]
    fn registry_snapshots_and_resets_static_metrics() {
        let registry = Registry::new();
        registry.register_counter("serve.hits", &HITS);
        registry.register_counter("serve.hits", &HITS); // idempotent
        registry.register_gauge("store.depth", &DEPTH);
        registry.register_histogram("serve.latency_ns", &LATENCY);

        HITS.add(3);
        DEPTH.set(7);
        LATENCY.record(128);
        LATENCY.record(64);

        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.hits"), Some(3));
        assert_eq!(snap.gauge("store.depth"), Some(7));
        let h = snap.histogram("serve.latency_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 192);
        assert_eq!(h.max, 128);
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);
        assert_eq!(snap.counter("no.such.metric"), None);

        registry.reset();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.hits"), Some(0));
        assert_eq!(snap.gauge("store.depth"), Some(0));
        assert_eq!(snap.histogram("serve.latency_ns").unwrap().count, 0);
    }

    #[test]
    fn snapshot_serializes_to_sorted_key_json() {
        let registry = Registry::new();
        static B: Counter = Counter::new();
        static A: Counter = Counter::new();
        registry.register_counter("z.last", &B);
        registry.register_counter("a.first", &A);
        A.add(1);
        B.add(2);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        // BTreeMap keys serialize sorted regardless of registration order.
        assert!(json.find("a.first").unwrap() < json.find("z.last").unwrap());
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
