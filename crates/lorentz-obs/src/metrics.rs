//! The atomic metric primitives: counters, gauges, histograms, span timers.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event counter.
///
/// All operations are relaxed atomics — increments from concurrent threads
/// never lose updates, and the total always equals the sum of per-thread
/// increments.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter (usable in `static` items).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (test support; not used on serving paths).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time signed level (queue depths, store sizes, versions).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a zeroed gauge (usable in `static` items).
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Overwrites the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (test support).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// One bucket per power of two: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`. 65 buckets cover the full `u64` range,
/// so a nanosecond histogram spans from 1 ns to ~584 years without
/// saturating.
const N_BUCKETS: usize = 65;

/// A log₂-bucketed histogram for latency-style values.
///
/// Recording is a handful of relaxed atomic ops (bucket add, count, sum,
/// max), wait-free and order-insensitive: any permutation of the same
/// records — across any number of threads — produces an identical
/// snapshot. Quantiles are resolved to the upper bound of the covering
/// bucket, clamped to the exact recorded maximum, which keeps
/// `p50 ≤ p95 ≤ p99 ≤ max` by construction.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (usable in `static` items).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [ZERO; N_BUCKETS],
        }
    }

    /// The bucket index covering `v`: 0 for 0, `floor(log2 v) + 1` otherwise.
    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// The largest value bucket `i` can hold.
    fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Starts an RAII span whose elapsed nanoseconds are recorded on drop.
    pub fn span(&self) -> SpanTimer<'_> {
        SpanTimer {
            histogram: self,
            start: Instant::now(),
        }
    }

    /// Folds another histogram's observations into this one. Equivalent to
    /// having recorded both streams into one histogram.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), resolved to the covering bucket's
    /// upper bound and clamped to the recorded maximum. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Resets every bucket and statistic to zero (test support; not
    /// atomic with respect to concurrent recorders).
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An RAII stage timer: created by [`Histogram::span`], records the elapsed
/// nanoseconds into its histogram when dropped.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl SpanTimer<'_> {
    /// Nanoseconds elapsed so far (the value that will be recorded).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.histogram.record(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn bucket_indexing_covers_u64() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [100u64; 10] {
            h.record(v);
        }
        // Single-valued stream: every quantile is the exact value (the
        // bucket upper bound 127 clamps to the recorded max 100).
        assert_eq!(h.quantile(0.5), 100);
        assert_eq!(h.quantile(0.99), 100);
        assert_eq!(h.max(), 100);
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 1000);
    }

    #[test]
    fn quantiles_are_monotone_across_spread_values() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 10, 100, 1000, 10_000, 100_000] {
            h.record(v);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max());
        assert!(p50 >= 4, "median of the stream is >= 4, got {p50}");
    }

    #[test]
    fn merge_equals_single_stream() {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 700, 12] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 9999] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.max(), both.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    fn span_timer_records_on_drop() {
        let h = Histogram::new();
        {
            let span = h.span();
            assert_eq!(h.count(), 0, "nothing recorded until drop");
            let _ = span.elapsed_ns();
        }
        assert_eq!(h.count(), 1);
    }
}
