//! Observability substrate for the Lorentz serving system.
//!
//! The ROADMAP north star is a production-scale serving engine; Doppler and
//! the cloud-advisor literature both stress that SKU recommenders live or
//! die on operational feedback loops (per-stage latency budgets, drift
//! counters). This crate is the hand-rolled, dependency-free metrics layer
//! those loops hang off:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic scalars, `const`-constructible
//!   so metrics can live in `static` items with zero registration cost on
//!   the hot path;
//! * [`Histogram`] — a log₂-bucketed latency histogram with atomic buckets,
//!   reporting `p50`/`p95`/`p99`/`max`; recording is wait-free and
//!   order-insensitive, and histograms [`merge`](Histogram::merge);
//! * [`SpanTimer`] — an RAII guard that records elapsed nanoseconds into a
//!   histogram on drop, for scoped stage timing;
//! * [`Registry`] + [`MetricsSnapshot`] — a named-metric registry whose
//!   snapshot serializes to the same sorted-key JSON style as the
//!   prediction-store snapshot.
//!
//! Everything is `std`-only (atomics + `Instant`); the only dependency is
//! the workspace `serde` stub for the snapshot encoding. Deterministic
//! fields (counts) are byte-stable across runs; wall-clock fields (span
//! nanoseconds) of course are not — tests golden-pin the former and only
//! sanity-check the latter.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod registry;

pub use metrics::{Counter, Gauge, Histogram, SpanTimer};
pub use registry::{HistogramSnapshot, MetricsSnapshot, Registry};
