//! Seeded fault schedules. A [`Schedule`] is derived entirely from the
//! seed, printed before the run, and echoed on any violation so the exact
//! failing scenario replays with `lorentz chaos --seed N`.

use crate::rng::SplitMix64;
use std::fmt;

/// The primary leader-loss fault a seed injects. Each one must make the
/// standbys' promotion timer fire; each heals differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// `kill -9` the leader: no heal, no fence probe — the old leader is
    /// simply gone and the survivors carry the lineage.
    Kill,
    /// `SIGSTOP` the leader for `pause_ms` and sever its replication
    /// bridges (a frozen process keeps its sockets open, so the proxy
    /// tears them to model peers timing the leader out), then `SIGCONT` +
    /// heal. The revived leader must fence.
    Pause {
        /// How long the leader stays frozen.
        pause_ms: u64,
    },
    /// Black-hole the replication proxy for `partition_ms` while the
    /// leader keeps serving clients — the classic split-brain window: the
    /// isolated leader accepts `diverging_signals` more feedback signals
    /// that the standbys never see, then the partition heals and the old
    /// leader must fence with its divergent tail frozen.
    Partition {
        /// How long replication stays severed.
        partition_ms: u64,
        /// Feedback signals accepted by the isolated leader during the
        /// partition (its divergent WAL tail).
        diverging_signals: u64,
    },
}

impl Fault {
    /// Stable tag for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::Kill => "kill",
            Fault::Pause { .. } => "pause",
            Fault::Partition { .. } => "partition",
        }
    }

    /// Whether the old leader process survives the fault (and therefore
    /// must be fenced after heal).
    pub fn leader_survives(&self) -> bool {
        !matches!(self, Fault::Kill)
    }
}

/// Everything a seed decides. Derived once from the seed's RNG stream in
/// a fixed order — adding a draw changes every later schedule, so new
/// draws go at the end.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The seed this schedule was derived from.
    pub seed: u64,
    /// Feedback signals driven at the healthy leader before any fault.
    pub warmup_signals: u64,
    /// An optional benign delay window before the fault: the proxy delays
    /// every replicated chunk by this many milliseconds while two more
    /// signals flow (jitter must not trigger promotion).
    pub delay_ms: Option<u64>,
    /// The leader-loss fault.
    pub fault: Fault,
}

impl Schedule {
    /// Derives the schedule for `seed`.
    pub fn derive(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let warmup_signals = rng.range(6, 14);
        let delay_ms = if rng.chance(1, 2) {
            Some(rng.range(5, 30))
        } else {
            None
        };
        let fault = match rng.below(3) {
            0 => Fault::Kill,
            1 => Fault::Pause {
                pause_ms: rng.range(900, 1500),
            },
            _ => Fault::Partition {
                partition_ms: rng.range(900, 1500),
                diverging_signals: rng.range(3, 8),
            },
        };
        Self {
            seed,
            warmup_signals,
            delay_ms,
            fault,
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {}: {} warmup signals",
            self.seed, self.warmup_signals
        )?;
        if let Some(d) = self.delay_ms {
            write!(f, ", {d}ms replication delay window")?;
        }
        match &self.fault {
            Fault::Kill => write!(f, ", then kill -9 the leader"),
            Fault::Pause { pause_ms } => {
                write!(
                    f,
                    ", then SIGSTOP the leader for {pause_ms}ms (+ severed bridges), SIGCONT, heal"
                )
            }
            Fault::Partition {
                partition_ms,
                diverging_signals,
            } => write!(
                f,
                ", then partition replication for {partition_ms}ms while the isolated leader \
                 accepts {diverging_signals} diverging signals, heal"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic() {
        for seed in 0..64 {
            let a = Schedule::derive(seed);
            let b = Schedule::derive(seed);
            assert_eq!(a.warmup_signals, b.warmup_signals);
            assert_eq!(a.delay_ms, b.delay_ms);
            assert_eq!(a.fault, b.fault);
        }
    }

    #[test]
    fn all_fault_kinds_reachable_within_small_seed_range() {
        let kinds: std::collections::BTreeSet<&str> =
            (0..32).map(|s| Schedule::derive(s).fault.kind()).collect();
        assert!(kinds.contains("kill"));
        assert!(kinds.contains("pause"));
        assert!(kinds.contains("partition"));
    }
}
