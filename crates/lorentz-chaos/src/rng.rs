//! The harness's one RNG: SplitMix64. Every random choice the harness
//! makes — fault selection, durations, signal paths — draws from a single
//! stream seeded by `--seed`, so a seed fully determines the schedule and
//! a failing run replays with one command.

/// SplitMix64: tiny, fast, and good enough for schedule generation. Not
/// cryptographic, deliberately dependency-free.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose entire output is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            // Avoid the all-zero fixed point without losing determinism.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, n)`. The modulo bias is irrelevant at schedule
    /// scale (n is always tiny relative to 2^64).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// A value in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi >= lo);
        lo + self.below(hi - lo + 1)
    }

    /// A coin flip with probability `num/den` of `true`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..256 {
            let v = rng.range(3, 9);
            assert!((3..=9).contains(&v));
        }
    }
}
