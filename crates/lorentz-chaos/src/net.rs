//! Harness-side network clients: feedback load over the client wire
//! protocol, and raw subscribe probes against replication listeners. Both
//! reuse the production frame codec (`lorentz_serve::wire`) so the
//! harness speaks byte-for-byte what real clients and followers speak.

use crate::rng::SplitMix64;
use crate::ChaosError;
use lorentz_serve::wire;
use lorentz_types::{HandshakeRejection, SubscribeReply, SubscribeRequest};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const FRAME_CAP: usize = 1 << 20;

fn connect(addr: SocketAddr, timeout: Duration) -> Result<TcpStream, ChaosError> {
    let stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| ChaosError::Net(format!("connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| ChaosError::Net(format!("socket options on {addr}: {e}")))?;
    Ok(stream)
}

/// One feedback signal's wire JSON, with a seeded path so different seeds
/// exercise different λ keys.
fn feedback_json(rng: &mut SplitMix64) -> String {
    let customer = rng.range(1, 4);
    let subscription = rng.range(1, 3);
    let resource_group = rng.range(1, 5);
    let gamma: i64 = if rng.chance(1, 2) { 1 } else { -1 };
    format!(
        "{{\"gamma\": {gamma}, \"customer\": {customer}, \
         \"subscription\": {subscription}, \"resource_group\": {resource_group}}}"
    )
}

/// Drives `count` feedback signals at a leader's client port, waiting for
/// each `{"ack": "feedback"}` before sending the next. Returns how many
/// were acked; transport errors and rejection frames end the batch early
/// (the caller decides whether that is expected — e.g. a frozen leader).
pub fn drive_feedback(
    addr: SocketAddr,
    count: u64,
    rng: &mut SplitMix64,
    timeout: Duration,
) -> (u64, Vec<String>) {
    let mut acked = 0;
    let mut rejections = Vec::new();
    let mut stream = match connect(addr, timeout) {
        Ok(s) => s,
        Err(e) => return (0, vec![e.to_string()]),
    };
    for _ in 0..count {
        let payload = feedback_json(rng);
        if wire::write_frame(&mut stream, payload.as_bytes()).is_err() {
            rejections.push("write failed mid-batch".to_owned());
            break;
        }
        match wire::read_frame(&mut stream, FRAME_CAP) {
            Ok(reply) => {
                let text = String::from_utf8_lossy(&reply).into_owned();
                if text.contains("\"ack\"") {
                    acked += 1;
                } else {
                    rejections.push(text);
                }
            }
            Err(e) => {
                rejections.push(format!("no ack: {e}"));
                break;
            }
        }
    }
    (acked, rejections)
}

/// Sends one feedback frame and returns the raw reply text (ack or error
/// frame), for probing a leader expected to be fenced.
pub fn probe_feedback(
    addr: SocketAddr,
    rng: &mut SplitMix64,
    timeout: Duration,
) -> Result<String, ChaosError> {
    let mut stream = connect(addr, timeout)?;
    let payload = feedback_json(rng);
    wire::write_frame(&mut stream, payload.as_bytes())
        .map_err(|e| ChaosError::Net(format!("feedback probe write {addr}: {e}")))?;
    let reply = wire::read_frame(&mut stream, FRAME_CAP)
        .map_err(|e| ChaosError::Net(format!("feedback probe read {addr}: {e}")))?;
    Ok(String::from_utf8_lossy(&reply).into_owned())
}

/// Sends `{"op": "drain"}`, which makes a `--listen` leader drain and
/// exit after acking.
pub fn drain(addr: SocketAddr, timeout: Duration) -> Result<(), ChaosError> {
    let mut stream = connect(addr, timeout)?;
    wire::write_frame(&mut stream, br#"{"op": "drain"}"#)
        .map_err(|e| ChaosError::Net(format!("drain write {addr}: {e}")))?;
    let _ = wire::read_frame(&mut stream, FRAME_CAP);
    Ok(())
}

/// What a subscribe probe against a replication listener observed.
#[derive(Debug)]
pub enum ProbeOutcome {
    /// The leader accepted: it is unfenced and serving at this term.
    Ack {
        /// The leader's current term from the ack.
        leader_term: u64,
    },
    /// The leader refused with `stale_leader`: it is fenced (or was just
    /// fenced by this very probe, when the probe carries a higher term).
    Stale {
        /// The refusing leader's own term.
        leader_term: u64,
        /// The higher term it reported observing.
        observed_term: u64,
    },
    /// Some other typed rejection (e.g. `follower_ahead`).
    Rejected(String),
    /// Nothing is listening (or the handshake tore).
    Unreachable(String),
}

/// Handshakes with a replication listener as a subscriber that has
/// observed `term`, then disconnects. Probing with a term *above* the
/// leader's own is the fencing signal itself: the leader learns it has
/// been superseded and fences before replying.
pub fn probe_subscribe(
    addr: SocketAddr,
    last_epoch: u64,
    term: u64,
    timeout: Duration,
) -> ProbeOutcome {
    let mut stream = match connect(addr, timeout) {
        Ok(s) => s,
        Err(e) => return ProbeOutcome::Unreachable(e.to_string()),
    };
    let request = SubscribeRequest { last_epoch, term };
    let payload = serde_json::to_string(&request).expect("subscribe request serializes");
    if let Err(e) = wire::write_frame(&mut stream, payload.as_bytes()) {
        return ProbeOutcome::Unreachable(format!("handshake write: {e}"));
    }
    let reply = match wire::read_frame(&mut stream, FRAME_CAP) {
        Ok(r) => r,
        Err(e) => return ProbeOutcome::Unreachable(format!("handshake read: {e}")),
    };
    let text = match std::str::from_utf8(&reply) {
        Ok(t) => t,
        Err(_) => return ProbeOutcome::Unreachable("handshake reply not UTF-8".to_owned()),
    };
    match serde_json::from_str::<SubscribeReply>(text) {
        Ok(SubscribeReply::Ok(ack)) => ProbeOutcome::Ack {
            leader_term: ack.leader_term,
        },
        Ok(SubscribeReply::Err(HandshakeRejection::StaleLeader {
            leader_term,
            observed_term,
        })) => ProbeOutcome::Stale {
            leader_term,
            observed_term,
        },
        Ok(SubscribeReply::Err(other)) => ProbeOutcome::Rejected(other.to_string()),
        Err(e) => ProbeOutcome::Unreachable(format!("handshake reply unparsable: {e}")),
    }
}
