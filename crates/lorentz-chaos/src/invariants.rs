//! Post-heal invariant checking. Every check reads artifacts the real
//! system produced — on-disk WALs, process stderr ledgers, live handshake
//! probes — never harness-internal state, so a passing run certifies the
//! cluster itself.

use crate::net::ProbeOutcome;
use crate::schedule::{Fault, Schedule};
use crate::ChaosError;
use lorentz_core::SignalWal;
use std::path::{Path, PathBuf};

/// One node's WAL, loaded read-only after the run.
pub struct NodeWal {
    /// Role label ("leader", "standby0", ...).
    pub name: String,
    /// Where the log lives.
    pub path: PathBuf,
    /// The raw file bytes (for prefix comparisons).
    pub bytes: Vec<u8>,
    /// Byte length of the intact record prefix.
    pub intact_len: u64,
    /// Whether the tail is torn/corrupt.
    pub torn: bool,
    /// Delta epochs of signal records, in append order.
    pub epochs: Vec<u64>,
    /// Term markers, in append order, paired with their byte offsets.
    pub terms: Vec<(u64, u64)>,
}

impl NodeWal {
    /// Loads and verifies `path`.
    pub fn load(name: &str, path: &Path) -> Result<Self, ChaosError> {
        let bytes = std::fs::read(path).map_err(|e| ChaosError::Io {
            path: path.display().to_string(),
            source: e,
        })?;
        let report = SignalWal::verify(path)
            .map_err(|e| ChaosError::Net(format!("verify {}: {e}", path.display())))?;
        let intact_len = bytes.len() as u64 - report.trailing_bytes;
        let mut epochs = Vec::new();
        let mut terms = Vec::new();
        for r in &report.records {
            if let Some(e) = r.epoch {
                epochs.push(e);
            }
            if let Some(t) = r.term {
                terms.push((t, r.offset));
            }
        }
        Ok(Self {
            name: name.to_owned(),
            path: path.to_owned(),
            bytes,
            intact_len,
            torn: report.corrupt.is_some(),
            epochs,
            terms,
        })
    }

    /// The highest term marker in the log (0 when none).
    pub fn max_term(&self) -> u64 {
        self.terms.iter().map(|&(t, _)| t).max().unwrap_or(0)
    }

    /// The byte offset of the highest term marker, when present.
    fn max_term_offset(&self) -> Option<u64> {
        let max = self.max_term();
        self.terms
            .iter()
            .rev()
            .find(|&&(t, _)| t == max)
            .map(|&(_, off)| off)
    }
}

/// One standby's parsed exit ledger (the `followed ...` stderr line).
#[derive(Debug)]
pub struct StandbyLedger {
    /// Role label.
    pub name: String,
    /// Final replica state label ("leader", "following", "demoted ...",
    /// "halted: ...").
    pub state: String,
    /// The highest leader term the replica operated under.
    pub term: u64,
    /// Final served λ epoch.
    pub lambda_version: u64,
    /// Deltas that failed to apply for reasons other than idempotent
    /// re-delivery.
    pub skipped: u64,
    /// Idempotent re-delivered epochs counted, not applied.
    pub duplicates: u64,
}

fn digits_after(line: &str, marker: &str) -> Option<u64> {
    let start = line.rfind(marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn digits_before(line: &str, marker: &str) -> Option<u64> {
    let end = line.find(marker)?;
    let head = &line[..end];
    let start = head
        .rfind(|c: char| !c.is_ascii_digit())
        .map_or(0, |i| i + 1);
    head[start..].parse().ok()
}

impl StandbyLedger {
    /// Parses the final `followed ...` ledger line out of a standby's
    /// captured stderr.
    pub fn parse(name: &str, stderr: &[String]) -> Result<Self, ChaosError> {
        let line = stderr
            .iter()
            .rev()
            .find(|l| l.starts_with("followed "))
            .ok_or_else(|| {
                ChaosError::Timeout(format!(
                    "{name}: no 'followed ...' ledger on stderr; captured:\n{}",
                    stderr.join("\n")
                ))
            })?;
        let parse_err = |what: &str| {
            ChaosError::Timeout(format!("{name}: ledger line missing '{what}': {line}"))
        };
        let state_start = line
            .rfind("; state ")
            .ok_or_else(|| parse_err("; state "))?
            + "; state ".len();
        let state_end = line.rfind(", term ").ok_or_else(|| parse_err(", term "))?;
        Ok(Self {
            name: name.to_owned(),
            state: line[state_start..state_end].to_owned(),
            term: digits_after(line, ", term ").ok_or_else(|| parse_err("term"))?,
            lambda_version: digits_after(line, "lambda v").ok_or_else(|| parse_err("lambda v"))?,
            skipped: digits_before(line, " skipped").ok_or_else(|| parse_err("skipped"))?,
            duplicates: digits_before(line, " duplicates")
                .ok_or_else(|| parse_err("duplicates"))?,
        })
    }
}

/// What happened to the surviving old leader after heal (absent for the
/// kill fault, where no process survives to fence).
#[derive(Debug)]
pub struct OldLeaderOutcome {
    /// The fence probe (higher-term subscribe) was answered `stale_leader`.
    pub fence_reply_stale: bool,
    /// Raw reply to a post-fence feedback frame (must be a rejection
    /// mentioning the fence).
    pub feedback_reply: String,
    /// WAL size observed right after the fence probe.
    pub wal_size_at_fence: u64,
    /// WAL size after the node drained and exited.
    pub wal_size_final: u64,
    /// Whether the drain ledger reported the fence (`FENCED by term`).
    pub stderr_reported_fence: bool,
    /// The drained process's exit code.
    pub exit_code: Option<i32>,
    /// Feedback signals the isolated leader acked during the partition
    /// (its expected divergent-tail length).
    pub diverged_acked: u64,
}

/// Everything the checker consumes.
pub struct InvariantInput<'a> {
    /// The seed's schedule (fault kind gates several checks).
    pub schedule: &'a Schedule,
    /// The old leader's WAL.
    pub leader_wal: &'a NodeWal,
    /// Standby WALs, index-aligned with `ledgers`.
    pub standby_wals: &'a [NodeWal],
    /// Standby exit ledgers.
    pub ledgers: &'a [StandbyLedger],
    /// The promoted winner's term, read from the post-promotion ack.
    pub winner_term: u64,
    /// Final subscribe census: `(node, outcome)` per replication
    /// endpoint probed after heal + fencing.
    pub census: &'a [(String, ProbeOutcome)],
    /// The surviving old leader's post-heal outcome.
    pub old_leader: Option<&'a OldLeaderOutcome>,
}

/// Runs every invariant, returning human-readable violations (empty =
/// pass).
pub fn check(input: &InvariantInput<'_>) -> Vec<String> {
    let mut violations = Vec::new();
    let mut violation = |msg: String| violations.push(msg);

    // --- per-WAL integrity: clean tails (killed leader excepted), terms
    // strictly increasing, epochs strictly increasing and dense.
    let kill = matches!(input.schedule.fault, Fault::Kill);
    let all_wals = std::iter::once(input.leader_wal).chain(input.standby_wals.iter());
    for wal in all_wals {
        if wal.torn && !(kill && wal.name == input.leader_wal.name) {
            violation(format!(
                "{}: torn/corrupt WAL tail on a cleanly-stopped node ({})",
                wal.name,
                wal.path.display()
            ));
        }
        for pair in wal.terms.windows(2) {
            if pair[1].0 <= pair[0].0 {
                violation(format!(
                    "{}: term markers not strictly increasing ({} then {})",
                    wal.name, pair[0].0, pair[1].0
                ));
            }
        }
        for pair in wal.epochs.windows(2) {
            if pair[1] != pair[0] + 1 {
                violation(format!(
                    "{}: epochs not dense/monotonic ({} then {})",
                    wal.name, pair[0], pair[1]
                ));
            }
        }
    }

    // --- exactly one standby won the promotion; losers re-followed.
    let winners: Vec<&StandbyLedger> = input
        .ledgers
        .iter()
        .filter(|l| l.state == "leader")
        .collect();
    if winners.len() != 1 {
        violation(format!(
            "expected exactly one promoted standby, found {}: [{}]",
            winners.len(),
            input
                .ledgers
                .iter()
                .map(|l| format!("{}={}", l.name, l.state))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        return violations; // downstream checks need a unique winner
    }
    let winner = winners[0];
    let winner_wal = &input.standby_wals[input
        .ledgers
        .iter()
        .position(|l| l.state == "leader")
        .expect("winner exists")];

    if winner.term != input.winner_term {
        violation(format!(
            "{}: ledger term {} disagrees with promoted ack term {}",
            winner.name, winner.term, input.winner_term
        ));
    }
    if winner_wal.max_term() != input.winner_term {
        violation(format!(
            "{}: WAL max term {} != promoted term {}",
            winner.name,
            winner_wal.max_term(),
            input.winner_term
        ));
    }
    // Terms strictly increase across the promotion.
    if input.winner_term <= input.leader_wal.max_term() {
        violation(format!(
            "promotion did not advance the term: old leader at {}, winner at {}",
            input.leader_wal.max_term(),
            input.winner_term
        ));
    }

    for ledger in input.ledgers {
        if ledger.skipped != 0 {
            violation(format!(
                "{}: {} deltas skipped (corruption on the replication path)",
                ledger.name, ledger.skipped
            ));
        }
        if ledger.state == "leader" {
            continue;
        }
        if !ledger.state.starts_with("following") {
            violation(format!(
                "{}: expected to re-follow the winner, ended '{}'",
                ledger.name, ledger.state
            ));
        }
        if ledger.term != input.winner_term {
            violation(format!(
                "{}: never learned the winner's term (saw {}, winner at {})",
                ledger.name, ledger.term, input.winner_term
            ));
        }
    }

    // --- λ convergence across survivors: every survivor ends at the same
    // λ epoch, and loser WALs are byte-identical to the winner's (prefix
    // property degenerating to equality once caught up).
    let top_epoch = winner_wal.epochs.last().copied().unwrap_or(0);
    for (ledger, wal) in input.ledgers.iter().zip(input.standby_wals) {
        if ledger.lambda_version != winner.lambda_version {
            violation(format!(
                "λ divergence: {} at epoch {}, winner {} at {}",
                ledger.name, ledger.lambda_version, winner.name, winner.lambda_version
            ));
        }
        if wal.bytes != winner_wal.bytes {
            violation(format!(
                "{}: replica WAL differs from the winner's ({} vs {} bytes)",
                wal.name,
                wal.bytes.len(),
                winner_wal.bytes.len()
            ));
        }
    }
    if winner.lambda_version != top_epoch {
        violation(format!(
            "winner serves λ epoch {} but its WAL tops out at {}",
            winner.lambda_version, top_epoch
        ));
    }

    // --- prefix property against the old lineage: everything the winner
    // replicated before minting its term must sit verbatim in the old
    // leader's intact prefix.
    if let Some(marker_offset) = winner_wal.max_term_offset() {
        let common = marker_offset as usize;
        if input.leader_wal.intact_len < marker_offset {
            violation(format!(
                "old leader's intact WAL ({} bytes) is shorter than the replicated \
                 common prefix ({} bytes)",
                input.leader_wal.intact_len, marker_offset
            ));
        } else if input.leader_wal.bytes[..common] != winner_wal.bytes[..common] {
            violation(format!(
                "WAL fork before the fence point: first {common} bytes of {} and {} differ",
                input.leader_wal.name, winner_wal.name
            ));
        }
    } else {
        violation(format!(
            "{}: promoted winner's WAL carries no term marker",
            winner_wal.name
        ));
    }

    // --- at most one unfenced leader: the census must ack exactly once,
    // at the winner's term.
    let mut acks = 0;
    for (node, outcome) in input.census {
        match outcome {
            ProbeOutcome::Ack { leader_term } => {
                acks += 1;
                if *leader_term != input.winner_term {
                    violation(format!(
                        "{node}: unfenced at term {leader_term}, expected winner term {}",
                        input.winner_term
                    ));
                }
            }
            ProbeOutcome::Stale { .. } | ProbeOutcome::Unreachable(_) => {}
            ProbeOutcome::Rejected(why) => {
                violation(format!("{node}: unexpected census rejection: {why}"));
            }
        }
    }
    if acks != 1 {
        violation(format!(
            "split brain: {acks} unfenced leaders answered the census (want exactly 1)"
        ));
    }

    // --- the surviving old leader fenced itself and froze its WAL.
    match (input.schedule.fault.leader_survives(), input.old_leader) {
        (true, Some(old)) => {
            if !old.fence_reply_stale {
                violation(
                    "old leader did not answer the higher-term probe with stale_leader".to_owned(),
                );
            }
            if !old.feedback_reply.contains("fenced") {
                violation(format!(
                    "old leader accepted (or mislabeled) feedback after the fence: {}",
                    old.feedback_reply
                ));
            }
            if old.wal_size_final != old.wal_size_at_fence {
                violation(format!(
                    "post-heal WAL divergence: old leader's WAL grew from {} to {} bytes \
                     after fencing",
                    old.wal_size_at_fence, old.wal_size_final
                ));
            }
            if !old.stderr_reported_fence {
                violation("old leader's drain ledger did not report the fence".to_owned());
            }
            if old.exit_code != Some(0) {
                violation(format!(
                    "fenced leader should drain cleanly (exit 0), got {:?}",
                    old.exit_code
                ));
            }
            // Divergent tail accounting: the isolated leader's extra
            // signal records are exactly the diverging acks.
            let old_signals = input.leader_wal.epochs.len() as u64;
            let common_signals = winner_wal
                .epochs
                .iter()
                .filter(|&&e| input.leader_wal.epochs.contains(&e))
                .count() as u64;
            if old_signals != common_signals + old.diverged_acked {
                violation(format!(
                    "divergence ledger mismatch: old leader holds {} signals, \
                     {} common + {} acked-while-isolated expected",
                    old_signals, common_signals, old.diverged_acked
                ));
            }
        }
        (true, None) => violation(
            "fault leaves the old leader alive but no fence outcome was collected".to_owned(),
        ),
        (false, _) => {}
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_line_parses() {
        let stderr = vec![
            "following tcp://127.0.0.1:9 (caught up to epoch 4)".to_owned(),
            "followed tcp://127.0.0.1:9: 7 deltas applied, 0 skipped, 0 legacy signals \
             (lambda v8, last epoch 8); served 0 requests, 0 feedback rejected \
             (read-only); state following, term 2, 1 duplicates"
                .to_owned(),
        ];
        let ledger = StandbyLedger::parse("standby0", &stderr).unwrap();
        assert_eq!(ledger.state, "following");
        assert_eq!(ledger.term, 2);
        assert_eq!(ledger.lambda_version, 8);
        assert_eq!(ledger.skipped, 0);
        assert_eq!(ledger.duplicates, 1);
    }

    #[test]
    fn ledger_line_parses_demoted_state_with_embedded_terms() {
        let stderr = vec![
            "followed tcp://h:1: 3 deltas applied, 0 skipped, 0 legacy signals \
             (lambda v4, last epoch 4); served 1 requests, 2 feedback rejected \
             (read-only), 5 feedback applied (promoted leader); \
             state demoted (term 2 fenced by term 3), term 3, 0 duplicates"
                .to_owned(),
        ];
        let ledger = StandbyLedger::parse("s", &stderr).unwrap();
        assert_eq!(ledger.state, "demoted (term 2 fenced by term 3)");
        assert_eq!(ledger.term, 3);
        assert_eq!(ledger.duplicates, 0);
    }
}
