//! A built-in TCP fault proxy for the replication link. Standbys
//! subscribe to the proxy's listen address instead of the leader's
//! replication port, so the harness can sever, delay, or heal the
//! replication path without touching client traffic.
//!
//! Modes:
//! * **Forward** — pump bytes both ways unchanged.
//! * **Delay(d)** — pump, sleeping `d` before each forwarded chunk.
//! * **Blackhole** — tear every live bridge (both halves shut down) and
//!   refuse new connections by accepting-and-closing, so followers see a
//!   hard transport error immediately instead of hanging — exactly the
//!   signal their promotion timers count.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The proxy's current treatment of replication traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Pass bytes through unchanged.
    Forward,
    /// Pass bytes through after a per-chunk delay (milliseconds).
    Delay(u64),
    /// Sever everything; refuse new bridges.
    Blackhole,
}

struct ProxyState {
    mode: Mutex<Mode>,
    /// Epoch counter bumped on every blackhole so pump threads notice a
    /// severing that happened while they were blocked in `read`.
    generation: AtomicU64,
    /// Live streams to tear on blackhole (client and upstream halves).
    bridges: Mutex<Vec<TcpStream>>,
    stop: AtomicBool,
}

/// A running fault proxy in front of one upstream address.
pub struct FaultProxy {
    local: SocketAddr,
    state: Arc<ProxyState>,
    accept_handle: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts the proxy on an ephemeral local port, forwarding to
    /// `upstream`.
    pub fn start(upstream: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ProxyState {
            mode: Mutex::new(Mode::Forward),
            generation: AtomicU64::new(0),
            bridges: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let accept_handle = std::thread::Builder::new()
            .name("chaos-proxy-accept".to_owned())
            .spawn(move || accept_loop(listener, upstream, accept_state))?;
        Ok(Self {
            local,
            state,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address standbys should subscribe to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Severs every live bridge and refuses new ones until [`heal`].
    ///
    /// [`heal`]: FaultProxy::heal
    pub fn blackhole(&self) {
        *self.state.mode.lock().expect("proxy mode poisoned") = Mode::Blackhole;
        self.state.generation.fetch_add(1, Ordering::AcqRel);
        let mut bridges = self.state.bridges.lock().expect("proxy bridges poisoned");
        for stream in bridges.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Delays each forwarded chunk by `ms` milliseconds (both directions).
    pub fn delay(&self, ms: u64) {
        *self.state.mode.lock().expect("proxy mode poisoned") = Mode::Delay(ms);
    }

    /// Returns to transparent forwarding; new subscriptions succeed again.
    pub fn heal(&self) {
        *self.state.mode.lock().expect("proxy mode poisoned") = Mode::Forward;
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::Release);
        self.blackhole();
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, upstream: SocketAddr, state: Arc<ProxyState>) {
    while !state.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                let mode = *state.mode.lock().expect("proxy mode poisoned");
                if mode == Mode::Blackhole {
                    // Refuse loudly: an immediate close is a transport
                    // error the follower's redial loop sees right away.
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let upstream_stream =
                    match TcpStream::connect_timeout(&upstream, Duration::from_millis(500)) {
                        Ok(s) => s,
                        Err(_) => {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        }
                    };
                bridge(client, upstream_stream, &state);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Wires one client↔upstream bridge with a pump thread per direction.
fn bridge(client: TcpStream, upstream: TcpStream, state: &Arc<ProxyState>) {
    let pairs = match (client.try_clone(), upstream.try_clone()) {
        (Ok(client_clone), Ok(upstream_clone)) => {
            [(client, upstream_clone), (upstream, client_clone)]
        }
        _ => return,
    };
    {
        let mut bridges = state.bridges.lock().expect("proxy bridges poisoned");
        for (reader, writer) in &pairs {
            if let (Ok(r), Ok(w)) = (reader.try_clone(), writer.try_clone()) {
                bridges.push(r);
                bridges.push(w);
            }
        }
    }
    for (reader, writer) in pairs {
        let pump_state = Arc::clone(state);
        let _ = std::thread::Builder::new()
            .name("chaos-proxy-pump".to_owned())
            .spawn(move || pump(reader, writer, pump_state));
    }
}

fn pump(mut reader: TcpStream, mut writer: TcpStream, state: Arc<ProxyState>) {
    // A read timeout keeps the pump responsive to blackhole generations
    // even when the link is idle.
    let _ = reader.set_read_timeout(Some(Duration::from_millis(50)));
    let started_gen = state.generation.load(Ordering::Acquire);
    let mut buf = [0u8; 4096];
    loop {
        if state.stop.load(Ordering::Acquire)
            || state.generation.load(Ordering::Acquire) != started_gen
        {
            break;
        }
        let n = match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let mode = *state.mode.lock().expect("proxy mode poisoned");
        match mode {
            Mode::Blackhole => break,
            Mode::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
            Mode::Forward => {}
        }
        if writer.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = reader.shutdown(Shutdown::Both);
    let _ = writer.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An echo upstream: whatever arrives is written back.
    fn echo_upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                std::thread::spawn(move || {
                    let mut stream = stream;
                    let mut buf = [0u8; 256];
                    while let Ok(n) = stream.read(&mut buf) {
                        if n == 0 || stream.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, handle)
    }

    #[test]
    fn forwards_then_blackholes_then_heals() {
        let (upstream, _handle) = echo_upstream();
        let proxy = FaultProxy::start(upstream).unwrap();

        let mut conn = TcpStream::connect(proxy.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        conn.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Blackhole: the live bridge tears and a fresh connect is refused
        // (accept-then-close reads as EOF / reset).
        proxy.blackhole();
        std::thread::sleep(Duration::from_millis(50));
        let mut torn = [0u8; 1];
        let torn_read = conn.read(&mut torn);
        assert!(
            matches!(torn_read, Ok(0) | Err(_)),
            "bridge must be severed"
        );
        let mut refused = TcpStream::connect(proxy.local_addr()).unwrap();
        refused
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let _ = refused.write_all(b"ping");
        let refused_read = refused.read(&mut torn);
        assert!(
            matches!(refused_read, Ok(0) | Err(_)),
            "new bridges refused"
        );

        // Heal: traffic flows again.
        proxy.heal();
        let mut healed = TcpStream::connect(proxy.local_addr()).unwrap();
        healed
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        healed.write_all(b"pong").unwrap();
        healed.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }
}
