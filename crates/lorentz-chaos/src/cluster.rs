//! Real-process cluster members. The harness spawns actual `lorentz`
//! binaries (leader + standbys) so the chaos run exercises exactly the
//! code paths production would: process death is `kill -9`, a frozen
//! leader is `SIGSTOP`, and every stderr line the operators would see is
//! captured for the post-run invariant checks.

use crate::ChaosError;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One spawned cluster member with live-captured stderr/stdout.
pub struct Node {
    /// Role label for reports ("leader", "standby0", ...).
    pub name: String,
    child: Child,
    stderr_lines: Arc<Mutex<Vec<String>>>,
    stdout_lines: Arc<Mutex<Vec<String>>>,
    /// Filled by `wait`/`try_wait`; `kill -9` reports the signal status.
    exit_code: Option<Option<i32>>,
}

impl Node {
    /// Spawns `binary` with `args`, capturing stderr and stdout line by
    /// line on reader threads (so a chatty child never blocks on a full
    /// pipe).
    pub fn spawn(
        name: &str,
        binary: &Path,
        args: &[String],
        envs: &[(String, String)],
    ) -> Result<Self, ChaosError> {
        let mut command = Command::new(binary);
        command
            .args(args)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in envs {
            command.env(k, v);
        }
        let mut child = command.spawn().map_err(|e| ChaosError::Spawn {
            node: name.to_owned(),
            source: e,
        })?;
        let stderr_lines = capture(child.stderr.take(), name);
        let stdout_lines = capture(child.stdout.take(), name);
        Ok(Self {
            name: name.to_owned(),
            child,
            stderr_lines,
            stdout_lines,
            exit_code: None,
        })
    }

    /// The OS process id (for signals).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// Blocks until a stderr line containing `marker` appears, returning
    /// it. Lines keep accumulating while we wait.
    pub fn wait_for_stderr(&self, marker: &str, timeout: Duration) -> Result<String, ChaosError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(line) = self.find_stderr(marker) {
                return Ok(line);
            }
            if Instant::now() >= deadline {
                return Err(ChaosError::Timeout(format!(
                    "{}: no '{marker}' on stderr within {timeout:?}; captured so far:\n{}",
                    self.name,
                    self.stderr().join("\n")
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// The first captured stderr line containing `marker`, if any yet.
    pub fn find_stderr(&self, marker: &str) -> Option<String> {
        self.stderr_lines
            .lock()
            .expect("stderr capture poisoned")
            .iter()
            .find(|l| l.contains(marker))
            .cloned()
    }

    /// Everything captured on stderr so far.
    pub fn stderr(&self) -> Vec<String> {
        self.stderr_lines
            .lock()
            .expect("stderr capture poisoned")
            .clone()
    }

    /// Everything captured on stdout so far.
    pub fn stdout(&self) -> Vec<String> {
        self.stdout_lines
            .lock()
            .expect("stdout capture poisoned")
            .clone()
    }

    /// `kill -9`: the process is gone, no shutdown path runs.
    pub fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.exit_code = Some(None);
    }

    /// Sends a POSIX signal by name ("STOP", "CONT") via `kill(1)` —
    /// `std::process` exposes no raw-signal API and the harness is
    /// Linux-only anyway.
    pub fn signal(&self, sig: &str) -> Result<(), ChaosError> {
        let status = Command::new("kill")
            .arg(format!("-{sig}"))
            .arg(self.pid().to_string())
            .status()
            .map_err(|e| ChaosError::Spawn {
                node: format!("kill -{sig} {}", self.name),
                source: e,
            })?;
        if !status.success() {
            return Err(ChaosError::Timeout(format!(
                "kill -{sig} {} ({}) failed with {status}",
                self.name,
                self.pid()
            )));
        }
        Ok(())
    }

    /// Waits for the child to exit on its own, up to `timeout`. Returns
    /// the exit code (`None` = killed by signal).
    pub fn wait_exit(&mut self, timeout: Duration) -> Result<Option<i32>, ChaosError> {
        if let Some(code) = self.exit_code {
            return Ok(code);
        }
        let deadline = Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => {
                    let code = status.code();
                    self.exit_code = Some(code);
                    return Ok(code);
                }
                Ok(None) => {
                    if Instant::now() >= deadline {
                        return Err(ChaosError::Timeout(format!(
                            "{} did not exit within {timeout:?}; stderr so far:\n{}",
                            self.name,
                            self.stderr().join("\n")
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    return Err(ChaosError::Spawn {
                        node: format!("wait {}", self.name),
                        source: e,
                    });
                }
            }
        }
    }

    /// Whether the process has already exited.
    pub fn exited(&mut self) -> bool {
        if self.exit_code.is_some() {
            return true;
        }
        match self.child.try_wait() {
            Ok(Some(status)) => {
                self.exit_code = Some(status.code());
                true
            }
            _ => false,
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        if self.exit_code.is_none() {
            // A SIGSTOPped child ignores SIGKILL delivery ordering quirks
            // if left stopped; continue it first so the kill lands.
            let _ = self.signal("CONT");
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Spawns a reader thread draining one child pipe into a shared line
/// buffer.
fn capture<R: std::io::Read + Send + 'static>(
    pipe: Option<R>,
    name: &str,
) -> Arc<Mutex<Vec<String>>> {
    let lines = Arc::new(Mutex::new(Vec::new()));
    if let Some(pipe) = pipe {
        let sink = Arc::clone(&lines);
        let thread_name = format!("chaos-capture-{name}");
        let _ = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let reader = BufReader::new(pipe);
                for line in reader.lines() {
                    match line {
                        Ok(line) => sink.lock().expect("capture poisoned").push(line),
                        Err(_) => break,
                    }
                }
            });
    }
    lines
}
