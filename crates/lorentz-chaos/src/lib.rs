//! Seeded cluster chaos harness for the Lorentz serving stack.
//!
//! `lorentz chaos --seed N` spawns a **real** cluster out of the already-
//! built binaries — one leader (`serve --listen` with a feedback WAL and
//! a replication listener) and standbys (`serve --follow` with replica
//! WALs and armed promotion) — drives feedback load over the production
//! wire protocol, injects a seeded fault schedule (kill -9, SIGSTOP, a
//! replication partition through a built-in TCP fault proxy, benign delay
//! windows), heals, and then checks cluster-wide invariants:
//!
//! 1. **At most one unfenced leader** answers a subscribe census, and it
//!    serves at the winner's term.
//! 2. **Terms strictly increase** across promotions, in every WAL.
//! 3. **Epoch monotonicity**: delta epochs in every WAL are strictly
//!    increasing and dense.
//! 4. **Replica-WAL prefix property**: everything the winner replicated
//!    before minting its term sits verbatim in the old leader's log, and
//!    caught-up losers hold byte-identical copies of the winner's log.
//! 5. **λ convergence**: every survivor ends at the same λ epoch.
//! 6. **Exact ledgers**: no skipped deltas, the fenced leader drains
//!    cleanly with a frozen WAL, and the isolated leader's divergent tail
//!    is exactly the feedback it acked while partitioned.
//!
//! Every random choice draws from one SplitMix64 stream seeded by
//! `--seed`, so any violation replays with the same command; the failing
//! seed and its full schedule are printed on the way out.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod invariants;
pub mod net;
pub mod proxy;
pub mod rng;
pub mod schedule;

use cluster::Node;
use invariants::{InvariantInput, NodeWal, OldLeaderOutcome, StandbyLedger};
use net::ProbeOutcome;
use proxy::FaultProxy;
use rng::SplitMix64;
use schedule::{Fault, Schedule};
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use thiserror::Error;

/// Harness-level failures: the run could not be carried to the invariant
/// checks at all. Invariant *violations* are data (see
/// [`SeedReport::violations`]), not errors.
#[derive(Debug, Error)]
pub enum ChaosError {
    /// Spawning or signalling a cluster member failed.
    #[error("failed to launch {node}: {source}")]
    Spawn {
        /// Which node (or signal invocation).
        node: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// A filesystem step failed.
    #[error("{path}: {source}")]
    Io {
        /// The path involved.
        path: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// A harness-side network step failed.
    #[error("{0}")]
    Net(String),
    /// An expected event never happened.
    #[error("{0}")]
    Timeout(String),
    /// Building the shared model fixture failed.
    #[error("fixture: {0}")]
    Fixture(String),
}

/// Knobs for a chaos run. Everything else derives from the seed.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The `lorentz` binary to spawn cluster members from.
    pub binary: PathBuf,
    /// A pre-trained model to reuse (built once into the work dir when
    /// absent).
    pub model: Option<PathBuf>,
    /// Where per-seed scratch dirs live (a temp dir when absent).
    pub work_dir: Option<PathBuf>,
    /// Number of standbys racing for promotion.
    pub standbys: usize,
    /// How long each standby stays alive after catch-up (the scenario
    /// must fit inside this window).
    pub run_ms: u64,
    /// Leader-loss detection timeout handed to the standbys.
    pub promote_after_ms: u64,
    /// Keep scratch dirs even on a passing run.
    pub keep_work_dir: bool,
    /// `LORENTZ_FAILPOINTS` spec for the leader process (torn frames,
    /// disk faults); requires a fault-injection build of the binary.
    pub failpoints: Option<String>,
}

impl ChaosConfig {
    /// Defaults around `binary`: two standbys, 9 s scenario window,
    /// 400 ms promotion timeout.
    pub fn new(binary: impl Into<PathBuf>) -> Self {
        Self {
            binary: binary.into(),
            model: None,
            work_dir: None,
            standbys: 2,
            run_ms: 9000,
            promote_after_ms: 400,
            keep_work_dir: false,
            failpoints: None,
        }
    }
}

/// What one seed's run produced.
#[derive(Debug)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// The derived schedule (echoed for replay).
    pub schedule: Schedule,
    /// Feedback signals acked by the healthy leader before the fault.
    pub warmup_acked: u64,
    /// Feedback signals acked by the isolated leader during a partition.
    pub diverged_acked: u64,
    /// The promoted winner's term.
    pub winner_term: u64,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
    /// Where the seed's artifacts live (kept when violations are present
    /// or the config says keep).
    pub work_dir: PathBuf,
}

impl SeedReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Builds the shared model fixture at `path`: a small synthetic fleet
/// trained through the full pipeline, saved as the deployment every
/// cluster member loads.
pub fn build_fixture(path: &Path) -> Result<(), ChaosError> {
    use lorentz_core::{LorentzConfig, LorentzPipeline};
    let fleet_config = lorentz_simdata::fleet::FleetConfig {
        n_servers: 120,
        seed: 7,
        ..lorentz_simdata::fleet::FleetConfig::default()
    };
    let synthetic = fleet_config
        .generate()
        .map_err(|e| ChaosError::Fixture(e.to_string()))?;
    let mut config = LorentzConfig::paper_defaults();
    config.hierarchical.min_bucket = 3;
    config.target_encoding.boosting.n_trees = 8;
    let trained = LorentzPipeline::new(config)
        .and_then(|p| p.train(&synthetic.fleet))
        .map_err(|e| ChaosError::Fixture(e.to_string()))?;
    let json = trained
        .to_json()
        .map_err(|e| ChaosError::Fixture(e.to_string()))?;
    std::fs::write(path, json).map_err(|e| ChaosError::Io {
        path: path.display().to_string(),
        source: e,
    })
}

fn parse_addr(line: &str, what: &str) -> Result<SocketAddr, ChaosError> {
    line.split_whitespace()
        .nth(2)
        .and_then(|tok| tok.parse().ok())
        .ok_or_else(|| ChaosError::Timeout(format!("cannot parse {what} address from '{line}'")))
}

/// Picks a free TCP port for the shared promotion listen address. The
/// listener is dropped before the standbys race to rebind it — a benign
/// TOCTOU for a test harness.
fn free_port() -> Result<SocketAddr, ChaosError> {
    let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| ChaosError::Io {
        path: "127.0.0.1:0".to_owned(),
        source: e,
    })?;
    listener.local_addr().map_err(|e| ChaosError::Io {
        path: "promotion port".to_owned(),
        source: e,
    })
}

fn wal_max_epoch(path: &Path) -> u64 {
    lorentz_core::SignalWal::verify(path)
        .map(|r| {
            r.records
                .iter()
                .filter_map(|rec| rec.epoch)
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Polls `predicate` every 50 ms until it holds or `timeout` passes.
fn wait_until(
    what: &str,
    timeout: Duration,
    mut predicate: impl FnMut() -> bool,
) -> Result<(), ChaosError> {
    let deadline = Instant::now() + timeout;
    loop {
        if predicate() {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(ChaosError::Timeout(format!(
                "gave up waiting for {what} after {timeout:?}"
            )));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Runs one seed end to end: spawn, load, fault, heal, fence, check.
pub fn run_seed(seed: u64, config: &ChaosConfig) -> Result<SeedReport, ChaosError> {
    let schedule = Schedule::derive(seed);
    let mut rng = SplitMix64::new(seed ^ 0x000C_4A05_u64);
    let io_timeout = Duration::from_secs(5);
    let log = |msg: &str| eprintln!("chaos seed {seed}: {msg}");
    log(&format!("schedule: {schedule}"));

    // --- scratch dir + fixture -------------------------------------------
    let base = config.work_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("lorentz-chaos-{}", std::process::id()))
    });
    let dir = base.join(format!("seed-{seed}"));
    std::fs::create_dir_all(&dir).map_err(|e| ChaosError::Io {
        path: dir.display().to_string(),
        source: e,
    })?;
    let model = match &config.model {
        Some(path) => path.clone(),
        None => {
            let path = base.join("model.json");
            if !path.exists() {
                log("training the shared model fixture (reused across seeds)");
                build_fixture(&path)?;
            }
            path
        }
    };
    let empty_requests = dir.join("empty.ndjson");
    std::fs::write(&empty_requests, b"").map_err(|e| ChaosError::Io {
        path: empty_requests.display().to_string(),
        source: e,
    })?;

    // --- leader ----------------------------------------------------------
    let leader_wal = dir.join("leader.wal");
    let mut leader_env = Vec::new();
    if let Some(spec) = &config.failpoints {
        leader_env.push(("LORENTZ_FAILPOINTS".to_owned(), spec.clone()));
    }
    let mut leader = Node::spawn(
        "leader",
        &config.binary,
        &[
            "serve".into(),
            "--model".into(),
            model.display().to_string(),
            "--listen".into(),
            "127.0.0.1:0".into(),
            "--feedback-wal".into(),
            leader_wal.display().to_string(),
            "--replicate-listen".into(),
            "tcp://127.0.0.1:0".into(),
        ],
        &leader_env,
    )?;
    let client_addr = parse_addr(
        &leader.wait_for_stderr("listening on ", io_timeout)?,
        "client",
    )?;
    let repl_addr = parse_addr(
        &leader.wait_for_stderr("replicating on ", io_timeout)?,
        "replication",
    )?;
    log(&format!(
        "leader up: clients {client_addr}, replication {repl_addr}"
    ));

    // --- fault proxy + standbys ------------------------------------------
    let proxy = FaultProxy::start(repl_addr).map_err(|e| ChaosError::Io {
        path: "fault proxy".to_owned(),
        source: e,
    })?;
    let promote_addr = free_port()?;
    let mut standbys = Vec::new();
    let mut standby_wal_paths = Vec::new();
    for i in 0..config.standbys {
        let name = format!("standby{i}");
        let wal = dir.join(format!("{name}.wal"));
        let node = Node::spawn(
            &name,
            &config.binary,
            &[
                "serve".into(),
                "--model".into(),
                model.display().to_string(),
                "--requests".into(),
                empty_requests.display().to_string(),
                "--follow".into(),
                format!("tcp://{}", proxy.local_addr()),
                "--replica-wal".into(),
                wal.display().to_string(),
                "--promote-listen".into(),
                promote_addr.to_string(),
                "--promote-after-ms".into(),
                config.promote_after_ms.to_string(),
                "--run-ms".into(),
                config.run_ms.to_string(),
            ],
            &[],
        )?;
        node.wait_for_stderr("following ", io_timeout)?;
        standby_wal_paths.push(wal);
        standbys.push(node);
    }
    log(&format!(
        "{} standbys following through the fault proxy at {}",
        standbys.len(),
        proxy.local_addr()
    ));

    // --- warmup load + replication barrier -------------------------------
    let (warmup_acked, warmup_errors) =
        net::drive_feedback(client_addr, schedule.warmup_signals, &mut rng, io_timeout);
    if warmup_acked != schedule.warmup_signals {
        return Err(ChaosError::Net(format!(
            "healthy leader acked only {warmup_acked}/{} warmup signals: {:?}",
            schedule.warmup_signals, warmup_errors
        )));
    }
    let mut total_acked = warmup_acked;

    // Benign delay window: replication jitter must not trip promotion.
    if let Some(ms) = schedule.delay_ms {
        proxy.delay(ms);
        let (acked, errors) = net::drive_feedback(client_addr, 2, &mut rng, io_timeout);
        if acked != 2 {
            return Err(ChaosError::Net(format!(
                "leader refused feedback during the delay window: {errors:?}"
            )));
        }
        total_acked += acked;
        proxy.heal();
    }
    // Barrier: every standby holds the leader's full log before the fault,
    // so post-fault invariants start from a known-replicated state.
    let leader_top = wal_max_epoch(&leader_wal);
    for wal in &standby_wal_paths {
        let wal = wal.clone();
        wait_until("pre-fault replication barrier", io_timeout, || {
            wal_max_epoch(&wal) >= leader_top
        })?;
    }
    log(&format!(
        "warmup done: {total_acked} signals acked, all standbys at epoch {leader_top}"
    ));

    // --- fault -----------------------------------------------------------
    let mut diverged_acked = 0;
    let fault_started = Instant::now();
    match &schedule.fault {
        Fault::Kill => {
            log("fault: kill -9 the leader");
            leader.kill9();
            proxy.blackhole();
        }
        Fault::Pause { pause_ms } => {
            log(&format!(
                "fault: SIGSTOP the leader for {pause_ms}ms + sever bridges"
            ));
            leader.signal("STOP")?;
            proxy.blackhole();
        }
        Fault::Partition {
            partition_ms,
            diverging_signals,
        } => {
            log(&format!(
                "fault: partition replication for {partition_ms}ms, {diverging_signals} \
                 diverging signals at the isolated leader"
            ));
            proxy.blackhole();
            let (acked, _) =
                net::drive_feedback(client_addr, *diverging_signals, &mut rng, io_timeout);
            diverged_acked = acked;
        }
    }

    // --- promotion -------------------------------------------------------
    let mut winner_term = 0;
    wait_until(
        "a standby to win the promotion race",
        Duration::from_secs(8),
        || match net::probe_subscribe(promote_addr, 0, 0, Duration::from_millis(500)) {
            ProbeOutcome::Ack { leader_term } => {
                winner_term = leader_term;
                true
            }
            _ => false,
        },
    )?;
    log(&format!("a standby promoted itself at term {winner_term}"));

    // --- heal ------------------------------------------------------------
    match &schedule.fault {
        Fault::Kill => {}
        Fault::Pause { pause_ms } => {
            let elapsed = fault_started.elapsed();
            let hold = Duration::from_millis(*pause_ms);
            if elapsed < hold {
                std::thread::sleep(hold - elapsed);
            }
            leader.signal("CONT")?;
            proxy.heal();
            log("heal: SIGCONT + bridges restored");
        }
        Fault::Partition { partition_ms, .. } => {
            let elapsed = fault_started.elapsed();
            let hold = Duration::from_millis(*partition_ms);
            if elapsed < hold {
                std::thread::sleep(hold - elapsed);
            }
            proxy.heal();
            log("heal: partition lifted");
        }
    }

    // --- fence the surviving old leader ----------------------------------
    let old_leader_outcome = if schedule.fault.leader_survives() {
        let fence = net::probe_subscribe(repl_addr, 0, winner_term, io_timeout);
        let fence_reply_stale = matches!(fence, ProbeOutcome::Stale { .. });
        let wal_size_at_fence = file_len(&leader_wal);
        let feedback_reply = net::probe_feedback(client_addr, &mut rng, io_timeout)
            .unwrap_or_else(|e| format!("probe failed: {e}"));
        Some((fence_reply_stale, wal_size_at_fence, feedback_reply))
    } else {
        None
    };

    // --- census: who still answers a subscribe, and at what term? --------
    let census = vec![
        (
            "old-leader".to_owned(),
            net::probe_subscribe(repl_addr, 0, 0, Duration::from_millis(800)),
        ),
        (
            "winner".to_owned(),
            net::probe_subscribe(promote_addr, 0, 0, Duration::from_millis(800)),
        ),
    ];

    // --- drain the fenced leader and let the losers settle ---------------
    let old_leader = match old_leader_outcome {
        Some((fence_reply_stale, wal_size_at_fence, feedback_reply)) => {
            net::drain(client_addr, io_timeout)?;
            let exit_code = leader.wait_exit(Duration::from_secs(10))?;
            let stderr_reported_fence = leader.find_stderr("FENCED by term").is_some();
            Some(OldLeaderOutcome {
                fence_reply_stale,
                feedback_reply,
                wal_size_at_fence,
                wal_size_final: file_len(&leader_wal),
                stderr_reported_fence,
                exit_code,
                diverged_acked,
            })
        }
        None => None,
    };

    // Settle: caught-up losers hold byte-identical copies of the winner's
    // WAL. We cannot know which standby won until the ledgers print, so
    // wait for every pair to converge.
    let settle = Duration::from_secs(5);
    for wal in &standby_wal_paths {
        let reference = standby_wal_paths[0].clone();
        let wal = wal.clone();
        wait_until("loser WALs to converge on the winner's", settle, || {
            std::fs::read(&reference).ok() == std::fs::read(&wal).ok()
        })?;
    }

    // --- collect ledgers and artifacts -----------------------------------
    let mut ledgers = Vec::new();
    for node in &mut standbys {
        let code = node.wait_exit(Duration::from_millis(config.run_ms + 8000))?;
        if code != Some(0) {
            return Err(ChaosError::Timeout(format!(
                "{} exited {:?}; stderr:\n{}",
                node.name,
                code,
                node.stderr().join("\n")
            )));
        }
        ledgers.push(StandbyLedger::parse(&node.name, &node.stderr())?);
    }
    let leader_node_wal = NodeWal::load("leader", &leader_wal)?;
    let standby_wals = standby_wal_paths
        .iter()
        .enumerate()
        .map(|(i, path)| NodeWal::load(&format!("standby{i}"), path))
        .collect::<Result<Vec<_>, _>>()?;

    let violations = invariants::check(&InvariantInput {
        schedule: &schedule,
        leader_wal: &leader_node_wal,
        standby_wals: &standby_wals,
        ledgers: &ledgers,
        winner_term,
        census: &census,
        old_leader: old_leader.as_ref(),
    });

    if violations.is_empty() && !config.keep_work_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(SeedReport {
        seed,
        schedule,
        warmup_acked: total_acked,
        diverged_acked,
        winner_term,
        violations,
        work_dir: dir,
    })
}
