//! Multi-resource usage traces.

use crate::aggregate::Aggregator;
use crate::binning::{bin_series, EmptyBinPolicy};
use crate::series::{RawSeries, RegularSeries};
use lorentz_types::{Capacity, LorentzError, ResourceSpace};
use serde::{Deserialize, Serialize};

/// The regular usage signal `w[n]` of one DB across all resource dimensions
/// of a [`ResourceSpace`]: one aligned [`RegularSeries`] per dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageTrace {
    space: ResourceSpace,
    series: Vec<RegularSeries>,
}

impl UsageTrace {
    /// Bundles per-dimension regular series into a trace.
    ///
    /// # Errors
    /// Returns [`LorentzError`] if the series count does not match the space,
    /// or the series disagree on bin width or length.
    pub fn new(space: ResourceSpace, series: Vec<RegularSeries>) -> Result<Self, LorentzError> {
        if series.len() != space.len() {
            return Err(LorentzError::DimensionMismatch {
                expected: space.len(),
                got: series.len(),
            });
        }
        let bin = series[0].bin_seconds();
        let len = series[0].len();
        for s in &series[1..] {
            if (s.bin_seconds() - bin).abs() > 1e-9 || s.len() != len {
                return Err(LorentzError::InvalidTelemetry(
                    "trace series must share bin width and length".into(),
                ));
            }
        }
        Ok(Self { space, series })
    }

    /// Bins one raw series per dimension into an aligned trace (Eq. 2 applied
    /// per resource).
    ///
    /// # Errors
    /// Propagates binning failures; also fails if the binned series end up
    /// with different lengths (raw series covering different spans).
    pub fn from_raw(
        space: ResourceSpace,
        raw: &[RawSeries],
        bin_seconds: f64,
        aggregator: Aggregator,
        empty_policy: EmptyBinPolicy,
    ) -> Result<Self, LorentzError> {
        if raw.len() != space.len() {
            return Err(LorentzError::DimensionMismatch {
                expected: space.len(),
                got: raw.len(),
            });
        }
        let series = raw
            .iter()
            .map(|r| bin_series(r, bin_seconds, aggregator, empty_policy))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(space, series)
    }

    /// A single-dimension (vCores) trace — the paper's evaluation setting.
    pub fn single(series: RegularSeries) -> Self {
        Self {
            space: ResourceSpace::vcores_only(),
            series: vec![series],
        }
    }

    /// The resource space.
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// The signal for dimension index `r`.
    pub fn resource(&self, r: usize) -> &RegularSeries {
        &self.series[r]
    }

    /// Number of resource dimensions.
    pub fn dims(&self) -> usize {
        self.series.len()
    }

    /// Number of time bins.
    pub fn bins(&self) -> usize {
        self.series[0].len()
    }

    /// Bin width in seconds.
    pub fn bin_seconds(&self) -> f64 {
        self.series[0].bin_seconds()
    }

    /// Per-dimension peak usage — the tightest capacity that would never
    /// throttle at `η = 1`.
    pub fn peak(&self) -> Vec<f64> {
        self.series.iter().map(RegularSeries::max_value).collect()
    }

    /// Per-dimension mean usage.
    pub fn mean(&self) -> Vec<f64> {
        self.series.iter().map(RegularSeries::mean_value).collect()
    }

    /// Censors every dimension at the corresponding capacity entry (Eq. 1).
    ///
    /// # Errors
    /// Returns a dimension mismatch if `cap` has the wrong arity.
    pub fn censored(&self, cap: &Capacity) -> Result<UsageTrace, LorentzError> {
        cap.check_space(&self.space)?;
        Ok(UsageTrace {
            space: self.space.clone(),
            series: self
                .series
                .iter()
                .enumerate()
                .map(|(r, s)| s.censored(cap.get(r)))
                .collect(),
        })
    }

    /// Scales every dimension by `factor` (§5.2 upscaling).
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidTelemetry`] for invalid factors.
    pub fn scaled(&self, factor: f64) -> Result<UsageTrace, LorentzError> {
        Ok(UsageTrace {
            space: self.space.clone(),
            series: self
                .series
                .iter()
                .map(|s| s.scaled(factor))
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(values: &[f64]) -> RegularSeries {
        RegularSeries::new(300.0, values.to_vec()).unwrap()
    }

    #[test]
    fn trace_requires_aligned_series() {
        let space = ResourceSpace::vcores_memory();
        assert!(UsageTrace::new(space.clone(), vec![reg(&[1.0])]).is_err());
        let mismatched_len = vec![reg(&[1.0, 2.0]), reg(&[1.0])];
        assert!(UsageTrace::new(space.clone(), mismatched_len).is_err());
        let mismatched_bin = vec![reg(&[1.0]), RegularSeries::new(60.0, vec![1.0]).unwrap()];
        assert!(UsageTrace::new(space.clone(), mismatched_bin).is_err());
        assert!(UsageTrace::new(space, vec![reg(&[1.0]), reg(&[2.0])]).is_ok());
    }

    #[test]
    fn peak_and_mean_per_dimension() {
        let t = UsageTrace::new(
            ResourceSpace::vcores_memory(),
            vec![reg(&[1.0, 3.0]), reg(&[8.0, 4.0])],
        )
        .unwrap();
        assert_eq!(t.peak(), vec![3.0, 8.0]);
        assert_eq!(t.mean(), vec![2.0, 6.0]);
        assert_eq!(t.dims(), 2);
        assert_eq!(t.bins(), 2);
    }

    #[test]
    fn censoring_uses_matching_capacity_dims() {
        let t = UsageTrace::new(
            ResourceSpace::vcores_memory(),
            vec![reg(&[1.0, 3.0]), reg(&[8.0, 4.0])],
        )
        .unwrap();
        let cap = Capacity::new(vec![2.0, 5.0]).unwrap();
        let c = t.censored(&cap).unwrap();
        assert_eq!(c.resource(0).values(), &[1.0, 2.0]);
        assert_eq!(c.resource(1).values(), &[5.0, 4.0]);
        assert!(t.censored(&Capacity::scalar(2.0)).is_err());
    }

    #[test]
    fn from_raw_bins_each_dimension() {
        let space = ResourceSpace::vcores_memory();
        let cpu = RawSeries::new(vec![(0.0, 1.0), (30.0, 2.0), (60.0, 0.5)]).unwrap();
        let mem = RawSeries::new(vec![(0.0, 4.0), (30.0, 3.0), (60.0, 8.0)]).unwrap();
        let t = UsageTrace::from_raw(
            space,
            &[cpu, mem],
            60.0,
            Aggregator::Max,
            EmptyBinPolicy::HoldLast,
        )
        .unwrap();
        assert_eq!(t.resource(0).values(), &[2.0, 0.5]);
        assert_eq!(t.resource(1).values(), &[4.0, 8.0]);
    }

    #[test]
    fn single_trace_is_vcores_only() {
        let t = UsageTrace::single(reg(&[1.0, 2.0]));
        assert_eq!(t.dims(), 1);
        assert_eq!(t.space(), &ResourceSpace::vcores_only());
    }
}
