//! Raw (irregular) and regular (binned) utilization series.

use lorentz_types::LorentzError;
use serde::{Deserialize, Serialize};

/// An irregularly sampled utilization series `u(t)` for one resource
/// dimension: `(timestamp_seconds, value)` pairs with non-decreasing
/// timestamps and non-negative finite values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawSeries {
    samples: Vec<(f64, f64)>,
}

impl RawSeries {
    /// Creates a series from `(t, value)` samples.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidTelemetry`] if there are no samples,
    /// timestamps decrease, or any value/timestamp is non-finite or a value
    /// is negative.
    pub fn new(samples: Vec<(f64, f64)>) -> Result<Self, LorentzError> {
        if samples.is_empty() {
            return Err(LorentzError::InvalidTelemetry("no samples".into()));
        }
        let mut prev_t = f64::NEG_INFINITY;
        for &(t, v) in &samples {
            if !t.is_finite() || !v.is_finite() {
                return Err(LorentzError::InvalidTelemetry(format!(
                    "non-finite sample ({t}, {v})"
                )));
            }
            if v < 0.0 {
                return Err(LorentzError::InvalidTelemetry(format!(
                    "negative utilization {v} at t={t}"
                )));
            }
            if t < prev_t {
                return Err(LorentzError::InvalidTelemetry(format!(
                    "timestamps decrease at t={t}"
                )));
            }
            prev_t = t;
        }
        Ok(Self { samples })
    }

    /// The samples, in time order.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Timestamp of the first sample.
    pub fn start(&self) -> f64 {
        self.samples[0].0
    }

    /// Timestamp of the last sample.
    pub fn end(&self) -> f64 {
        self.samples[self.samples.len() - 1].0
    }

    /// Maximum observed value.
    pub fn max_value(&self) -> f64 {
        self.samples.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Mean observed value (unweighted by sample spacing).
    pub fn mean_value(&self) -> f64 {
        self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }

    /// Returns a copy with every value censored at `cap` — what telemetry
    /// actually records when the VM is capped at the user-selected capacity
    /// (Eq. 1: `u_r(t) <= c⁰_r`).
    pub fn censored(&self, cap: f64) -> RawSeries {
        RawSeries {
            samples: self.samples.iter().map(|&(t, v)| (t, v.min(cap))).collect(),
        }
    }

    /// Returns a copy with every value multiplied by `factor` (the §5.2
    /// upscaling step `2^χ_w · w[n]` operates on raw usage too).
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidTelemetry`] if the factor is negative
    /// or non-finite.
    pub fn scaled(&self, factor: f64) -> Result<RawSeries, LorentzError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(LorentzError::InvalidTelemetry(format!(
                "invalid scale factor {factor}"
            )));
        }
        Ok(RawSeries {
            samples: self.samples.iter().map(|&(t, v)| (t, v * factor)).collect(),
        })
    }
}

/// A regular, binned utilization signal `w[n]` (Eq. 2): one value per
/// `bin_seconds`-wide bin, starting at time zero of the source series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegularSeries {
    bin_seconds: f64,
    values: Vec<f64>,
}

impl RegularSeries {
    /// Creates a regular series.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidTelemetry`] if the bin width is not
    /// positive, there are no bins, or any value is negative/non-finite.
    pub fn new(bin_seconds: f64, values: Vec<f64>) -> Result<Self, LorentzError> {
        if !bin_seconds.is_finite() || bin_seconds <= 0.0 {
            return Err(LorentzError::InvalidTelemetry(format!(
                "invalid bin width {bin_seconds}"
            )));
        }
        if values.is_empty() {
            return Err(LorentzError::InvalidTelemetry("no bins".into()));
        }
        for &v in &values {
            if !v.is_finite() || v < 0.0 {
                return Err(LorentzError::InvalidTelemetry(format!(
                    "invalid binned value {v}"
                )));
            }
        }
        Ok(Self {
            bin_seconds,
            values,
        })
    }

    /// Bin width in seconds (`T` in Eq. 2, expressed in seconds).
    pub fn bin_seconds(&self) -> f64 {
        self.bin_seconds
    }

    /// The binned values `w[n]`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no bins (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Maximum binned value — the peak demand the rightsizer must cover.
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean binned value.
    pub fn mean_value(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Censors the signal at `cap` (see [`RawSeries::censored`]).
    pub fn censored(&self, cap: f64) -> RegularSeries {
        RegularSeries {
            bin_seconds: self.bin_seconds,
            values: self.values.iter().map(|&v| v.min(cap)).collect(),
        }
    }

    /// Scales every bin by `factor`.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidTelemetry`] if the factor is negative
    /// or non-finite.
    pub fn scaled(&self, factor: f64) -> Result<RegularSeries, LorentzError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(LorentzError::InvalidTelemetry(format!(
                "invalid scale factor {factor}"
            )));
        }
        Ok(RegularSeries {
            bin_seconds: self.bin_seconds,
            values: self.values.iter().map(|&v| v * factor).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_series_validates_samples() {
        assert!(RawSeries::new(vec![]).is_err());
        assert!(RawSeries::new(vec![(0.0, -1.0)]).is_err());
        assert!(RawSeries::new(vec![(0.0, f64::NAN)]).is_err());
        assert!(RawSeries::new(vec![(1.0, 0.0), (0.0, 0.0)]).is_err());
        assert!(RawSeries::new(vec![(0.0, 1.0), (0.0, 2.0)]).is_ok()); // ties allowed
    }

    #[test]
    fn raw_series_stats() {
        let s = RawSeries::new(vec![(0.0, 1.0), (60.0, 3.0), (120.0, 2.0)]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.start(), 0.0);
        assert_eq!(s.end(), 120.0);
        assert_eq!(s.max_value(), 3.0);
        assert_eq!(s.mean_value(), 2.0);
    }

    #[test]
    fn censoring_caps_values() {
        let s = RawSeries::new(vec![(0.0, 1.0), (60.0, 5.0)]).unwrap();
        let c = s.censored(2.0);
        assert_eq!(c.samples(), &[(0.0, 1.0), (60.0, 2.0)]);
        // Censoring is idempotent.
        assert_eq!(c.censored(2.0), c);
    }

    #[test]
    fn scaling_raw_series() {
        let s = RawSeries::new(vec![(0.0, 1.0), (60.0, 2.0)]).unwrap();
        let up = s.scaled(2.0).unwrap();
        assert_eq!(up.max_value(), 4.0);
        assert!(s.scaled(f64::NAN).is_err());
        assert!(s.scaled(-1.0).is_err());
    }

    #[test]
    fn regular_series_validates() {
        assert!(RegularSeries::new(0.0, vec![1.0]).is_err());
        assert!(RegularSeries::new(60.0, vec![]).is_err());
        assert!(RegularSeries::new(60.0, vec![-0.1]).is_err());
        let s = RegularSeries::new(300.0, vec![1.0, 2.0, 0.5]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_value(), 2.0);
        assert!((s.mean_value() - 3.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn regular_series_censor_and_scale() {
        let s = RegularSeries::new(300.0, vec![1.0, 4.0]).unwrap();
        assert_eq!(s.censored(2.0).values(), &[1.0, 2.0]);
        assert_eq!(s.scaled(0.5).unwrap().values(), &[0.5, 2.0]);
    }
}
