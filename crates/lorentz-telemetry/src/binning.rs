//! Temporal binning (Eq. 2).
//!
//! `w[n] = agg({u(t) | n <= t/T < n+1})` — irregular samples are grouped into
//! `T`-wide bins anchored at the series' first timestamp and each bin is
//! collapsed with an [`Aggregator`].

use crate::aggregate::Aggregator;
use crate::series::{RawSeries, RegularSeries};
use lorentz_types::LorentzError;
use serde::{Deserialize, Serialize};

/// What value an empty bin receives (possible with sparse/irregular
/// sampling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmptyBinPolicy {
    /// Repeat the previous bin's value (zero if the first bin is empty).
    /// Default: utilization is a level signal, holding is the least-surprise
    /// interpolation.
    HoldLast,
    /// Treat the resource as idle.
    Zero,
    /// Fail with [`LorentzError::InvalidTelemetry`] — for pipelines that
    /// require gap-free telemetry.
    Error,
}

/// Bins an irregular series into a regular one (Eq. 2).
///
/// Bins are anchored at the first sample's timestamp; the result has
/// `ceil((end - start) / bin) ` bins (at least one).
///
/// # Errors
/// Returns [`LorentzError::InvalidTelemetry`] if `bin_seconds` is not
/// positive, or a bin is empty under [`EmptyBinPolicy::Error`].
pub fn bin_series(
    raw: &RawSeries,
    bin_seconds: f64,
    aggregator: Aggregator,
    empty_policy: EmptyBinPolicy,
) -> Result<RegularSeries, LorentzError> {
    if !bin_seconds.is_finite() || bin_seconds <= 0.0 {
        return Err(LorentzError::InvalidTelemetry(format!(
            "invalid bin width {bin_seconds}"
        )));
    }
    let start = raw.start();
    let span = raw.end() - start;
    let n_bins = ((span / bin_seconds).floor() as usize + 1).max(1);

    // Single pass: samples are time-ordered, so bins fill monotonically.
    // Max/Min/Mean fold each sample into a running accumulator as it
    // arrives — no per-bin bucket allocation — which is bit-identical to
    // aggregating a collected bucket because the fold order is the sample
    // order either way. Only Percentile still needs the bin's samples
    // materialized (and reuses one bucket across bins).
    let mut values = Vec::with_capacity(n_bins);
    let mut acc = BinAccumulator::new(aggregator);
    let mut current_bin = 0usize;
    let mut last = 0.0_f64;

    let flush = |acc: &mut BinAccumulator, last: &mut f64| -> Result<f64, LorentzError> {
        let v = match acc.finish() {
            Some(v) => v,
            None => match empty_policy {
                EmptyBinPolicy::HoldLast => *last,
                EmptyBinPolicy::Zero => 0.0,
                EmptyBinPolicy::Error => {
                    return Err(LorentzError::InvalidTelemetry("empty bin".into()))
                }
            },
        };
        *last = v;
        Ok(v)
    };

    for &(t, v) in raw.samples() {
        let mut bin = ((t - start) / bin_seconds).floor() as usize;
        // The final sample lands exactly on the right edge; fold it into the
        // last bin rather than opening a new one.
        if bin >= n_bins {
            bin = n_bins - 1;
        }
        while current_bin < bin {
            let fv = flush(&mut acc, &mut last)?;
            values.push(fv);
            current_bin += 1;
        }
        acc.push(v);
    }
    // Flush the bin holding the final samples plus any trailing empties.
    while values.len() < n_bins {
        let fv = flush(&mut acc, &mut last)?;
        values.push(fv);
    }

    RegularSeries::new(bin_seconds, values)
}

/// Streaming per-bin state for [`bin_series`].
enum BinAccumulator {
    /// `Max`/`Min`: the running extreme, `None` while the bin is empty.
    Extreme { max: bool, value: Option<f64> },
    /// `Mean`: running sum in sample order plus count.
    Mean { sum: f64, count: usize },
    /// `Percentile(p)`: the bin's samples, buffer reused across bins.
    Quantile { p: f64, bucket: Vec<f64> },
}

impl BinAccumulator {
    fn new(aggregator: Aggregator) -> Self {
        match aggregator {
            Aggregator::Max => BinAccumulator::Extreme {
                max: true,
                value: None,
            },
            Aggregator::Min => BinAccumulator::Extreme {
                max: false,
                value: None,
            },
            Aggregator::Mean => BinAccumulator::Mean { sum: 0.0, count: 0 },
            Aggregator::Percentile(p) => BinAccumulator::Quantile {
                p,
                bucket: Vec::new(),
            },
        }
    }

    fn push(&mut self, v: f64) {
        match self {
            BinAccumulator::Extreme { max, value } => {
                // Seeding from ±∞ matches the row path's fold exactly.
                let seed = value.unwrap_or(if *max {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                });
                *value = Some(if *max {
                    f64::max(seed, v)
                } else {
                    f64::min(seed, v)
                });
            }
            BinAccumulator::Mean { sum, count } => {
                *sum += v;
                *count += 1;
            }
            BinAccumulator::Quantile { bucket, .. } => bucket.push(v),
        }
    }

    /// Closes the current bin: `None` when it received no samples.
    fn finish(&mut self) -> Option<f64> {
        match self {
            BinAccumulator::Extreme { value, .. } => value.take(),
            BinAccumulator::Mean { sum, count } => {
                if *count == 0 {
                    None
                } else {
                    let v = *sum / *count as f64;
                    *sum = 0.0;
                    *count = 0;
                    Some(v)
                }
            }
            BinAccumulator::Quantile { p, bucket } => {
                if bucket.is_empty() {
                    None
                } else {
                    let v = crate::aggregate::percentile(bucket, *p);
                    bucket.clear();
                    Some(v)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(samples: &[(f64, f64)]) -> RawSeries {
        RawSeries::new(samples.to_vec()).unwrap()
    }

    #[test]
    fn max_binning_matches_eq2() {
        // Two 60s bins: [1, 3] and [2].
        let r = raw(&[(0.0, 1.0), (30.0, 3.0), (60.0, 2.0)]);
        let w = bin_series(&r, 60.0, Aggregator::Max, EmptyBinPolicy::Zero).unwrap();
        assert_eq!(w.values(), &[3.0, 2.0]);
    }

    #[test]
    fn bins_are_anchored_at_first_sample() {
        let r = raw(&[(1000.0, 1.0), (1030.0, 5.0), (1090.0, 2.0)]);
        let w = bin_series(&r, 60.0, Aggregator::Max, EmptyBinPolicy::Zero).unwrap();
        assert_eq!(w.values(), &[5.0, 2.0]);
    }

    #[test]
    fn empty_bins_hold_last_value() {
        // Samples at t=0 and t=150 with 60s bins: bins [0,60) [60,120) [120,180).
        let r = raw(&[(0.0, 4.0), (150.0, 1.0)]);
        let w = bin_series(&r, 60.0, Aggregator::Max, EmptyBinPolicy::HoldLast).unwrap();
        assert_eq!(w.values(), &[4.0, 4.0, 1.0]);
        let z = bin_series(&r, 60.0, Aggregator::Max, EmptyBinPolicy::Zero).unwrap();
        assert_eq!(z.values(), &[4.0, 0.0, 1.0]);
        assert!(bin_series(&r, 60.0, Aggregator::Max, EmptyBinPolicy::Error).is_err());
    }

    #[test]
    fn single_sample_yields_single_bin() {
        let r = raw(&[(42.0, 2.5)]);
        let w = bin_series(&r, 300.0, Aggregator::Max, EmptyBinPolicy::Error).unwrap();
        assert_eq!(w.values(), &[2.5]);
        assert_eq!(w.bin_seconds(), 300.0);
    }

    #[test]
    fn sample_on_right_edge_joins_last_bin() {
        // end - start == exactly 2 bins worth; the t=120 sample must not
        // create a third bin.
        let r = raw(&[(0.0, 1.0), (60.0, 2.0), (120.0, 9.0)]);
        let w = bin_series(&r, 60.0, Aggregator::Max, EmptyBinPolicy::Error).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.values(), &[1.0, 2.0, 9.0]);
    }

    #[test]
    fn mean_binning() {
        let r = raw(&[(0.0, 1.0), (10.0, 3.0), (70.0, 10.0)]);
        let w = bin_series(&r, 60.0, Aggregator::Mean, EmptyBinPolicy::Zero).unwrap();
        assert_eq!(w.values(), &[2.0, 10.0]);
    }

    #[test]
    fn rejects_bad_bin_width() {
        let r = raw(&[(0.0, 1.0)]);
        assert!(bin_series(&r, 0.0, Aggregator::Max, EmptyBinPolicy::Zero).is_err());
        assert!(bin_series(&r, -5.0, Aggregator::Max, EmptyBinPolicy::Zero).is_err());
        assert!(bin_series(&r, f64::NAN, Aggregator::Max, EmptyBinPolicy::Zero).is_err());
    }

    #[test]
    fn max_binning_never_loses_the_peak() {
        // The global max of the binned signal equals the raw max regardless
        // of bin width — the property that makes max the throttling-safe
        // aggregator.
        let r = raw(&[(0.0, 1.0), (13.0, 7.5), (100.0, 2.0), (350.0, 3.0)]);
        for bin in [10.0, 60.0, 300.0, 1000.0] {
            let w = bin_series(&r, bin, Aggregator::Max, EmptyBinPolicy::HoldLast).unwrap();
            assert_eq!(w.max_value(), r.max_value(), "bin={bin}");
        }
    }
}
