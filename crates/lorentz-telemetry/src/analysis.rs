//! Workload-trace diagnostics.
//!
//! Summary statistics and shape detection over binned utilization signals:
//! used by the fleet reports (to characterize what kinds of workloads
//! dominate a fleet) and handy when deciding per-dimension rightsizing
//! policies (a strongly periodic workload tolerates a tighter slack target
//! than a bursty one).

use crate::series::RegularSeries;
use serde::{Deserialize, Serialize};

/// Summary statistics of one binned utilization signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of bins.
    pub bins: usize,
    /// Minimum value.
    pub min: f64,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Peak-to-mean ratio (1 = flat; large = bursty). Defined as 1 for an
    /// all-idle signal.
    pub burstiness: f64,
    /// Coefficient of variation (σ/μ; 0 for an all-idle signal).
    pub cv: f64,
}

impl TraceSummary {
    /// Computes the summary of a signal.
    pub fn of(series: &RegularSeries) -> Self {
        let values = series.values();
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std_dev = var.sqrt();
        Self {
            bins: values.len(),
            min,
            mean,
            max,
            std_dev,
            burstiness: if mean > 0.0 { max / mean } else { 1.0 },
            cv: if mean > 0.0 { std_dev / mean } else { 0.0 },
        }
    }
}

/// Sample autocorrelation of a signal at a bin lag, in `[-1, 1]`.
/// Returns 0 for constant signals or lags that leave fewer than two
/// overlapping points.
pub fn autocorrelation(series: &RegularSeries, lag: usize) -> f64 {
    let values = series.values();
    let n = values.len();
    if lag + 2 > n {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    if var <= 0.0 {
        return 0.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (values[i] - mean) * (values[i + lag] - mean))
        .sum::<f64>()
        / (n - lag) as f64;
    (cov / var).clamp(-1.0, 1.0)
}

/// Detects the dominant period of a signal by scanning autocorrelation over
/// candidate lags (from 2 bins to half the signal) and returning the *first*
/// local autocorrelation peak exceeding `threshold` — the fundamental
/// period; higher harmonics (2×, 3×) peak just as high but later.
///
/// Returns the period in *seconds*.
pub fn dominant_period_seconds(series: &RegularSeries, threshold: f64) -> Option<f64> {
    let n = series.len();
    if n < 8 {
        return None;
    }
    let mut prev = autocorrelation(series, 1);
    let mut rising = false;
    for lag in 2..=n / 2 {
        let ac = autocorrelation(series, lag);
        if ac < prev {
            // Just passed a local maximum at lag-1 while rising.
            if rising && prev >= threshold {
                return Some((lag - 1) as f64 * series.bin_seconds());
            }
            rising = false;
        } else {
            rising = ac > prev;
        }
        prev = ac;
    }
    None
}

/// Coarse workload-shape classification from the diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadShape {
    /// Near-constant utilization (CV < 0.15).
    Steady,
    /// Strong periodic structure (dominant period detected).
    Periodic,
    /// High peak-to-mean ratio without periodic structure.
    Bursty,
    /// Everything else.
    Irregular,
}

/// Classifies a signal's shape.
pub fn classify_shape(series: &RegularSeries) -> WorkloadShape {
    let summary = TraceSummary::of(series);
    if summary.cv < 0.15 {
        return WorkloadShape::Steady;
    }
    if dominant_period_seconds(series, 0.3).is_some() {
        return WorkloadShape::Periodic;
    }
    if summary.burstiness > 3.0 {
        return WorkloadShape::Bursty;
    }
    WorkloadShape::Irregular
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(values: Vec<f64>) -> RegularSeries {
        RegularSeries::new(300.0, values).unwrap()
    }

    fn sine(n: usize, period: usize, base: f64, amp: f64) -> RegularSeries {
        reg((0..n)
            .map(|i| {
                base + amp * (1.0 + (std::f64::consts::TAU * i as f64 / period as f64).sin()) / 2.0
            })
            .collect())
    }

    #[test]
    fn summary_statistics_are_correct() {
        let s = TraceSummary::of(&reg(vec![1.0, 2.0, 3.0, 2.0]));
        assert_eq!(s.bins, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean, 2.0);
        assert!((s.burstiness - 1.5).abs() < 1e-12);
        assert!((s.std_dev - (0.5f64).sqrt()).abs() < 1e-12);
        // Idle signal conventions.
        let idle = TraceSummary::of(&reg(vec![0.0, 0.0]));
        assert_eq!(idle.burstiness, 1.0);
        assert_eq!(idle.cv, 0.0);
    }

    #[test]
    fn autocorrelation_finds_periodicity() {
        let s = sine(288, 48, 1.0, 2.0);
        // Full-period lag correlates strongly; half-period anticorrelates.
        assert!(autocorrelation(&s, 48) > 0.9);
        assert!(autocorrelation(&s, 24) < -0.5);
        // Constant signal: zero by convention.
        assert_eq!(autocorrelation(&reg(vec![2.0; 50]), 5), 0.0);
        // Lag too large for the window: zero.
        assert_eq!(autocorrelation(&reg(vec![1.0, 2.0, 1.0]), 10), 0.0);
    }

    #[test]
    fn dominant_period_recovers_the_cycle() {
        let s = sine(288, 48, 1.0, 2.0); // 48 bins x 300 s = 4 h period
        let period = dominant_period_seconds(&s, 0.3).unwrap();
        assert!(
            (period - 48.0 * 300.0).abs() <= 2.0 * 300.0,
            "period {period}"
        );
        // White-ish noise (LCG stream) has no dominant period at a high
        // threshold.
        let mut state = 12345u64;
        let noise = reg((0..100)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 100) as f64
            })
            .collect());
        assert_eq!(dominant_period_seconds(&noise, 0.5), None);
        // Too-short signals return None.
        assert_eq!(dominant_period_seconds(&reg(vec![1.0; 4]), 0.3), None);
    }

    #[test]
    fn shape_classification() {
        assert_eq!(classify_shape(&reg(vec![2.0; 50])), WorkloadShape::Steady);
        assert_eq!(
            classify_shape(&sine(288, 48, 0.5, 3.0)),
            WorkloadShape::Periodic
        );
        // One huge spike over a tiny base: bursty.
        let mut spiky = vec![0.2; 60];
        spiky[30] = 5.0;
        spiky[31] = 5.0;
        assert_eq!(classify_shape(&reg(spiky)), WorkloadShape::Bursty);
    }
}
