//! Utilization telemetry for the Lorentz pipeline.
//!
//! Existing DBs expose *resource utilization telemetry* — irregularly
//! sampled time series `u(t)`, one per resource dimension, bounded above by
//! the user-selected capacity `c⁰` (Eq. 1). Stage 1 standardizes these into
//! regular `T`-minute signals `w[n]` via max-aggregation (Eq. 2) before
//! computing slack and throttling.
//!
//! This crate provides:
//!
//! * [`RawSeries`] — validated irregular samples;
//! * [`Aggregator`] + [`bin_series`](binning::bin_series) — the Eq. 2 binning
//!   with pluggable aggregation and empty-bin policies;
//! * [`RegularSeries`] — the binned signal `w[n]`;
//! * [`UsageTrace`] — a multi-resource bundle of series aligned with a
//!   [`ResourceSpace`](lorentz_types::ResourceSpace), with capacity censoring;
//! * [`generators`] — synthetic workload shapes (constant, diurnal, bursty,
//!   spiky, ramp, Ornstein–Uhlenbeck noise, composites) used to simulate the
//!   production fleet the paper measures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod analysis;
pub mod binning;
pub mod columns;
pub mod generators;
pub mod series;
pub mod trace;

pub use aggregate::Aggregator;
pub use analysis::{classify_shape, TraceSummary, WorkloadShape};
pub use binning::{bin_series, EmptyBinPolicy};
pub use columns::{TraceColumns, TraceView};
pub use generators::{WorkloadGenerator, WorkloadSpec};
pub use series::{RawSeries, RegularSeries};
pub use trace::UsageTrace;
