//! Bin aggregators.
//!
//! Eq. 2 aggregates each `T`-minute bin of raw samples into a single
//! observation. The paper selects `max(·)` "to measure worst-case performance
//! thus avoiding under-provisioning", but alternative aggregators are useful
//! for ablations (see `exp_ablation_binning`).

use lorentz_types::LorentzError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How to collapse the raw samples falling into one bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Aggregator {
    /// Worst case within the bin — the paper's default.
    Max,
    /// Arithmetic mean.
    Mean,
    /// Minimum (best case; mostly useful in tests).
    Min,
    /// An arbitrary percentile in `[0, 100]`, e.g. `Percentile(95.0)`.
    Percentile(f64),
}

impl Aggregator {
    /// Aggregates a non-empty slice of values.
    ///
    /// # Panics
    /// Panics in debug builds if `values` is empty — callers must apply an
    /// [`EmptyBinPolicy`](crate::EmptyBinPolicy) first.
    pub fn apply(self, values: &[f64]) -> f64 {
        debug_assert!(!values.is_empty(), "aggregator applied to empty bin");
        match self {
            Aggregator::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregator::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregator::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Aggregator::Percentile(p) => percentile(values, p),
        }
    }

    /// [`Self::apply`] with typed-error validation: an empty slice or NaN
    /// samples return [`LorentzError::InvalidTelemetry`] instead of
    /// panicking ([`percentile`]'s sort) or silently yielding NaN
    /// statistics. A single sample aggregates to itself under every
    /// aggregator.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidTelemetry`] for empty or NaN input.
    pub fn try_apply(self, values: &[f64]) -> Result<f64, LorentzError> {
        if values.is_empty() {
            return Err(LorentzError::InvalidTelemetry(
                "cannot aggregate an empty sample set".into(),
            ));
        }
        if values.iter().any(|v| v.is_nan()) {
            return Err(LorentzError::InvalidTelemetry(
                "NaN sample in aggregation input".into(),
            ));
        }
        Ok(self.apply(values))
    }
}

impl fmt::Display for Aggregator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregator::Max => f.write_str("max"),
            Aggregator::Mean => f.write_str("mean"),
            Aggregator::Min => f.write_str("min"),
            Aggregator::Percentile(p) => write!(f, "p{p}"),
        }
    }
}

/// The `p`th percentile (`p ∈ [0, 100]`) of `values` using linear
/// interpolation between order statistics — the `%ile(·, p)` primitive of
/// Eq. 12, shared by the hierarchical provisioner.
///
/// `p` is clamped to `[0, 100]`; an empty slice returns `NaN`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values"));
    percentile_of_sorted(&sorted, p)
}

/// [`percentile`] with typed-error validation: empty input and NaN samples
/// are [`LorentzError::InvalidTelemetry`] instead of a silent NaN / a sort
/// panic. A single sample is its own percentile for every `p`.
///
/// # Errors
/// Returns [`LorentzError::InvalidTelemetry`] for empty or NaN input.
pub fn try_percentile(values: &[f64], p: f64) -> Result<f64, LorentzError> {
    let mut scratch = Vec::new();
    percentile_into(values, p, &mut scratch)
}

/// [`try_percentile`] over a reusable scratch buffer — the columnar
/// quantile kernel: one validation pass, one copy into `scratch`, one sort,
/// no per-call allocation once `scratch` has grown.
///
/// # Errors
/// Returns [`LorentzError::InvalidTelemetry`] for empty or NaN input.
pub fn percentile_into(
    values: &[f64],
    p: f64,
    scratch: &mut Vec<f64>,
) -> Result<f64, LorentzError> {
    if values.is_empty() {
        return Err(LorentzError::InvalidTelemetry(
            "cannot take a percentile of an empty sample set".into(),
        ));
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(LorentzError::InvalidTelemetry(
            "NaN sample in percentile input".into(),
        ));
    }
    scratch.clear();
    scratch.extend_from_slice(values);
    scratch.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN rejected above"));
    Ok(percentile_of_sorted(scratch, p))
}

/// Percentile of an already-sorted slice (ascending). See [`percentile`].
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_aggregators() {
        let v = [1.0, 3.0, 2.0];
        assert_eq!(Aggregator::Max.apply(&v), 3.0);
        assert_eq!(Aggregator::Min.apply(&v), 1.0);
        assert_eq!(Aggregator::Mean.apply(&v), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        let v = [3.0, 1.0, 2.0, 4.0]; // unsorted input is fine
        assert_eq!(percentile(&v, 50.0), 2.5);
        assert!((percentile(&v, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_edge_cases() {
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        // Out-of-range p is clamped.
        assert_eq!(percentile(&[1.0, 2.0], 150.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], -5.0), 1.0);
    }

    #[test]
    fn percentile_aggregator_matches_free_function() {
        let v = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(Aggregator::Percentile(50.0).apply(&v), percentile(&v, 50.0));
    }

    #[test]
    fn median_is_outlier_robust() {
        // One huge outlier barely moves the median — the reason the
        // hierarchical provisioner uses p=50 (§5, Table 2 discussion).
        let without = [2.0, 2.0, 2.0, 4.0, 4.0];
        let with = [2.0, 2.0, 2.0, 4.0, 128.0];
        assert_eq!(percentile(&without, 50.0), percentile(&with, 50.0));
    }

    #[test]
    fn try_apply_rejects_empty_input() {
        for agg in [
            Aggregator::Max,
            Aggregator::Min,
            Aggregator::Mean,
            Aggregator::Percentile(50.0),
        ] {
            let err = agg.try_apply(&[]).unwrap_err();
            assert!(
                matches!(err, LorentzError::InvalidTelemetry(ref m) if m.contains("empty")),
                "{agg}: {err}"
            );
        }
    }

    #[test]
    fn try_apply_rejects_nan_samples() {
        for agg in [
            Aggregator::Max,
            Aggregator::Min,
            Aggregator::Mean,
            Aggregator::Percentile(50.0),
        ] {
            let err = agg.try_apply(&[1.0, f64::NAN, 2.0]).unwrap_err();
            assert!(
                matches!(err, LorentzError::InvalidTelemetry(ref m) if m.contains("NaN")),
                "{agg}: {err}"
            );
        }
    }

    #[test]
    fn try_apply_single_sample_is_identity() {
        for agg in [
            Aggregator::Max,
            Aggregator::Min,
            Aggregator::Mean,
            Aggregator::Percentile(99.0),
        ] {
            assert_eq!(agg.try_apply(&[7.5]).unwrap(), 7.5, "{agg}");
        }
    }

    #[test]
    fn try_percentile_typed_errors_and_agreement() {
        assert!(matches!(
            try_percentile(&[], 50.0).unwrap_err(),
            LorentzError::InvalidTelemetry(m) if m.contains("empty")
        ));
        assert!(matches!(
            try_percentile(&[f64::NAN], 50.0).unwrap_err(),
            LorentzError::InvalidTelemetry(m) if m.contains("NaN")
        ));
        assert_eq!(try_percentile(&[7.0], 10.0).unwrap(), 7.0);
        let v = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(try_percentile(&v, 50.0).unwrap(), percentile(&v, 50.0));
    }

    #[test]
    fn percentile_into_reuses_scratch() {
        let mut scratch = Vec::new();
        assert_eq!(
            percentile_into(&[5.0, 1.0], 50.0, &mut scratch).unwrap(),
            3.0
        );
        assert_eq!(
            percentile_into(&[9.0, 9.0, 0.0], 0.0, &mut scratch).unwrap(),
            0.0
        );
        assert_eq!(scratch.len(), 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(Aggregator::Max.to_string(), "max");
        assert_eq!(Aggregator::Percentile(95.0).to_string(), "p95");
    }
}
