//! Synthetic workload generators.
//!
//! The paper evaluates on 7-day production traces sampled roughly once per
//! minute (§2.2). Those traces are not public, so the simulator crates build
//! fleets from these generator shapes instead: each produces an irregularly
//! sampled [`RawSeries`] the rest of the pipeline cannot distinguish from
//! real telemetry (the rightsizer only ever sees binned aggregates).
//!
//! Shapes provided:
//!
//! * [`WorkloadSpec::Constant`] — steady demand (idle dev boxes, batch
//!   feeders);
//! * [`WorkloadSpec::Diurnal`] — sinusoidal day/night cycle (user-facing
//!   OLTP);
//! * [`WorkloadSpec::Bursty`] — two-state Markov on/off demand (ETL, CI);
//! * [`WorkloadSpec::Spiky`] — Poisson-arriving short spikes over a base
//!   (reporting queries);
//! * [`WorkloadSpec::Ramp`] — linear growth over the window (onboarding
//!   services);
//! * [`WorkloadSpec::OuNoise`] — mean-reverting Ornstein–Uhlenbeck jitter;
//! * [`WorkloadSpec::Sum`] / [`WorkloadSpec::Scaled`] — composition.

use crate::series::RawSeries;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// How a workload window is sampled into telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Total window length in seconds (paper: up to 7 days).
    pub duration_secs: f64,
    /// Mean spacing between samples (paper: ≈60 s).
    pub mean_interval_secs: f64,
    /// Relative jitter on each spacing, in `[0, 1)`; `0.2` means intervals
    /// vary uniformly within ±20% — making the series irregular like real
    /// telemetry.
    pub jitter_frac: f64,
}

impl SamplingConfig {
    /// Seven days at one-minute sampling with 20% jitter — the paper's
    /// telemetry profile.
    pub fn paper_default() -> Self {
        Self {
            duration_secs: 7.0 * 24.0 * 3600.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.2,
        }
    }

    /// A short window for tests: one hour at one-minute sampling.
    pub fn short() -> Self {
        Self {
            duration_secs: 3600.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.2,
        }
    }
}

/// Anything that can synthesize an irregular utilization series.
pub trait WorkloadGenerator {
    /// Generates one telemetry window.
    fn generate(&self, cfg: &SamplingConfig, rng: &mut dyn RngCore) -> RawSeries;
}

/// A serializable description of a workload shape. See the module docs for
/// the catalog.
///
/// ```
/// use lorentz_telemetry::generators::{SamplingConfig, WorkloadGenerator};
/// use lorentz_telemetry::WorkloadSpec;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let spec = WorkloadSpec::Diurnal {
///     base: 1.0,
///     amplitude: 3.0,
///     period_secs: 86_400.0,
///     phase: 0.0,
/// };
/// let mut rng = SmallRng::seed_from_u64(7);
/// let series = spec.generate(&SamplingConfig::short(), &mut rng);
/// assert!(series.len() > 50); // ~one sample per minute for an hour
/// assert!(series.max_value() <= spec.nominal_peak());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Steady demand at `level`.
    Constant {
        /// Demand level (resource units, e.g. vCores).
        level: f64,
    },
    /// `base + amplitude * (1 + sin(2πt/period + phase))/2` — peaks at
    /// `base + amplitude`.
    Diurnal {
        /// Off-peak demand floor.
        base: f64,
        /// Peak-to-floor swing.
        amplitude: f64,
        /// Cycle length in seconds (86 400 for a day).
        period_secs: f64,
        /// Phase offset in radians.
        phase: f64,
    },
    /// Two-state Markov process alternating between `low` and `high` with
    /// exponentially distributed dwell times.
    Bursty {
        /// Demand in the off state.
        low: f64,
        /// Demand in the on state.
        high: f64,
        /// Mean dwell time in the on state, seconds.
        mean_on_secs: f64,
        /// Mean dwell time in the off state, seconds.
        mean_off_secs: f64,
    },
    /// Base demand plus Poisson-arriving rectangular spikes.
    Spiky {
        /// Background demand.
        base: f64,
        /// Extra demand while a spike is active.
        spike_height: f64,
        /// Expected spikes per day.
        spikes_per_day: f64,
        /// Spike length in seconds.
        spike_duration_secs: f64,
    },
    /// Linear ramp from `start` to `end` across the window.
    Ramp {
        /// Demand at t = 0.
        start: f64,
        /// Demand at t = duration.
        end: f64,
    },
    /// Mean-reverting Ornstein–Uhlenbeck noise around `mean` (clamped at 0).
    OuNoise {
        /// Long-run mean demand.
        mean: f64,
        /// Stationary standard deviation.
        sigma: f64,
        /// Mean-reversion rate (1/seconds); larger snaps back faster.
        theta: f64,
    },
    /// Point-wise sum of sub-workloads.
    Sum(Vec<WorkloadSpec>),
    /// A sub-workload with every value multiplied by `factor`.
    Scaled {
        /// Multiplier applied to the inner shape.
        factor: f64,
        /// The shape being scaled.
        inner: Box<WorkloadSpec>,
    },
}

impl WorkloadSpec {
    /// A typical small production OLTP shape: diurnal cycle plus OU noise.
    pub fn typical_oltp(scale: f64) -> Self {
        WorkloadSpec::Sum(vec![
            WorkloadSpec::Diurnal {
                base: 0.3 * scale,
                amplitude: 0.9 * scale,
                period_secs: 86_400.0,
                phase: 0.0,
            },
            WorkloadSpec::OuNoise {
                mean: 0.1 * scale,
                sigma: 0.05 * scale,
                theta: 1.0 / 1800.0,
            },
        ])
    }

    /// A mostly-idle development DB with occasional activity spikes.
    pub fn dev_box(scale: f64) -> Self {
        WorkloadSpec::Sum(vec![
            WorkloadSpec::Constant {
                level: 0.05 * scale,
            },
            WorkloadSpec::Spiky {
                base: 0.0,
                spike_height: 0.6 * scale,
                spikes_per_day: 6.0,
                spike_duration_secs: 900.0,
            },
        ])
    }

    /// The deterministic peak demand of the shape (ignoring unbounded noise
    /// tails, for which 3σ is used). Useful when pairing a shape with a
    /// capacity in simulations.
    pub fn nominal_peak(&self) -> f64 {
        match self {
            WorkloadSpec::Constant { level } => *level,
            WorkloadSpec::Diurnal {
                base, amplitude, ..
            } => base + amplitude,
            WorkloadSpec::Bursty { low, high, .. } => low.max(*high),
            WorkloadSpec::Spiky {
                base, spike_height, ..
            } => base + spike_height,
            WorkloadSpec::Ramp { start, end } => start.max(*end),
            WorkloadSpec::OuNoise { mean, sigma, .. } => mean + 3.0 * sigma,
            WorkloadSpec::Sum(parts) => parts.iter().map(WorkloadSpec::nominal_peak).sum(),
            WorkloadSpec::Scaled { factor, inner } => factor * inner.nominal_peak(),
        }
    }

    fn sampler(&self, duration_secs: f64) -> Box<dyn Sampler> {
        match self {
            WorkloadSpec::Constant { level } => Box::new(ConstSampler { level: *level }),
            WorkloadSpec::Diurnal {
                base,
                amplitude,
                period_secs,
                phase,
            } => Box::new(DiurnalSampler {
                base: *base,
                amplitude: *amplitude,
                period: *period_secs,
                phase: *phase,
            }),
            WorkloadSpec::Bursty {
                low,
                high,
                mean_on_secs,
                mean_off_secs,
            } => Box::new(BurstySampler {
                low: *low,
                high: *high,
                mean_on: mean_on_secs.max(1.0),
                mean_off: mean_off_secs.max(1.0),
                on: false,
                until: 0.0,
            }),
            WorkloadSpec::Spiky {
                base,
                spike_height,
                spikes_per_day,
                spike_duration_secs,
            } => Box::new(SpikySampler {
                base: *base,
                height: *spike_height,
                rate_per_sec: spikes_per_day / 86_400.0,
                duration: *spike_duration_secs,
                spike_until: f64::NEG_INFINITY,
            }),
            WorkloadSpec::Ramp { start, end } => Box::new(RampSampler {
                start: *start,
                end: *end,
                duration: duration_secs.max(1.0),
            }),
            WorkloadSpec::OuNoise { mean, sigma, theta } => Box::new(OuSampler {
                mean: *mean,
                sigma: *sigma,
                theta: *theta,
                state: *mean,
            }),
            WorkloadSpec::Sum(parts) => Box::new(SumSampler {
                parts: parts.iter().map(|p| p.sampler(duration_secs)).collect(),
            }),
            WorkloadSpec::Scaled { factor, inner } => Box::new(ScaledSampler {
                factor: *factor,
                inner: inner.sampler(duration_secs),
            }),
        }
    }
}

impl WorkloadGenerator for WorkloadSpec {
    fn generate(&self, cfg: &SamplingConfig, rng: &mut dyn RngCore) -> RawSeries {
        let mut sampler = self.sampler(cfg.duration_secs);
        let jitter = cfg.jitter_frac.clamp(0.0, 0.99);
        let mut samples =
            Vec::with_capacity((cfg.duration_secs / cfg.mean_interval_secs).ceil() as usize + 1);
        let mut t = 0.0;
        let mut prev_t = 0.0;
        while t <= cfg.duration_secs {
            let dt = t - prev_t;
            let v = sampler.value_at(t, dt, rng).max(0.0);
            samples.push((t, v));
            prev_t = t;
            let step = if jitter > 0.0 {
                cfg.mean_interval_secs * (1.0 + rng.gen_range(-jitter..jitter))
            } else {
                cfg.mean_interval_secs
            };
            t += step.max(1e-3);
        }
        RawSeries::new(samples).expect("generated samples are valid by construction")
    }
}

/// A stateful point sampler; `dt` is the elapsed time since the previous
/// sample (0 for the first).
trait Sampler {
    fn value_at(&mut self, t: f64, dt: f64, rng: &mut dyn RngCore) -> f64;
}

struct ConstSampler {
    level: f64,
}
impl Sampler for ConstSampler {
    fn value_at(&mut self, _t: f64, _dt: f64, _rng: &mut dyn RngCore) -> f64 {
        self.level
    }
}

struct DiurnalSampler {
    base: f64,
    amplitude: f64,
    period: f64,
    phase: f64,
}
impl Sampler for DiurnalSampler {
    fn value_at(&mut self, t: f64, _dt: f64, _rng: &mut dyn RngCore) -> f64 {
        let cycle = (std::f64::consts::TAU * t / self.period + self.phase).sin();
        self.base + self.amplitude * (1.0 + cycle) / 2.0
    }
}

struct BurstySampler {
    low: f64,
    high: f64,
    mean_on: f64,
    mean_off: f64,
    on: bool,
    until: f64,
}
impl Sampler for BurstySampler {
    fn value_at(&mut self, t: f64, _dt: f64, rng: &mut dyn RngCore) -> f64 {
        while t >= self.until {
            self.on = !self.on;
            let mean = if self.on { self.mean_on } else { self.mean_off };
            // Exponential dwell via inverse CDF; bounded away from 0.
            let u: f64 = rng.gen_range(1e-12..1.0);
            self.until = t + (-u.ln()) * mean;
        }
        if self.on {
            self.high
        } else {
            self.low
        }
    }
}

struct SpikySampler {
    base: f64,
    height: f64,
    rate_per_sec: f64,
    duration: f64,
    spike_until: f64,
}
impl Sampler for SpikySampler {
    fn value_at(&mut self, t: f64, dt: f64, rng: &mut dyn RngCore) -> f64 {
        if t < self.spike_until {
            return self.base + self.height;
        }
        // Poisson arrival within the elapsed interval.
        let p = 1.0 - (-self.rate_per_sec * dt).exp();
        if dt > 0.0 && rng.gen_bool(p.clamp(0.0, 1.0)) {
            self.spike_until = t + self.duration;
            self.base + self.height
        } else {
            self.base
        }
    }
}

struct RampSampler {
    start: f64,
    end: f64,
    duration: f64,
}
impl Sampler for RampSampler {
    fn value_at(&mut self, t: f64, _dt: f64, _rng: &mut dyn RngCore) -> f64 {
        let frac = (t / self.duration).clamp(0.0, 1.0);
        self.start + (self.end - self.start) * frac
    }
}

struct OuSampler {
    mean: f64,
    sigma: f64,
    theta: f64,
    state: f64,
}
impl Sampler for OuSampler {
    fn value_at(&mut self, _t: f64, dt: f64, rng: &mut dyn RngCore) -> f64 {
        if dt > 0.0 {
            // Exact discretization of the OU process.
            let decay = (-self.theta * dt).exp();
            let noise_std = self.sigma * (1.0 - decay * decay).sqrt();
            let z = gaussian(rng);
            self.state = self.mean + (self.state - self.mean) * decay + noise_std * z;
        }
        self.state.max(0.0)
    }
}

struct SumSampler {
    parts: Vec<Box<dyn Sampler>>,
}
impl Sampler for SumSampler {
    fn value_at(&mut self, t: f64, dt: f64, rng: &mut dyn RngCore) -> f64 {
        self.parts.iter_mut().map(|p| p.value_at(t, dt, rng)).sum()
    }
}

struct ScaledSampler {
    factor: f64,
    inner: Box<dyn Sampler>,
}
impl Sampler for ScaledSampler {
    fn value_at(&mut self, t: f64, dt: f64, rng: &mut dyn RngCore) -> f64 {
        self.factor * self.inner.value_at(t, dt, rng)
    }
}

/// Standard normal draw via Box–Muller (avoids a rand_distr dependency in
/// the hot sampler path). Shared by the simulator crates.
pub fn gaussian(rng: &mut dyn RngCore) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn constant_generates_flat_series() {
        let spec = WorkloadSpec::Constant { level: 2.0 };
        let s = spec.generate(&SamplingConfig::short(), &mut rng());
        assert!(s.samples().iter().all(|&(_, v)| v == 2.0));
        assert!(s.len() > 50, "about one sample per minute for an hour");
    }

    #[test]
    fn sampling_respects_duration_and_jitter() {
        let spec = WorkloadSpec::Constant { level: 1.0 };
        let cfg = SamplingConfig {
            duration_secs: 600.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.3,
        };
        let s = spec.generate(&cfg, &mut rng());
        assert!(s.end() <= 600.0 + 60.0 * 1.3);
        let gaps: Vec<f64> = s.samples().windows(2).map(|w| w[1].0 - w[0].0).collect();
        assert!(
            gaps.iter().any(|&g| (g - 60.0).abs() > 1.0),
            "jitter present"
        );
        assert!(gaps.iter().all(|&g| g > 60.0 * 0.69 && g < 60.0 * 1.31));
    }

    #[test]
    fn diurnal_oscillates_within_band() {
        let spec = WorkloadSpec::Diurnal {
            base: 1.0,
            amplitude: 2.0,
            period_secs: 3600.0,
            phase: 0.0,
        };
        let s = spec.generate(&SamplingConfig::short(), &mut rng());
        let max = s.max_value();
        let min = s
            .samples()
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min);
        assert!(max <= 3.0 + 1e-9 && max > 2.5, "max={max}");
        assert!((1.0 - 1e-9..1.5).contains(&min), "min={min}");
    }

    #[test]
    fn bursty_visits_both_states() {
        let spec = WorkloadSpec::Bursty {
            low: 0.5,
            high: 4.0,
            mean_on_secs: 300.0,
            mean_off_secs: 300.0,
        };
        let s = spec.generate(&SamplingConfig::short(), &mut rng());
        let lows = s.samples().iter().filter(|&&(_, v)| v == 0.5).count();
        let highs = s.samples().iter().filter(|&&(_, v)| v == 4.0).count();
        assert!(lows > 0 && highs > 0);
        assert_eq!(lows + highs, s.len());
    }

    #[test]
    fn spiky_produces_occasional_spikes() {
        let spec = WorkloadSpec::Spiky {
            base: 0.2,
            spike_height: 3.0,
            spikes_per_day: 200.0,
            spike_duration_secs: 300.0,
        };
        let cfg = SamplingConfig {
            duration_secs: 86_400.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.1,
        };
        let s = spec.generate(&cfg, &mut rng());
        let spiking = s.samples().iter().filter(|&&(_, v)| v > 3.0).count();
        assert!(spiking > 10, "expected spikes, got {spiking}");
        assert!(spiking < s.len() / 2, "spikes should not dominate");
    }

    #[test]
    fn ramp_grows_monotonically() {
        let spec = WorkloadSpec::Ramp {
            start: 0.0,
            end: 10.0,
        };
        let s = spec.generate(&SamplingConfig::short(), &mut rng());
        let first = s.samples()[0].1;
        let last = s.samples()[s.len() - 1].1;
        assert!(first < 0.5);
        assert!(last > 9.0);
        assert!(s.samples().windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9));
    }

    #[test]
    fn ou_noise_stays_near_mean() {
        let spec = WorkloadSpec::OuNoise {
            mean: 2.0,
            sigma: 0.2,
            theta: 1.0 / 600.0,
        };
        let cfg = SamplingConfig {
            duration_secs: 86_400.0,
            mean_interval_secs: 60.0,
            jitter_frac: 0.0,
        };
        let s = spec.generate(&cfg, &mut rng());
        let mean = s.mean_value();
        assert!((mean - 2.0).abs() < 0.3, "mean={mean}");
        assert!(s.max_value() < 4.0);
    }

    #[test]
    fn sum_and_scale_compose() {
        let spec = WorkloadSpec::Scaled {
            factor: 2.0,
            inner: Box::new(WorkloadSpec::Sum(vec![
                WorkloadSpec::Constant { level: 1.0 },
                WorkloadSpec::Constant { level: 0.5 },
            ])),
        };
        let s = spec.generate(&SamplingConfig::short(), &mut rng());
        assert!(s.samples().iter().all(|&(_, v)| (v - 3.0).abs() < 1e-12));
        assert_eq!(spec.nominal_peak(), 3.0);
    }

    #[test]
    fn nominal_peak_bounds_generated_values_for_bounded_shapes() {
        for spec in [
            WorkloadSpec::Constant { level: 2.0 },
            WorkloadSpec::Diurnal {
                base: 1.0,
                amplitude: 3.0,
                period_secs: 3600.0,
                phase: 1.0,
            },
            WorkloadSpec::Bursty {
                low: 0.1,
                high: 5.0,
                mean_on_secs: 60.0,
                mean_off_secs: 60.0,
            },
            WorkloadSpec::Ramp {
                start: 2.0,
                end: 0.5,
            },
        ] {
            let cfg = SamplingConfig::short();
            let s = spec.generate(&cfg, &mut rng());
            assert!(s.max_value() <= spec.nominal_peak() + 1e-9, "{spec:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = WorkloadSpec::typical_oltp(4.0);
        let cfg = SamplingConfig::short();
        let a = spec.generate(&cfg, &mut SmallRng::seed_from_u64(7));
        let b = spec.generate(&cfg, &mut SmallRng::seed_from_u64(7));
        let c = spec.generate(&cfg, &mut SmallRng::seed_from_u64(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn workload_spec_serde_round_trip() {
        let spec = WorkloadSpec::dev_box(2.0);
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
