//! Columnar (structure-of-arrays) telemetry for the training fast path.
//!
//! The row layout — one [`UsageTrace`] holding one `Vec<f64>` per resource
//! dimension — is what serving and the public API speak, but Stage-1
//! training sweeps the *whole fleet's* signal per candidate capacity. This
//! module packs every dimension of every trace into one contiguous `f64`
//! buffer with per-trace offsets, so those sweeps read straight-line memory
//! and reuse scratch across candidates.
//!
//! Layout: trace `i` owns `values[trace_offsets[i] .. trace_offsets[i+1]]`,
//! laid out dimension-major — dimension `r` of trace `i` is the slice
//! `values[trace_offsets[i] + r·bins(i) .. trace_offsets[i] + (r+1)·bins(i)]`.
//! Round-tripping through [`TraceColumns::from_traces`] and
//! [`TraceColumns::to_trace`] is lossless (proptested in the workspace root
//! suite).

use crate::series::RegularSeries;
use crate::trace::UsageTrace;
use lorentz_types::{LorentzError, ResourceSpace};

/// The fleet's usage signal in structure-of-arrays form.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceColumns {
    /// Every value of every trace, trace-major then dimension-major.
    values: Vec<f64>,
    /// `len + 1` offsets into `values`; trace `i` spans
    /// `trace_offsets[i]..trace_offsets[i+1]`.
    trace_offsets: Vec<usize>,
    /// Per-trace resource space.
    spaces: Vec<ResourceSpace>,
    /// Per-trace bin width in seconds.
    bin_seconds: Vec<f64>,
    /// Per-trace bin count.
    bins: Vec<usize>,
}

/// A borrowed view of one trace inside a [`TraceColumns`].
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    values: &'a [f64],
    space: &'a ResourceSpace,
    bin_seconds: f64,
    bins: usize,
}

impl TraceColumns {
    /// Packs row-oriented traces into the columnar layout.
    pub fn from_traces(traces: &[UsageTrace]) -> Self {
        let total: usize = traces.iter().map(|t| t.dims() * t.bins()).sum();
        let mut values = Vec::with_capacity(total);
        let mut trace_offsets = Vec::with_capacity(traces.len() + 1);
        let mut spaces = Vec::with_capacity(traces.len());
        let mut bin_seconds = Vec::with_capacity(traces.len());
        let mut bins = Vec::with_capacity(traces.len());
        trace_offsets.push(0);
        for t in traces {
            for r in 0..t.dims() {
                values.extend_from_slice(t.resource(r).values());
            }
            trace_offsets.push(values.len());
            spaces.push(t.space().clone());
            bin_seconds.push(t.bin_seconds());
            bins.push(t.bins());
        }
        Self {
            values,
            trace_offsets,
            spaces,
            bin_seconds,
            bins,
        }
    }

    /// Builds columns from raw parts: one `(space, bin_seconds, columns)`
    /// record per trace, where `columns` holds one equally-long value slice
    /// per dimension of `space`.
    ///
    /// # Errors
    /// Returns [`LorentzError::DimensionMismatch`] when a record's column
    /// count disagrees with its space, and
    /// [`LorentzError::InvalidTelemetry`] for empty traces, ragged columns,
    /// non-positive bin widths, or non-finite / negative / NaN samples —
    /// the same contract [`RegularSeries::new`] enforces on the row path.
    pub fn from_parts(
        records: &[(ResourceSpace, f64, Vec<Vec<f64>>)],
    ) -> Result<Self, LorentzError> {
        let mut values = Vec::new();
        let mut trace_offsets = vec![0usize];
        let mut spaces = Vec::with_capacity(records.len());
        let mut bin_seconds = Vec::with_capacity(records.len());
        let mut bins = Vec::with_capacity(records.len());
        for (space, bin, columns) in records {
            if columns.len() != space.len() {
                return Err(LorentzError::DimensionMismatch {
                    expected: space.len(),
                    got: columns.len(),
                });
            }
            if !bin.is_finite() || *bin <= 0.0 {
                return Err(LorentzError::InvalidTelemetry(format!(
                    "invalid bin width {bin}"
                )));
            }
            let n = columns[0].len();
            if n == 0 {
                return Err(LorentzError::InvalidTelemetry(
                    "empty trace: a columnar trace needs at least one bin".into(),
                ));
            }
            for col in columns {
                if col.len() != n {
                    return Err(LorentzError::InvalidTelemetry(format!(
                        "ragged trace: column lengths {n} vs {}",
                        col.len()
                    )));
                }
                for &v in col {
                    if v.is_nan() {
                        return Err(LorentzError::InvalidTelemetry(
                            "NaN sample in columnar telemetry".into(),
                        ));
                    }
                    if !v.is_finite() || v < 0.0 {
                        return Err(LorentzError::InvalidTelemetry(format!(
                            "utilization samples must be finite and non-negative, got {v}"
                        )));
                    }
                }
                values.extend_from_slice(col);
            }
            trace_offsets.push(values.len());
            spaces.push(space.clone());
            bin_seconds.push(*bin);
            bins.push(n);
        }
        Ok(Self {
            values,
            trace_offsets,
            spaces,
            bin_seconds,
            bins,
        })
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.spaces.is_empty()
    }

    /// Total packed values across all traces and dimensions.
    pub fn total_values(&self) -> usize {
        self.values.len()
    }

    /// A borrowed view of trace `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn trace(&self, i: usize) -> TraceView<'_> {
        TraceView {
            values: &self.values[self.trace_offsets[i]..self.trace_offsets[i + 1]],
            space: &self.spaces[i],
            bin_seconds: self.bin_seconds[i],
            bins: self.bins[i],
        }
    }

    /// Reconstructs trace `i` as a row-oriented [`UsageTrace`].
    ///
    /// # Errors
    /// Propagates [`RegularSeries::new`] validation (cannot fail for columns
    /// built by [`Self::from_traces`]).
    pub fn to_trace(&self, i: usize) -> Result<UsageTrace, LorentzError> {
        let view = self.trace(i);
        let series = (0..view.dims())
            .map(|r| RegularSeries::new(view.bin_seconds(), view.dim(r).to_vec()))
            .collect::<Result<Vec<_>, _>>()?;
        UsageTrace::new(view.space().clone(), series)
    }
}

impl<'a> TraceView<'a> {
    /// The resource space.
    pub fn space(&self) -> &'a ResourceSpace {
        self.space
    }

    /// Number of resource dimensions.
    pub fn dims(&self) -> usize {
        self.space.len()
    }

    /// Number of time bins.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Bin width in seconds.
    pub fn bin_seconds(&self) -> f64 {
        self.bin_seconds
    }

    /// The contiguous value column of dimension `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn dim(&self, r: usize) -> &'a [f64] {
        &self.values[r * self.bins..(r + 1) * self.bins]
    }
}

/// One-pass kernels over columnar value slices. Each kernel preserves the
/// exact floating-point evaluation order of its row-path counterpart, so a
/// columnar sweep is byte-identical to per-trace row iteration.
pub mod kernels {
    use lorentz_types::LorentzError;

    /// Number of values strictly above `threshold` — the per-dimension
    /// throttling count of Eq. 3–4. Integer-valued, hence order-independent.
    pub fn count_above(values: &[f64], threshold: f64) -> usize {
        values.iter().filter(|&&v| v > threshold).count()
    }

    /// Number of sorted values strictly above `threshold`, by binary search
    /// (`O(log n)` per candidate once a dimension is sorted into scratch).
    /// Identical to [`count_above`] on the same multiset of values.
    pub fn count_above_sorted(sorted: &[f64], threshold: f64) -> usize {
        sorted.len() - sorted.partition_point(|&v| v <= threshold)
    }

    /// ORs `values[n] > threshold` into `mask[n]` — the any-dimension union
    /// of Eq. 4 for multi-dimensional traces.
    ///
    /// # Panics
    /// Panics in debug builds if lengths differ.
    pub fn or_above(values: &[f64], threshold: f64, mask: &mut [bool]) {
        debug_assert_eq!(values.len(), mask.len());
        for (m, &v) in mask.iter_mut().zip(values) {
            *m |= v > threshold;
        }
    }

    /// Mean slack ratio `(1/N) Σ (c − w[n]) / c` (Eq. 5–6).
    ///
    /// This is THE slack expression of the workspace: the row-path
    /// `Rightsizer::slack_ratio` and the columnar optimizer both call it,
    /// so the two are bit-identical by construction. The fold order is part
    /// of the contract — four independent lane accumulators over
    /// `chunks_exact(4)` (lane `k` sums bins `k, k+4, k+8, …`), combined as
    /// `(l0 + l1) + (l2 + l3)`, then the remainder tail in bin order. The
    /// lane split keeps the reduction deterministic while letting the
    /// divisions and lane adds vectorize instead of serializing on one
    /// accumulator's add latency.
    pub fn slack_ratio(values: &[f64], capacity: f64) -> f64 {
        let mut lanes = [0.0f64; 4];
        let chunks = values.chunks_exact(4);
        let remainder = chunks.remainder();
        for chunk in chunks {
            for (lane, &w) in lanes.iter_mut().zip(chunk) {
                *lane += (capacity - w) / capacity;
            }
        }
        let mut tail = 0.0f64;
        for &w in remainder {
            tail += (capacity - w) / capacity;
        }
        (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + tail) / values.len() as f64
    }

    /// [`slack_ratio`] with typed-error validation — the Stage-1 statistics
    /// contract: an empty column, an invalid capacity, or NaN samples are
    /// [`LorentzError::InvalidTelemetry`] instead of a silent NaN ratio. A
    /// single-sample column is a valid one-bin trace.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidTelemetry`] per the above.
    pub fn checked_slack_ratio(values: &[f64], capacity: f64) -> Result<f64, LorentzError> {
        if values.is_empty() {
            return Err(LorentzError::InvalidTelemetry(
                "empty trace: cannot compute slack over zero bins".into(),
            ));
        }
        if !capacity.is_finite() || capacity <= 0.0 {
            return Err(LorentzError::InvalidTelemetry(format!(
                "invalid capacity {capacity} in slack computation"
            )));
        }
        let s = slack_ratio(values, capacity);
        if s.is_nan() {
            return Err(LorentzError::InvalidTelemetry(
                "NaN sample in slack computation".into(),
            ));
        }
        Ok(s)
    }

    /// Reusable buffers for [`count_above_many`].
    #[derive(Debug, Default)]
    pub struct MultiCountScratch {
        /// Threshold indices sorted by threshold value.
        order: Vec<usize>,
        /// Thresholds in sorted order.
        sorted: Vec<f64>,
        /// `hist[j]`: how many values have exactly `j` thresholds below
        /// them.
        hist: Vec<usize>,
    }

    /// [`count_above`] for every threshold at once: one histogram pass over
    /// the column instead of one scan per threshold. For each value the
    /// number of thresholds strictly below it is found by binary search
    /// (`O(log C)`); suffix sums of that histogram are exactly the per-
    /// threshold strictly-above counts, so `counts[k] ==
    /// count_above(values, thresholds[k])` for every `k` — integers, hence
    /// bit-identical to the per-threshold scans. Non-finite thresholds
    /// (e.g. `NaN`/`∞` placeholders for candidates that will error out
    /// before their count is read) simply count zero.
    pub fn count_above_many(
        values: &[f64],
        thresholds: &[f64],
        scratch: &mut MultiCountScratch,
        counts: &mut Vec<usize>,
    ) {
        let c = thresholds.len();
        scratch.order.clear();
        scratch.order.extend(0..c);
        scratch
            .order
            .sort_unstable_by(|&a, &b| thresholds[a].total_cmp(&thresholds[b]));
        scratch.sorted.clear();
        scratch
            .sorted
            .extend(scratch.order.iter().map(|&k| thresholds[k]));
        scratch.hist.clear();
        scratch.hist.resize(c + 1, 0);
        // `j` must be the number of thresholds strictly below `v`. For the
        // small candidate ladders of Stage-1 a branchless linear count over
        // the sorted thresholds beats binary search: no data-dependent
        // branches to mispredict and the compare+sum vectorizes. Both forms
        // produce the same integer (`t < v` is false for NaN on either
        // side), so the counts stay bit-identical either way.
        if c <= 64 {
            for &v in values {
                let mut j = 0usize;
                for &t in &scratch.sorted {
                    j += usize::from(t < v);
                }
                scratch.hist[j] += 1;
            }
        } else {
            for &v in values {
                let j = scratch.sorted.partition_point(|&t| t < v);
                scratch.hist[j] += 1;
            }
        }
        counts.clear();
        counts.resize(c, 0);
        let mut above = 0usize;
        for pos in (0..c).rev() {
            above += scratch.hist[pos + 1];
            counts[scratch.order[pos]] = above;
        }
    }

    /// [`slack_ratio`] for several candidate capacities: entry `k` equals
    /// `slack_ratio(values, capacities[k])` bit-for-bit. Delegates per
    /// capacity so the lane-accumulator fold of [`slack_ratio`] stays the
    /// single source of truth for the reduction order.
    pub fn slack_ratio_multi(values: &[f64], capacities: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(capacities.iter().map(|&c| slack_ratio(values, c)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::ResourceSpace;

    fn reg(values: &[f64]) -> RegularSeries {
        RegularSeries::new(300.0, values.to_vec()).unwrap()
    }

    fn two_dim() -> UsageTrace {
        UsageTrace::new(
            ResourceSpace::vcores_memory(),
            vec![reg(&[1.0, 3.0, 2.0]), reg(&[8.0, 4.0, 6.0])],
        )
        .unwrap()
    }

    #[test]
    fn round_trips_row_traces() {
        let traces = vec![UsageTrace::single(reg(&[2.0, 5.0])), two_dim()];
        let cols = TraceColumns::from_traces(&traces);
        assert_eq!(cols.len(), 2);
        assert_eq!(cols.total_values(), 2 + 6);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(&cols.to_trace(i).unwrap(), t);
        }
    }

    #[test]
    fn views_expose_contiguous_dims() {
        let cols = TraceColumns::from_traces(&[two_dim()]);
        let v = cols.trace(0);
        assert_eq!(v.dims(), 2);
        assert_eq!(v.bins(), 3);
        assert_eq!(v.bin_seconds(), 300.0);
        assert_eq!(v.dim(0), &[1.0, 3.0, 2.0]);
        assert_eq!(v.dim(1), &[8.0, 4.0, 6.0]);
    }

    #[test]
    fn from_parts_validates_arity() {
        let space = ResourceSpace::vcores_memory();
        let err = TraceColumns::from_parts(&[(space, 300.0, vec![vec![1.0]])]).unwrap_err();
        assert!(matches!(err, LorentzError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_parts_rejects_empty_trace() {
        let space = ResourceSpace::vcores_only();
        let err = TraceColumns::from_parts(&[(space, 300.0, vec![vec![]])]).unwrap_err();
        assert!(matches!(err, LorentzError::InvalidTelemetry(m) if m.contains("empty trace")));
    }

    #[test]
    fn from_parts_rejects_nan_samples() {
        let space = ResourceSpace::vcores_only();
        let err =
            TraceColumns::from_parts(&[(space, 300.0, vec![vec![1.0, f64::NAN]])]).unwrap_err();
        assert!(matches!(err, LorentzError::InvalidTelemetry(m) if m.contains("NaN")));
    }

    #[test]
    fn from_parts_rejects_ragged_and_bad_bins() {
        let space = ResourceSpace::vcores_memory();
        let ragged =
            TraceColumns::from_parts(&[(space.clone(), 300.0, vec![vec![1.0, 2.0], vec![1.0]])]);
        assert!(matches!(
            ragged.unwrap_err(),
            LorentzError::InvalidTelemetry(m) if m.contains("ragged")
        ));
        let bad_bin =
            TraceColumns::from_parts(&[(ResourceSpace::vcores_only(), 0.0, vec![vec![1.0]])]);
        assert!(bad_bin.is_err());
    }

    #[test]
    fn single_sample_trace_is_valid() {
        let space = ResourceSpace::vcores_only();
        let cols = TraceColumns::from_parts(&[(space, 300.0, vec![vec![2.5]])]).unwrap();
        assert_eq!(cols.trace(0).dim(0), &[2.5]);
        assert_eq!(cols.to_trace(0).unwrap().bins(), 1);
    }

    #[test]
    fn checked_slack_ratio_typed_errors_per_branch() {
        // Empty trace.
        assert!(matches!(
            kernels::checked_slack_ratio(&[], 4.0).unwrap_err(),
            LorentzError::InvalidTelemetry(m) if m.contains("empty trace")
        ));
        // Invalid capacities (zero, negative, non-finite) instead of ±inf/NaN ratios.
        for cap in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                kernels::checked_slack_ratio(&[1.0], cap).unwrap_err(),
                LorentzError::InvalidTelemetry(m) if m.contains("invalid capacity")
            ));
        }
        // NaN samples.
        assert!(matches!(
            kernels::checked_slack_ratio(&[1.0, f64::NAN], 4.0).unwrap_err(),
            LorentzError::InvalidTelemetry(m) if m.contains("NaN sample")
        ));
        // Single-sample traces are fine.
        assert_eq!(kernels::checked_slack_ratio(&[1.0], 4.0).unwrap(), 0.75);
    }

    #[test]
    fn kernels_match_naive_forms() {
        let vals = [1.0, 3.5, 2.0, 3.5, 0.5];
        assert_eq!(kernels::count_above(&vals, 2.0), 2);
        let mut sorted = vals.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        for thr in [-1.0, 0.5, 2.0, 3.5, 9.0] {
            assert_eq!(
                kernels::count_above_sorted(&sorted, thr),
                kernels::count_above(&vals, thr),
                "thr={thr}"
            );
        }
        let mut mask = vec![false; vals.len()];
        kernels::or_above(&vals, 3.0, &mut mask);
        assert_eq!(mask, vec![false, true, false, true, false]);

        // Reference fold mirroring the documented lane contract: lane k
        // sums bins k, k+4, k+8, …, lanes combine pairwise, tail in order.
        let term = |w: f64| (4.0 - w) / 4.0;
        let lanes = [term(vals[0]), term(vals[1]), term(vals[2]), term(vals[3])];
        let reference =
            (((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + term(vals[4])) / vals.len() as f64;
        assert_eq!(kernels::slack_ratio(&vals, 4.0), reference);
        // And it is within float tolerance of the plain sequential mean.
        let naive = vals.iter().map(|&w| term(w)).sum::<f64>() / vals.len() as f64;
        assert!((kernels::slack_ratio(&vals, 4.0) - naive).abs() < 1e-12);
        let mut multi = Vec::new();
        kernels::slack_ratio_multi(&vals, &[2.0, 4.0, 8.0], &mut multi);
        assert_eq!(multi[1], kernels::slack_ratio(&vals, 4.0));
        assert_eq!(multi[0], kernels::slack_ratio(&vals, 2.0));
        assert_eq!(multi[2], kernels::slack_ratio(&vals, 8.0));
    }

    #[test]
    fn count_above_many_matches_per_threshold_scans() {
        let vals = [1.0, 3.5, 2.0, 3.5, 0.5, 2.0, 7.25];
        // Unsorted thresholds with duplicates, extremes, exact-value hits,
        // and non-finite placeholders.
        let thresholds = [2.0, -1.0, 3.5, 3.5, 9.0, 0.5, f64::INFINITY, f64::NAN, 7.25];
        let mut scratch = kernels::MultiCountScratch::default();
        let mut counts = Vec::new();
        // Twice through the same scratch: buffers must reset correctly.
        for _ in 0..2 {
            kernels::count_above_many(&vals, &thresholds, &mut scratch, &mut counts);
            let naive: Vec<usize> = thresholds
                .iter()
                .map(|&t| kernels::count_above(&vals, t))
                .collect();
            assert_eq!(counts, naive);
        }
    }
}
