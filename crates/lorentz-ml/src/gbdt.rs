//! Gradient-boosted regression trees (squared loss).
//!
//! The paper's target-encoding provisioner fits LightGBM with 100 trees
//! (Table 2). This is the equivalent ensemble: a mean base score followed by
//! shrinkage-weighted trees fitted to residuals, with optional row
//! subsampling (stochastic gradient boosting). Feature binning is computed
//! once and shared across all trees.

use crate::binning::Binner;
use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use lorentz_types::LorentzError;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Gradient boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostingConfig {
    /// Number of boosting rounds (trees). Paper: 100.
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Fraction of rows sampled (without replacement) per round; 1.0
    /// disables subsampling.
    pub subsample: f64,
    /// Per-tree growth parameters.
    pub tree: TreeConfig,
    /// RNG seed for row subsampling.
    pub seed: u64,
}

impl Default for GradientBoostingConfig {
    fn default() -> Self {
        Self {
            n_trees: 100,
            learning_rate: 0.1,
            subsample: 1.0,
            tree: TreeConfig {
                max_depth: 5,
                min_samples_leaf: 5,
                ..TreeConfig::default()
            },
            seed: 0,
        }
    }
}

impl GradientBoostingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] on out-of-range values.
    pub fn validate(&self) -> Result<(), LorentzError> {
        if self.n_trees == 0 {
            return Err(LorentzError::InvalidConfig("n_trees must be >= 1".into()));
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 || self.learning_rate > 1.0
        {
            return Err(LorentzError::InvalidConfig(format!(
                "learning_rate must be in (0, 1], got {}",
                self.learning_rate
            )));
        }
        if !self.subsample.is_finite() || self.subsample <= 0.0 || self.subsample > 1.0 {
            return Err(LorentzError::InvalidConfig(format!(
                "subsample must be in (0, 1], got {}",
                self.subsample
            )));
        }
        self.tree.validate()
    }
}

/// A fitted gradient-boosted ensemble.
///
/// ```
/// use lorentz_ml::{Dataset, GradientBoosting, GradientBoostingConfig};
///
/// // y = 3x on a small grid.
/// let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
/// let labels: Vec<f64> = (0..50).map(|i| 3.0 * f64::from(i)).collect();
/// let data = Dataset::from_rows(vec!["x".into()], &rows, labels)?;
///
/// let model = GradientBoosting::fit(
///     &data,
///     &GradientBoostingConfig { n_trees: 40, learning_rate: 0.3, ..Default::default() },
/// )?;
/// let prediction = model.predict_row(&[20.0]);
/// assert!((prediction - 60.0).abs() < 3.0);
/// # Ok::<(), lorentz_types::LorentzError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoosting {
    base_score: f64,
    learning_rate: f64,
    trees: Vec<DecisionTree>,
}

impl GradientBoosting {
    /// Fits the ensemble.
    ///
    /// # Errors
    /// Returns [`LorentzError`] for invalid configs or an empty dataset.
    pub fn fit(data: &Dataset, config: &GradientBoostingConfig) -> Result<Self, LorentzError> {
        config.validate()?;
        if data.is_empty() {
            return Err(LorentzError::Model("cannot fit on an empty dataset".into()));
        }
        let binner = Binner::fit(data, config.tree.max_bins)?;
        let binned = binner.bin_dataset(data);
        let features: Vec<usize> = (0..data.features()).collect();
        let all_rows: Vec<u32> = (0..data.rows() as u32).collect();
        let mut rng = SmallRng::seed_from_u64(config.seed);

        let base_score = data.label_mean();
        let mut predictions = vec![base_score; data.rows()];
        let mut residuals = vec![0.0; data.rows()];
        let mut row_buf = vec![0.0; data.features()];
        let mut trees = Vec::with_capacity(config.n_trees);

        let sample_size =
            ((data.rows() as f64 * config.subsample).round() as usize).clamp(1, data.rows());

        for _ in 0..config.n_trees {
            for (r, res) in residuals.iter_mut().enumerate() {
                *res = data.labels()[r] - predictions[r];
            }
            let rows: Vec<u32> = if sample_size == data.rows() {
                all_rows.clone()
            } else {
                let mut sampled: Vec<u32> = all_rows
                    .choose_multiple(&mut rng, sample_size)
                    .copied()
                    .collect();
                sampled.sort_unstable();
                sampled
            };
            let tree = DecisionTree::fit_prebinned(
                &binner,
                &binned,
                &residuals,
                rows,
                &features,
                &config.tree,
            );
            for (r, pred) in predictions.iter_mut().enumerate() {
                data.fill_row(r, &mut row_buf);
                *pred += config.learning_rate * tree.predict_row(&row_buf);
            }
            trees.push(tree);
        }

        Ok(Self {
            base_score,
            learning_rate: config.learning_rate,
            trees,
        })
    }

    /// Predicts one row of raw feature values.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    /// Predicts every row of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        let mut row_buf = vec![0.0; data.features()];
        (0..data.rows())
            .map(|r| {
                data.fill_row(r, &mut row_buf);
                self.predict_row(&row_buf)
            })
            .collect()
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Gain-based feature importance aggregated over all trees, normalized
    /// to sum to 1.
    pub fn feature_importance(&self, n_features: usize) -> Vec<f64> {
        let mut imp = vec![0.0; n_features];
        for tree in &self.trees {
            tree.accumulate_importance(&mut imp);
        }
        crate::tree::normalize_importance(imp)
    }

    /// The constant base score (training label mean).
    pub fn base_score(&self) -> f64 {
        self.base_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    fn friedman_like(n: usize) -> Dataset {
        // Smooth nonlinear target on two features.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x0 = (i % 37) as f64 / 37.0;
                let x1 = (i % 23) as f64 / 23.0;
                vec![x0, x1]
            })
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| 3.0 * r[0] * r[0] + (4.0 * r[1]).sin())
            .collect();
        Dataset::from_rows(vec!["x0".into(), "x1".into()], &rows, labels).unwrap()
    }

    #[test]
    fn boosting_beats_a_single_tree() {
        let d = friedman_like(500);
        let single = DecisionTree::fit(
            &d,
            &TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        let cfg = GradientBoostingConfig {
            n_trees: 50,
            learning_rate: 0.2,
            tree: TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            ..GradientBoostingConfig::default()
        };
        let boosted = GradientBoosting::fit(&d, &cfg).unwrap();
        let rmse_single = rmse(&single.predict(&d), d.labels());
        let rmse_boost = rmse(&boosted.predict(&d), d.labels());
        assert!(
            rmse_boost < rmse_single / 2.0,
            "boosted {rmse_boost} vs single {rmse_single}"
        );
    }

    #[test]
    fn more_trees_reduce_training_error() {
        let d = friedman_like(300);
        let mk = |n_trees| GradientBoostingConfig {
            n_trees,
            learning_rate: 0.1,
            ..GradientBoostingConfig::default()
        };
        let few = GradientBoosting::fit(&d, &mk(5)).unwrap();
        let many = GradientBoosting::fit(&d, &mk(80)).unwrap();
        assert!(rmse(&many.predict(&d), d.labels()) < rmse(&few.predict(&d), d.labels()));
    }

    #[test]
    fn zero_trees_rejected_and_base_score_is_mean() {
        let d = friedman_like(50);
        let bad = GradientBoostingConfig {
            n_trees: 0,
            ..GradientBoostingConfig::default()
        };
        assert!(GradientBoosting::fit(&d, &bad).is_err());
        let m = GradientBoosting::fit(
            &d,
            &GradientBoostingConfig {
                n_trees: 1,
                ..GradientBoostingConfig::default()
            },
        )
        .unwrap();
        assert!((m.base_score() - d.label_mean()).abs() < 1e-12);
    }

    #[test]
    fn subsampling_is_deterministic_per_seed() {
        let d = friedman_like(200);
        let mk = |seed| GradientBoostingConfig {
            n_trees: 10,
            subsample: 0.5,
            seed,
            ..GradientBoostingConfig::default()
        };
        let a = GradientBoosting::fit(&d, &mk(1)).unwrap();
        let b = GradientBoosting::fit(&d, &mk(1)).unwrap();
        let c = GradientBoosting::fit(&d, &mk(2)).unwrap();
        assert_eq!(a.predict(&d), b.predict(&d));
        assert_ne!(a.predict(&d), c.predict(&d));
    }

    #[test]
    fn invalid_hyperparameters_rejected() {
        let ok = GradientBoostingConfig::default();
        assert!(ok.validate().is_ok());
        for (lr, sub) in [(0.0, 1.0), (1.5, 1.0), (0.1, 0.0), (0.1, 1.5)] {
            let cfg = GradientBoostingConfig {
                learning_rate: lr,
                subsample: sub,
                ..GradientBoostingConfig::default()
            };
            assert!(cfg.validate().is_err(), "lr={lr} sub={sub}");
        }
    }

    #[test]
    fn constant_target_predicts_constant() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, vec![7.0; 50]).unwrap();
        let m = GradientBoosting::fit(&d, &GradientBoostingConfig::default()).unwrap();
        for r in 0..d.rows() {
            assert!((m.predict_row(&d.row(r)) - 7.0).abs() < 1e-9);
        }
    }
}
