//! The label transform `ξ` and its inverse (§3.3 "Transformations").
//!
//! Compute capacities live on an exponential ladder (1, 2, 4, 8, ...), which
//! makes untransformed regression heteroskedastic: errors on large SKUs
//! dwarf errors on small ones. Fitting in `ξ = log2` space makes the ladder
//! uniform and turns the personalization adjustment `λ` into "how many
//! powers of 2 to shift by" (Eq. 14).

use lorentz_types::LorentzError;

/// `ξ(c) = log2(c)`.
///
/// # Errors
/// Returns [`LorentzError::Model`] if `c` is not strictly positive and
/// finite.
pub fn xi(c: f64) -> Result<f64, LorentzError> {
    if !c.is_finite() || c <= 0.0 {
        return Err(LorentzError::Model(format!(
            "log2 transform requires positive finite input, got {c}"
        )));
    }
    Ok(c.log2())
}

/// `ξ⁻¹(z) = 2^z`.
///
/// # Errors
/// Returns [`LorentzError::Model`] if `z` is not finite.
pub fn xi_inv(z: f64) -> Result<f64, LorentzError> {
    if !z.is_finite() {
        return Err(LorentzError::Model(format!(
            "inverse log2 transform requires finite input, got {z}"
        )));
    }
    Ok(z.exp2())
}

/// Applies `ξ` to a slice of capacities.
///
/// # Errors
/// Fails on the first invalid entry.
pub fn xi_slice(values: &[f64]) -> Result<Vec<f64>, LorentzError> {
    values.iter().map(|&v| xi(v)).collect()
}

/// Applies `ξ⁻¹` to a slice of transformed values.
///
/// # Errors
/// Fails on the first invalid entry.
pub fn xi_inv_slice(values: &[f64]) -> Result<Vec<f64>, LorentzError> {
    values.iter().map(|&v| xi_inv(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xi_round_trips() {
        for c in [1.0, 2.0, 4.0, 20.0, 128.0, 3.7] {
            let z = xi(c).unwrap();
            let back = xi_inv(z).unwrap();
            assert!((back - c).abs() < 1e-12, "{c}");
        }
    }

    #[test]
    fn xi_makes_the_ladder_uniform() {
        let ladder = [2.0, 4.0, 8.0, 16.0];
        let transformed = xi_slice(&ladder).unwrap();
        let gaps: Vec<f64> = transformed.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().all(|&g| (g - 1.0).abs() < 1e-12));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(xi(0.0).is_err());
        assert!(xi(-2.0).is_err());
        assert!(xi(f64::NAN).is_err());
        assert!(xi_inv(f64::INFINITY).is_err());
        assert!(xi_slice(&[2.0, 0.0]).is_err());
        assert!(xi_inv_slice(&[1.0, f64::NAN]).is_err());
    }
}
