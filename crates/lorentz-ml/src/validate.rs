//! K-fold cross-validation and validation-gated early stopping.
//!
//! The production pipeline "confirms that the new model's performance on a
//! validation dataset is acceptable" before publishing (§4, Fig. 8 B);
//! these utilities provide the measurement machinery.

use crate::dataset::Dataset;
use crate::gbdt::{GradientBoosting, GradientBoostingConfig};
use crate::metrics::rmse;
use lorentz_types::LorentzError;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Per-fold and aggregate cross-validation scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvScores {
    /// Held-out RMSE per fold.
    pub fold_rmse: Vec<f64>,
    /// Mean held-out RMSE.
    pub mean_rmse: f64,
    /// Standard deviation across folds.
    pub std_rmse: f64,
}

/// K-fold cross-validation of an arbitrary fit/predict pair.
///
/// `fit` receives the training fold; the returned closure predicts a raw
/// feature row. Folds are contiguous slices of a seeded shuffle.
///
/// # Errors
/// Returns [`LorentzError::InvalidConfig`] if `k < 2` or there are fewer
/// rows than folds, and propagates `fit` errors.
pub fn k_fold_cv<F, P>(
    data: &Dataset,
    k: usize,
    seed: u64,
    mut fit: F,
) -> Result<CvScores, LorentzError>
where
    F: FnMut(&Dataset) -> Result<P, LorentzError>,
    P: Fn(&[f64]) -> f64,
{
    if k < 2 {
        return Err(LorentzError::InvalidConfig(format!(
            "k must be >= 2, got {k}"
        )));
    }
    if data.rows() < k {
        return Err(LorentzError::InvalidConfig(format!(
            "{} rows cannot form {k} folds",
            data.rows()
        )));
    }
    let mut order: Vec<usize> = (0..data.rows()).collect();
    order.shuffle(&mut SmallRng::seed_from_u64(seed));

    let mut fold_rmse = Vec::with_capacity(k);
    for fold in 0..k {
        let lo = fold * data.rows() / k;
        let hi = (fold + 1) * data.rows() / k;
        let test_rows: Vec<usize> = order[lo..hi].to_vec();
        let train_rows: Vec<usize> = order[..lo].iter().chain(&order[hi..]).copied().collect();
        let model = fit(&data.subset(&train_rows))?;
        let preds: Vec<f64> = test_rows.iter().map(|&r| model(&data.row(r))).collect();
        let targets: Vec<f64> = test_rows.iter().map(|&r| data.labels()[r]).collect();
        fold_rmse.push(rmse(&preds, &targets));
    }
    let mean_rmse = fold_rmse.iter().sum::<f64>() / k as f64;
    let var = fold_rmse
        .iter()
        .map(|r| (r - mean_rmse) * (r - mean_rmse))
        .sum::<f64>()
        / (k - 1) as f64;
    Ok(CvScores {
        fold_rmse,
        mean_rmse,
        std_rmse: var.sqrt(),
    })
}

/// Result of early-stopped boosting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EarlyStopResult {
    /// The fitted model at the selected round count.
    pub model: GradientBoosting,
    /// The round count selected by the validation set.
    pub best_rounds: usize,
    /// Validation RMSE at the selected round count.
    pub best_rmse: f64,
    /// Validation RMSE per evaluated checkpoint (every `step` rounds).
    pub curve: Vec<(usize, f64)>,
}

/// Fits gradient boosting with checkpointed validation-set early stopping:
/// evaluates every `step` rounds up to `config.n_trees` and returns the
/// model refit at the best checkpoint.
///
/// (The checkpoint refit keeps [`GradientBoosting`] free of incremental
/// APIs; with shared binning the cost is modest and the selection is
/// identical.)
///
/// # Errors
/// Returns [`LorentzError`] for invalid configs, an empty validation set,
/// or fit failures.
pub fn fit_with_early_stopping(
    train: &Dataset,
    validation: &Dataset,
    config: &GradientBoostingConfig,
    step: usize,
) -> Result<EarlyStopResult, LorentzError> {
    if validation.is_empty() {
        return Err(LorentzError::InvalidConfig(
            "validation set must be non-empty".into(),
        ));
    }
    if step == 0 {
        return Err(LorentzError::InvalidConfig("step must be >= 1".into()));
    }
    config.validate()?;

    let mut curve = Vec::new();
    let mut best: Option<(usize, f64)> = None;
    let mut rounds = step.min(config.n_trees);
    loop {
        let cfg = GradientBoostingConfig {
            n_trees: rounds,
            ..*config
        };
        let model = GradientBoosting::fit(train, &cfg)?;
        let score = rmse(&model.predict(validation), validation.labels());
        curve.push((rounds, score));
        if best.is_none_or(|(_, b)| score < b) {
            best = Some((rounds, score));
        }
        if rounds >= config.n_trees {
            break;
        }
        rounds = (rounds + step).min(config.n_trees);
    }
    let (best_rounds, best_rmse) = best.expect("at least one checkpoint");
    let model = GradientBoosting::fit(
        train,
        &GradientBoostingConfig {
            n_trees: best_rounds,
            ..*config
        },
    )?;
    Ok(EarlyStopResult {
        model,
        best_rounds,
        best_rmse,
        curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, TreeConfig};

    fn noisy_quadratic(n: usize, noise_mod: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 29) as f64 / 29.0]).collect();
        let labels: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| r[0] * r[0] + ((i * 7919) % noise_mod) as f64 / noise_mod as f64 * 0.2)
            .collect();
        Dataset::from_rows(vec!["x".into()], &rows, labels).unwrap()
    }

    #[test]
    fn cv_scores_are_sane() {
        let d = noisy_quadratic(120, 11);
        let scores = k_fold_cv(&d, 5, 1, |train| {
            let tree = DecisionTree::fit(
                train,
                &TreeConfig {
                    max_depth: 4,
                    ..TreeConfig::default()
                },
            )?;
            Ok(move |row: &[f64]| tree.predict_row(row))
        })
        .unwrap();
        assert_eq!(scores.fold_rmse.len(), 5);
        assert!(scores.mean_rmse > 0.0 && scores.mean_rmse < 0.5);
        assert!(scores.std_rmse >= 0.0);
    }

    #[test]
    fn cv_detects_overfitting_models() {
        let d = noisy_quadratic(100, 7);
        let shallow = k_fold_cv(&d, 5, 2, |train| {
            let t = DecisionTree::fit(
                train,
                &TreeConfig {
                    max_depth: 3,
                    min_samples_leaf: 5,
                    ..TreeConfig::default()
                },
            )?;
            Ok(move |row: &[f64]| t.predict_row(row))
        })
        .unwrap();
        let deep = k_fold_cv(&d, 5, 2, |train| {
            let t = DecisionTree::fit(
                train,
                &TreeConfig {
                    max_depth: 12,
                    min_samples_leaf: 1,
                    ..TreeConfig::default()
                },
            )?;
            Ok(move |row: &[f64]| t.predict_row(row))
        })
        .unwrap();
        // The depth-12 single tree memorizes per-row noise; held-out error
        // must not be better than the regularized tree's by any margin.
        assert!(deep.mean_rmse >= shallow.mean_rmse * 0.9);
    }

    #[test]
    fn cv_validates_inputs() {
        let d = noisy_quadratic(10, 3);
        let fit = |train: &Dataset| {
            let t = DecisionTree::fit(train, &TreeConfig::default())?;
            Ok(move |row: &[f64]| t.predict_row(row))
        };
        assert!(k_fold_cv(&d, 1, 0, fit).is_err());
        assert!(k_fold_cv(&d, 11, 0, |train: &Dataset| {
            let t = DecisionTree::fit(train, &TreeConfig::default())?;
            Ok(move |row: &[f64]| t.predict_row(row))
        })
        .is_err());
    }

    #[test]
    fn early_stopping_selects_a_checkpoint() {
        let train = noisy_quadratic(160, 13);
        let val = noisy_quadratic(60, 17);
        let cfg = GradientBoostingConfig {
            n_trees: 60,
            learning_rate: 0.3,
            ..GradientBoostingConfig::default()
        };
        let r = fit_with_early_stopping(&train, &val, &cfg, 10).unwrap();
        assert!(r.best_rounds >= 10 && r.best_rounds <= 60);
        assert_eq!(r.model.n_trees(), r.best_rounds);
        assert_eq!(r.curve.len(), 6);
        // The selected checkpoint achieves the minimum of the curve.
        let min = r
            .curve
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        assert!((r.best_rmse - min).abs() < 1e-12);
    }

    #[test]
    fn early_stopping_validates_inputs() {
        let train = noisy_quadratic(40, 5);
        let cfg = GradientBoostingConfig::default();
        let empty = Dataset::new(vec!["x".into()], vec![vec![]], vec![]);
        // Empty validation dataset cannot even be constructed with rows; use
        // a mismatched step instead.
        assert!(empty.is_ok());
        assert!(fit_with_early_stopping(&train, &empty.unwrap(), &cfg, 10).is_err());
        let val = noisy_quadratic(10, 5);
        assert!(fit_with_early_stopping(&train, &val, &cfg, 0).is_err());
    }
}
