//! Regression metrics.

/// Root mean squared error. Returns `NaN` for empty inputs.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return f64::NAN;
    }
    let mse: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, y)| (p - y) * (p - y))
        .sum::<f64>()
        / predictions.len() as f64;
    mse.sqrt()
}

/// Mean absolute error. Returns `NaN` for empty inputs.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return f64::NAN;
    }
    predictions
        .iter()
        .zip(targets)
        .map(|(p, y)| (p - y).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Coefficient of determination R². 1 is perfect; 0 matches the mean
/// predictor; negative is worse than the mean predictor. Returns `NaN` for
/// empty inputs or zero-variance targets.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn r2(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return f64::NAN;
    }
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    let ss_tot: f64 = targets.iter().map(|y| (y - mean) * (y - mean)).sum();
    if ss_tot == 0.0 {
        return f64::NAN;
    }
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, y)| (p - y) * (p - y))
        .sum();
    1.0 - ss_res / ss_tot
}

/// Pinball (quantile) loss at quantile `q ∈ (0, 1)` — lower is better.
/// Useful when evaluating percentile-style recommenders. Returns `NaN` for
/// empty inputs.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pinball(predictions: &[f64], targets: &[f64], q: f64) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    predictions
        .iter()
        .zip(targets)
        .map(|(p, y)| {
            let d = y - p;
            if d >= 0.0 {
                q * d
            } else {
                (q - 1.0) * d
            }
        })
        .sum::<f64>()
        / predictions.len() as f64
}

/// Fraction of predictions whose value exactly matches the target within
/// `tol` — "exact SKU hit rate" when both sides are discretized capacities.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn exact_match_rate(predictions: &[f64], targets: &[f64], tol: f64) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return f64::NAN;
    }
    let hits = predictions
        .iter()
        .zip(targets)
        .filter(|(p, y)| (*p - *y).abs() <= tol)
        .count();
    hits as f64 / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_and_mae_basics() {
        let p = [1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&p, &y), 0.0);
        assert_eq!(mae(&p, &y), 0.0);
        let p = [0.0, 0.0];
        let y = [3.0, 4.0];
        assert!((rmse(&p, &y) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(mae(&p, &y), 3.5);
    }

    #[test]
    fn r2_reference_points() {
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(r2(&y, &y), 1.0);
        let mean_pred = [2.5; 4];
        assert!(r2(&mean_pred, &y).abs() < 1e-12);
        let bad = [4.0, 3.0, 2.0, 1.0];
        assert!(r2(&bad, &y) < 0.0);
        assert!(r2(&[1.0], &[1.0]).is_nan()); // zero variance
    }

    #[test]
    fn pinball_is_asymmetric() {
        // Under-prediction is penalized q, over-prediction (1-q).
        let under = pinball(&[0.0], &[1.0], 0.9);
        let over = pinball(&[1.0], &[0.0], 0.9);
        assert!((under - 0.9).abs() < 1e-12);
        assert!((over - 0.1).abs() < 1e-12);
        assert_eq!(pinball(&[1.0], &[1.0], 0.9), 0.0);
    }

    #[test]
    fn exact_match_rate_counts_hits() {
        let p = [2.0, 4.0, 8.0, 8.0];
        let y = [2.0, 8.0, 8.0, 4.0];
        assert_eq!(exact_match_rate(&p, &y, 1e-9), 0.5);
    }

    #[test]
    fn empty_inputs_give_nan() {
        assert!(rmse(&[], &[]).is_nan());
        assert!(mae(&[], &[]).is_nan());
        assert!(r2(&[], &[]).is_nan());
        assert!(pinball(&[], &[], 0.5).is_nan());
        assert!(exact_match_rate(&[], &[], 0.0).is_nan());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
