//! Seeded dataset splitting.

use lorentz_types::LorentzError;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Row indices of a train/validation/test split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitIndices {
    /// Training rows.
    pub train: Vec<usize>,
    /// Validation rows.
    pub val: Vec<usize>,
    /// Test rows.
    pub test: Vec<usize>,
}

/// Splits `n` rows into train/validation/test partitions by fraction
/// (the paper uses 80/10/10), shuffled with the given seed.
///
/// Fractions must be positive and sum to at most 1; any remainder rows go to
/// the training partition so nothing is silently dropped.
///
/// # Errors
/// Returns [`LorentzError::InvalidConfig`] for invalid fractions or if any
/// partition would be empty.
pub fn three_way_split(
    n: usize,
    train_frac: f64,
    val_frac: f64,
    test_frac: f64,
    seed: u64,
) -> Result<SplitIndices, LorentzError> {
    for (name, f) in [
        ("train", train_frac),
        ("val", val_frac),
        ("test", test_frac),
    ] {
        if !f.is_finite() || f <= 0.0 || f >= 1.0 {
            return Err(LorentzError::InvalidConfig(format!(
                "{name} fraction must be in (0, 1), got {f}"
            )));
        }
    }
    let total = train_frac + val_frac + test_frac;
    if total > 1.0 + 1e-9 {
        return Err(LorentzError::InvalidConfig(format!(
            "split fractions sum to {total} > 1"
        )));
    }

    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut SmallRng::seed_from_u64(seed));

    let n_val = (n as f64 * val_frac).round() as usize;
    let n_test = (n as f64 * test_frac).round() as usize;
    if n_val == 0 || n_test == 0 || n_val + n_test >= n {
        return Err(LorentzError::InvalidConfig(format!(
            "cannot split {n} rows into non-empty partitions at {train_frac}/{val_frac}/{test_frac}"
        )));
    }

    let test = indices.split_off(n - n_test);
    let val = indices.split_off(n - n_test - n_val);
    Ok(SplitIndices {
        train: indices,
        val,
        test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_is_a_partition() {
        let s = three_way_split(1000, 0.8, 0.1, 0.1, 7).unwrap();
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), 1000);
        let all: HashSet<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        assert_eq!(all.len(), 1000);
        assert_eq!(s.val.len(), 100);
        assert_eq!(s.test.len(), 100);
        assert_eq!(s.train.len(), 800);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let a = three_way_split(100, 0.8, 0.1, 0.1, 1).unwrap();
        let b = three_way_split(100, 0.8, 0.1, 0.1, 1).unwrap();
        let c = three_way_split(100, 0.8, 0.1, 0.1, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn split_shuffles_rows() {
        let s = three_way_split(1000, 0.8, 0.1, 0.1, 3).unwrap();
        // A sorted train partition would mean no shuffling happened.
        assert!(s.train.windows(2).any(|w| w[0] > w[1]));
    }

    #[test]
    fn invalid_fractions_rejected() {
        assert!(three_way_split(100, 0.0, 0.5, 0.5, 0).is_err());
        assert!(three_way_split(100, 0.9, 0.2, 0.1, 0).is_err());
        assert!(three_way_split(100, 0.8, f64::NAN, 0.1, 0).is_err());
        assert!(three_way_split(100, 1.0, 0.1, 0.1, 0).is_err());
    }

    #[test]
    fn tiny_inputs_rejected_rather_than_empty_partitions() {
        assert!(three_way_split(3, 0.8, 0.1, 0.1, 0).is_err());
    }
}
