//! Ridge-regularized linear regression.
//!
//! A simple closed-form baseline for the tree ensembles: the paper's §3.3
//! framework "technically admits arbitrary ... regression/classification
//! methods", and a linear model over target-encoded features is the
//! natural sanity-check comparator (it can only express additive structure
//! in log2 space, which is exactly the multiplicative structure of
//! capacity needs).

use crate::dataset::Dataset;
use lorentz_types::LorentzError;
use serde::{Deserialize, Serialize};

/// Ridge regression hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RidgeConfig {
    /// L2 penalty λ ≥ 0 on the weights (the intercept is unpenalized).
    pub l2: f64,
}

impl Default for RidgeConfig {
    fn default() -> Self {
        Self { l2: 1e-3 }
    }
}

/// A fitted ridge regression model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RidgeRegression {
    intercept: f64,
    weights: Vec<f64>,
    /// Per-feature means used to center inputs (keeps the normal equations
    /// well-conditioned and the intercept unpenalized).
    feature_means: Vec<f64>,
}

impl RidgeRegression {
    /// Fits the model by solving the (centered) normal equations with
    /// Gaussian elimination.
    ///
    /// # Errors
    /// Returns [`LorentzError::Model`] for empty data, non-finite features,
    /// a negative penalty, or a singular system (possible at `l2 = 0` with
    /// collinear features).
    #[allow(clippy::needless_range_loop)] // symmetric-matrix index math reads clearer
    pub fn fit(data: &Dataset, config: &RidgeConfig) -> Result<Self, LorentzError> {
        if data.is_empty() {
            return Err(LorentzError::Model("cannot fit on an empty dataset".into()));
        }
        if !config.l2.is_finite() || config.l2 < 0.0 {
            return Err(LorentzError::Model(format!(
                "l2 must be finite and >= 0, got {}",
                config.l2
            )));
        }
        let n = data.rows();
        let d = data.features();
        for f in 0..d {
            if data.column(f).iter().any(|v| !v.is_finite()) {
                return Err(LorentzError::Model(format!(
                    "feature {f} contains non-finite values; impute before fitting"
                )));
            }
        }

        let feature_means: Vec<f64> = (0..d)
            .map(|f| data.column(f).iter().sum::<f64>() / n as f64)
            .collect();
        let label_mean = data.label_mean();

        // Gram matrix X'X + λI and moment vector X'y on centered data.
        let mut gram = vec![vec![0.0f64; d]; d];
        let mut moment = vec![0.0f64; d];
        for r in 0..n {
            let y = data.labels()[r] - label_mean;
            for i in 0..d {
                let xi = data.value(r, i) - feature_means[i];
                moment[i] += xi * y;
                for j in i..d {
                    let xj = data.value(r, j) - feature_means[j];
                    gram[i][j] += xi * xj;
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                gram[i][j] = gram[j][i];
            }
            gram[i][i] += config.l2;
        }

        let weights = solve(gram, moment)
            .ok_or_else(|| LorentzError::Model("singular normal equations; increase l2".into()))?;
        let intercept = label_mean;
        Ok(Self {
            intercept,
            weights,
            feature_means,
        })
    }

    /// Predicts one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.intercept
            + self
                .weights
                .iter()
                .zip(row)
                .zip(&self.feature_means)
                .map(|((w, x), m)| w * (x - m))
                .sum::<f64>()
    }

    /// Predicts every row of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        (0..data.rows())
            .map(|r| self.predict_row(&data.row(r)))
            .collect()
    }

    /// The fitted weights (aligned with the dataset's feature order).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The intercept (label mean of the training data).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

/// Gaussian elimination with partial pivoting; `None` if singular.
#[allow(clippy::needless_range_loop)] // pivoting needs raw indices
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in col + 1..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    fn linear_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 13) as f64, ((i * 3) % 7) as f64])
            .collect();
        let labels: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 0.5 * r[1] + 3.0).collect();
        Dataset::from_rows(vec!["a".into(), "b".into()], &rows, labels).unwrap()
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        let d = linear_data(100);
        let m = RidgeRegression::fit(&d, &RidgeConfig { l2: 0.0 }).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-9);
        assert!((m.weights()[1] + 0.5).abs() < 1e-9);
        assert!(rmse(&m.predict(&d), d.labels()) < 1e-9);
        // Out-of-sample point.
        assert!((m.predict_row(&[20.0, 10.0]) - (40.0 - 5.0 + 3.0)).abs() < 1e-9);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let d = linear_data(100);
        let free = RidgeRegression::fit(&d, &RidgeConfig { l2: 0.0 }).unwrap();
        let heavy = RidgeRegression::fit(&d, &RidgeConfig { l2: 1e4 }).unwrap();
        assert!(heavy.weights()[0].abs() < free.weights()[0].abs());
        // The intercept stays at the label mean (unpenalized).
        assert!((heavy.intercept() - d.label_mean()).abs() < 1e-9);
    }

    #[test]
    fn collinear_features_need_regularization() {
        // Duplicate column: singular at l2 = 0, solvable at l2 > 0.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, i as f64]).collect();
        let labels: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let d = Dataset::from_rows(vec!["a".into(), "b".into()], &rows, labels).unwrap();
        assert!(RidgeRegression::fit(&d, &RidgeConfig { l2: 0.0 }).is_err());
        let m = RidgeRegression::fit(&d, &RidgeConfig { l2: 1e-6 }).unwrap();
        assert!(rmse(&m.predict(&d), d.labels()) < 1e-3);
    }

    #[test]
    fn rejects_bad_inputs() {
        let d = linear_data(10);
        assert!(RidgeRegression::fit(&d, &RidgeConfig { l2: -1.0 }).is_err());
        let nan = Dataset::from_rows(
            vec!["a".into()],
            &[vec![f64::NAN], vec![1.0]],
            vec![0.0, 1.0],
        )
        .unwrap();
        assert!(RidgeRegression::fit(&nan, &RidgeConfig::default()).is_err());
    }

    #[test]
    fn constant_feature_is_ignored_via_centering() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![5.0, i as f64]).collect();
        let labels: Vec<f64> = (0..30).map(|i| 3.0 * i as f64).collect();
        let d = Dataset::from_rows(vec!["c".into(), "x".into()], &rows, labels).unwrap();
        let m = RidgeRegression::fit(&d, &RidgeConfig { l2: 1e-6 }).unwrap();
        assert!(rmse(&m.predict(&d), d.labels()) < 1e-6);
    }
}
