//! Quantile feature binning for histogram-based split finding.
//!
//! LightGBM-style trees do not scan raw sorted feature values; they bucket
//! each feature into at most `max_bins` quantile bins once, then evaluate
//! splits on per-bin aggregate statistics. This turns each node's split
//! search from `O(rows · log rows)` into `O(rows + bins)` per feature.

use crate::dataset::Dataset;
use lorentz_types::LorentzError;
use serde::{Deserialize, Serialize};

/// Bin index type; 65 535 bins is far beyond `max_bins` in practice.
pub type BinId = u16;

/// Per-feature quantile bin edges, plus the pre-binned training matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binner {
    /// `edges[f]` = ascending upper edges; value `v` lands in the first bin
    /// whose edge is `>= v`. A value greater than every edge lands in the
    /// last bin. `NaN` lands in bin 0 (missing-goes-left convention).
    edges: Vec<Vec<f64>>,
}

impl Binner {
    /// Learns quantile bin edges from a dataset.
    ///
    /// # Errors
    /// Returns [`LorentzError::Model`] if `max_bins < 2` or the dataset is
    /// empty.
    pub fn fit(data: &Dataset, max_bins: usize) -> Result<Self, LorentzError> {
        if max_bins < 2 {
            return Err(LorentzError::Model(format!(
                "max_bins must be >= 2, got {max_bins}"
            )));
        }
        if data.is_empty() {
            return Err(LorentzError::Model("cannot bin an empty dataset".into()));
        }
        let edges = (0..data.features())
            .map(|f| Self::fit_column(data.column(f), max_bins))
            .collect();
        Ok(Self { edges })
    }

    fn fit_column(column: &[f64], max_bins: usize) -> Vec<f64> {
        let mut sorted: Vec<f64> = column.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        sorted.dedup();
        if sorted.is_empty() {
            // All-missing column: single catch-all bin.
            return vec![f64::INFINITY];
        }
        if sorted.len() <= max_bins {
            // Few distinct values: one bin per value (exact splits).
            return sorted;
        }
        // Quantile edges over distinct values.
        let mut edges = Vec::with_capacity(max_bins);
        for b in 1..=max_bins {
            let idx = (b * sorted.len() / max_bins).min(sorted.len()) - 1;
            let e = sorted[idx];
            if edges.last() != Some(&e) {
                edges.push(e);
            }
        }
        edges
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.edges.len()
    }

    /// Number of bins for feature `f`.
    pub fn bins(&self, f: usize) -> usize {
        self.edges[f].len()
    }

    /// The real-valued threshold separating bins `<= bin` from bins
    /// `> bin` of feature `f` — what a split node stores so that prediction
    /// can run on raw features.
    pub fn threshold(&self, f: usize, bin: BinId) -> f64 {
        self.edges[f][bin as usize]
    }

    /// Maps a raw value to its bin. `NaN` maps to bin 0.
    pub fn bin_value(&self, f: usize, value: f64) -> BinId {
        if value.is_nan() {
            return 0;
        }
        let edges = &self.edges[f];
        let idx = edges.partition_point(|&e| e < value);
        idx.min(edges.len() - 1) as BinId
    }

    /// Pre-bins an entire dataset column-major.
    pub fn bin_dataset(&self, data: &Dataset) -> Vec<Vec<BinId>> {
        (0..data.features())
            .map(|f| {
                data.column(f)
                    .iter()
                    .map(|&v| self.bin_value(f, v))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(col: Vec<f64>) -> Dataset {
        let labels = vec![0.0; col.len()];
        Dataset::new(vec!["x".into()], vec![col], labels).unwrap()
    }

    #[test]
    fn few_distinct_values_get_exact_bins() {
        let b = Binner::fit(&ds(vec![1.0, 2.0, 2.0, 5.0]), 256).unwrap();
        assert_eq!(b.bins(0), 3);
        assert_eq!(b.bin_value(0, 1.0), 0);
        assert_eq!(b.bin_value(0, 2.0), 1);
        assert_eq!(b.bin_value(0, 5.0), 2);
        // Between-value inputs land in the bin whose edge covers them.
        assert_eq!(b.bin_value(0, 1.5), 1);
        assert_eq!(b.bin_value(0, 3.0), 2);
        // Out-of-range inputs clamp to the extreme bins.
        assert_eq!(b.bin_value(0, -10.0), 0);
        assert_eq!(b.bin_value(0, 100.0), 2);
    }

    #[test]
    fn many_values_quantile_compress() {
        let col: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let b = Binner::fit(&ds(col), 64).unwrap();
        assert!(b.bins(0) <= 64);
        assert!(b.bins(0) >= 32);
        // Monotone: larger values never land in smaller bins.
        let mut prev = 0;
        for v in [0.0, 100.0, 5000.0, 9999.0] {
            let bin = b.bin_value(0, v);
            assert!(bin >= prev);
            prev = bin;
        }
    }

    #[test]
    fn nan_goes_to_bin_zero() {
        let b = Binner::fit(&ds(vec![1.0, 2.0, 3.0]), 16).unwrap();
        assert_eq!(b.bin_value(0, f64::NAN), 0);
    }

    #[test]
    fn all_missing_column_has_catch_all_bin() {
        let b = Binner::fit(&ds(vec![f64::NAN, f64::NAN]), 16).unwrap();
        assert_eq!(b.bins(0), 1);
        assert_eq!(b.bin_value(0, 123.0), 0);
    }

    #[test]
    fn bin_dataset_is_columnwise() {
        let d = Dataset::new(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 3.0], vec![10.0, 5.0]],
            vec![0.0, 0.0],
        )
        .unwrap();
        let b = Binner::fit(&d, 16).unwrap();
        let binned = b.bin_dataset(&d);
        assert_eq!(binned.len(), 2);
        assert_eq!(binned[0].len(), 2);
        assert!(binned[0][0] < binned[0][1]);
        assert!(binned[1][1] < binned[1][0]);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(Binner::fit(&ds(vec![1.0]), 1).is_err());
    }

    #[test]
    fn threshold_separates_bins() {
        let b = Binner::fit(&ds(vec![1.0, 2.0, 5.0, 9.0]), 256).unwrap();
        for v in [1.0, 2.0, 5.0, 9.0] {
            let bin = b.bin_value(0, v);
            let thr = b.threshold(0, bin);
            assert!(v <= thr, "value {v} must be <= its bin threshold {thr}");
        }
    }
}
