//! A small, self-contained tabular-ML library for the Lorentz target-encoding
//! provisioner.
//!
//! The paper's second provisioner (§3.3) target-encodes categorical profile
//! features and fits a tree ensemble (LightGBM with 100 trees in Table 2).
//! Since no such library is available to this reproduction, this crate
//! implements the required pieces from scratch:
//!
//! * [`Dataset`] — column-major numeric feature matrix plus labels;
//! * [`DecisionTree`] — a regression tree with LightGBM-style quantile
//!   histogram split finding ([`Binner`], 256 bins by default);
//! * [`GradientBoosting`] — squared-loss gradient-boosted trees with
//!   shrinkage and row subsampling;
//! * [`RandomForest`] — bagged trees with feature subsampling (used by the
//!   missing-data study of §3.3);
//! * [`TargetEncoder`] — the categorical→numeric mapping `TE(x_h)` with the
//!   paper's two missing-value policies (global label mean vs. a `-999`
//!   sentinel, compared in `exp_ablation_missing_data`);
//! * [`split`] — seeded train/validation/test splitting (80/10/10 in the
//!   paper);
//! * [`metrics`] — RMSE / MAE / R² / quantile loss;
//! * [`transform`] — the `ξ = log2` label transform and its inverse (§3.3
//!   "Transformations").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binning;
pub mod dataset;
pub mod encoding;
pub mod forest;
pub mod gbdt;
pub mod linear;
pub mod metrics;
pub mod split;
pub mod transform;
pub mod tree;
pub mod validate;

pub use binning::Binner;
pub use dataset::Dataset;
pub use encoding::{MissingPolicy, TargetEncoder, TargetStatistic};
pub use forest::{RandomForest, RandomForestConfig};
pub use gbdt::{GradientBoosting, GradientBoostingConfig};
pub use linear::{RidgeConfig, RidgeRegression};
pub use split::{three_way_split, SplitIndices};
pub use tree::{DecisionTree, TreeConfig};
pub use validate::{fit_with_early_stopping, k_fold_cv, CvScores, EarlyStopResult};
