//! Target encoding of categorical profile features (§3.3).
//!
//! Target encoding replaces each categorical value with a statistic of the
//! training labels over the rows carrying that value:
//! `TE(x_h) = ψ({ĉ⁰_n | X_{n,h} = v})`, where `ψ` is a mean or percentile.
//! High-cardinality profile tags (subscription ids, resource groups) become
//! single informative numeric columns that tree ensembles split on directly,
//! instead of exploding into one-hot indicator blocks.
//!
//! Missing tags matter: the paper found that encoding "missing" as an
//! invalid sentinel (e.g. `-999`) made both random forests and
//! gradient-boosted trees severely under-predict, while replacing it with
//! the global label mean removed the problem (§3.3 "Missing data"). Both
//! policies are implemented so the ablation can reproduce the comparison.

use crate::dataset::Dataset;
use lorentz_types::{FeatureId, LorentzError, ProfileTable, ProfileVector};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The aggregation `ψ` applied to each value's label subset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TargetStatistic {
    /// Arithmetic mean of the labels.
    Mean,
    /// A percentile of the labels, `p ∈ [0, 100]`.
    Percentile(f64),
}

impl TargetStatistic {
    fn apply(self, sorted_values: &[f64]) -> f64 {
        match self {
            TargetStatistic::Mean => sorted_values.iter().sum::<f64>() / sorted_values.len() as f64,
            TargetStatistic::Percentile(p) => percentile_sorted(sorted_values, p),
        }
    }
}

/// How to encode a missing (or unseen-at-inference) categorical value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MissingPolicy {
    /// Replace with the global label statistic — the paper's recommended
    /// policy.
    GlobalMean,
    /// Replace with a fixed sentinel such as `-999.0` — the policy the paper
    /// shows to fail (kept for the ablation).
    Sentinel(f64),
}

/// A fitted target encoder: one value→statistic map per profile feature.
///
/// ```
/// use lorentz_ml::{MissingPolicy, TargetEncoder, TargetStatistic};
/// use lorentz_types::{FeatureId, ProfileSchema, ProfileTable};
///
/// let schema = ProfileSchema::new(vec!["segment"])?;
/// let mut table = ProfileTable::new(schema);
/// table.push_row(&[Some("Beverage")])?;
/// table.push_row(&[Some("Beverage")])?;
/// table.push_row(&[Some("Banking")])?;
///
/// let encoder = TargetEncoder::fit(
///     &table,
///     &[4.0, 8.0, 32.0],
///     TargetStatistic::Mean,
///     MissingPolicy::GlobalMean,
///     0.0,
/// )?;
/// // "Beverage" encodes to the mean label of its rows: (4 + 8) / 2.
/// let beverage = table.vocab(FeatureId(0)).get("Beverage").unwrap();
/// assert_eq!(encoder.encode_value(FeatureId(0), Some(beverage)), 6.0);
/// // Missing/unseen values encode to the global mean.
/// assert!((encoder.encode_value(FeatureId(0), None) - 44.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), lorentz_types::LorentzError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetEncoder {
    statistic: TargetStatistic,
    missing: MissingPolicy,
    /// m-estimate smoothing strength: encoded value is
    /// `(n·stat + m·global) / (n + m)`. 0 = raw per-value statistic.
    smoothing: f64,
    global: f64,
    maps: Vec<HashMap<u32, f64>>,
    feature_names: Vec<String>,
}

impl TargetEncoder {
    /// Fits an encoder on training profile rows and labels.
    ///
    /// # Errors
    /// Returns [`LorentzError::Model`] if lengths mismatch, the table is
    /// empty, or `smoothing` is negative/non-finite.
    pub fn fit(
        table: &ProfileTable,
        labels: &[f64],
        statistic: TargetStatistic,
        missing: MissingPolicy,
        smoothing: f64,
    ) -> Result<Self, LorentzError> {
        Self::fit_with_threads(table, labels, statistic, missing, smoothing, 0)
    }

    /// [`TargetEncoder::fit`] with an explicit cap on the per-feature worker
    /// threads (`0` = one per available core). Features are statistically
    /// independent — each value→statistic map depends only on its own
    /// column — so they fit concurrently; workers own contiguous feature
    /// ranges and are joined in feature order, making the fitted encoder
    /// identical at every thread cap.
    ///
    /// # Errors
    /// See [`TargetEncoder::fit`].
    pub fn fit_with_threads(
        table: &ProfileTable,
        labels: &[f64],
        statistic: TargetStatistic,
        missing: MissingPolicy,
        smoothing: f64,
        max_threads: usize,
    ) -> Result<Self, LorentzError> {
        if table.rows() != labels.len() {
            return Err(LorentzError::Model(format!(
                "{} profile rows vs {} labels",
                table.rows(),
                labels.len()
            )));
        }
        if table.is_empty() {
            return Err(LorentzError::Model(
                "cannot fit encoder on empty table".into(),
            ));
        }
        if !smoothing.is_finite() || smoothing < 0.0 {
            return Err(LorentzError::Model(format!(
                "smoothing must be finite and >= 0, got {smoothing}"
            )));
        }

        let mut sorted_all: Vec<f64> = labels.to_vec();
        sorted_all.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite labels"));
        let global = statistic.apply(&sorted_all);

        let schema = table.schema();
        let n_features = schema.len();
        let fit_feature = |f: FeatureId| -> HashMap<u32, f64> {
            let mut groups: HashMap<u32, Vec<f64>> = HashMap::new();
            for (row, value) in table.column(f).iter().enumerate() {
                if let Some(v) = value {
                    groups.entry(*v).or_default().push(labels[row]);
                }
            }
            groups
                .into_iter()
                .map(|(v, mut ls)| {
                    ls.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite labels"));
                    let stat = statistic.apply(&ls);
                    let n = ls.len() as f64;
                    let smoothed = if smoothing > 0.0 {
                        (n * stat + smoothing * global) / (n + smoothing)
                    } else {
                        stat
                    };
                    (v, smoothed)
                })
                .collect()
        };

        // Per-feature parallel fit: contiguous feature chunks, one scoped
        // worker each, joined in chunk order — the concatenation is the
        // same `Vec` the sequential loop builds, regardless of the cap.
        let threads = if max_threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            max_threads
        }
        .min(n_features)
        .max(1);
        let chunk = n_features.div_ceil(threads);
        let maps: Vec<HashMap<u32, f64>> = if threads == 1 {
            schema.feature_ids().map(fit_feature).collect()
        } else {
            std::thread::scope(|scope| {
                let fit_feature = &fit_feature;
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        scope.spawn(move || {
                            let lo = w * chunk;
                            let hi = ((w + 1) * chunk).min(n_features);
                            (lo..hi)
                                .map(|f| fit_feature(FeatureId(f)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("encoder worker panicked"))
                    .collect()
            })
        };

        Ok(Self {
            statistic,
            missing,
            smoothing,
            global,
            maps,
            feature_names: schema.names().to_vec(),
        })
    }

    /// The global label statistic (fallback for missing/unseen values under
    /// [`MissingPolicy::GlobalMean`]).
    pub fn global(&self) -> f64 {
        self.global
    }

    /// The numeric value a single (feature, value) pair encodes to.
    pub fn encode_value(&self, feature: FeatureId, value: Option<u32>) -> f64 {
        match value.and_then(|v| self.maps[feature.0].get(&v)) {
            Some(&stat) => stat,
            None => match self.missing {
                MissingPolicy::GlobalMean => self.global,
                MissingPolicy::Sentinel(s) => s,
            },
        }
    }

    /// Encodes one profile vector into a numeric feature row.
    pub fn encode_vector(&self, vector: &ProfileVector) -> Vec<f64> {
        (0..vector.len())
            .map(|f| self.encode_value(FeatureId(f), vector.get(FeatureId(f))))
            .collect()
    }

    /// Encodes a whole table into a [`Dataset`] with the given labels.
    ///
    /// # Errors
    /// Returns [`LorentzError::Model`] on length mismatch.
    pub fn encode_table(
        &self,
        table: &ProfileTable,
        labels: Vec<f64>,
    ) -> Result<Dataset, LorentzError> {
        if table.rows() != labels.len() {
            return Err(LorentzError::Model(format!(
                "{} profile rows vs {} labels",
                table.rows(),
                labels.len()
            )));
        }
        let columns: Vec<Vec<f64>> = table
            .schema()
            .feature_ids()
            .map(|f| {
                table
                    .column(f)
                    .iter()
                    .map(|v| self.encode_value(f, *v))
                    .collect()
            })
            .collect();
        Dataset::new(self.feature_names.clone(), columns, labels)
    }

    /// Number of distinct encoded values for feature `f`.
    pub fn cardinality(&self, feature: FeatureId) -> usize {
        self.maps[feature.0].len()
    }
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorentz_types::ProfileSchema;

    fn table() -> (ProfileTable, Vec<f64>) {
        let schema = ProfileSchema::new(vec!["segment", "customer"]).unwrap();
        let mut t = ProfileTable::new(schema);
        t.push_row(&[Some("Beverage"), Some("coke")]).unwrap();
        t.push_row(&[Some("Beverage"), Some("pepsi")]).unwrap();
        t.push_row(&[Some("Banking"), Some("acme")]).unwrap();
        t.push_row(&[None, Some("acme")]).unwrap();
        let labels = vec![4.0, 8.0, 32.0, 16.0];
        (t, labels)
    }

    #[test]
    fn mean_encoding_matches_group_means() {
        let (t, labels) = table();
        let enc = TargetEncoder::fit(
            &t,
            &labels,
            TargetStatistic::Mean,
            MissingPolicy::GlobalMean,
            0.0,
        )
        .unwrap();
        let seg = FeatureId(0);
        let beverage = t.vocab(seg).get("Beverage").unwrap();
        let banking = t.vocab(seg).get("Banking").unwrap();
        assert_eq!(enc.encode_value(seg, Some(beverage)), 6.0); // (4+8)/2
        assert_eq!(enc.encode_value(seg, Some(banking)), 32.0);
        // Global mean = (4+8+32+16)/4 = 15.
        assert_eq!(enc.global(), 15.0);
        assert_eq!(enc.encode_value(seg, None), 15.0);
    }

    #[test]
    fn sentinel_policy_emits_sentinel() {
        let (t, labels) = table();
        let enc = TargetEncoder::fit(
            &t,
            &labels,
            TargetStatistic::Mean,
            MissingPolicy::Sentinel(-999.0),
            0.0,
        )
        .unwrap();
        assert_eq!(enc.encode_value(FeatureId(0), None), -999.0);
        // Unseen ids also hit the missing path.
        assert_eq!(enc.encode_value(FeatureId(0), Some(12345)), -999.0);
    }

    #[test]
    fn percentile_statistic() {
        let (t, labels) = table();
        let enc = TargetEncoder::fit(
            &t,
            &labels,
            TargetStatistic::Percentile(50.0),
            MissingPolicy::GlobalMean,
            0.0,
        )
        .unwrap();
        let seg = FeatureId(0);
        let beverage = t.vocab(seg).get("Beverage").unwrap();
        assert_eq!(enc.encode_value(seg, Some(beverage)), 6.0); // median of {4, 8}
                                                                // Global median of {4, 8, 16, 32} = 12.
        assert_eq!(enc.global(), 12.0);
    }

    #[test]
    fn smoothing_shrinks_small_groups_toward_global() {
        let (t, labels) = table();
        let raw = TargetEncoder::fit(
            &t,
            &labels,
            TargetStatistic::Mean,
            MissingPolicy::GlobalMean,
            0.0,
        )
        .unwrap();
        let smooth = TargetEncoder::fit(
            &t,
            &labels,
            TargetStatistic::Mean,
            MissingPolicy::GlobalMean,
            10.0,
        )
        .unwrap();
        let seg = FeatureId(0);
        let banking = t.vocab(seg).get("Banking").unwrap();
        let raw_v = raw.encode_value(seg, Some(banking)); // 32, n=1
        let smooth_v = smooth.encode_value(seg, Some(banking));
        assert!(smooth_v < raw_v);
        assert!(smooth_v > raw.global()); // shrunk toward, not past, global
    }

    #[test]
    fn encode_table_produces_dataset() {
        let (t, labels) = table();
        let enc = TargetEncoder::fit(
            &t,
            &labels,
            TargetStatistic::Mean,
            MissingPolicy::GlobalMean,
            0.0,
        )
        .unwrap();
        let d = enc.encode_table(&t, labels.clone()).unwrap();
        assert_eq!(d.rows(), 4);
        assert_eq!(d.features(), 2);
        assert_eq!(d.labels(), labels.as_slice());
        // Row 3 has a missing segment -> global mean in column 0.
        assert_eq!(d.value(3, 0), 15.0);
    }

    #[test]
    fn encode_vector_handles_unseen() {
        let (t, labels) = table();
        let enc = TargetEncoder::fit(
            &t,
            &labels,
            TargetStatistic::Mean,
            MissingPolicy::GlobalMean,
            0.0,
        )
        .unwrap();
        let v = t.encode_row(&[Some("SpaceTourism"), Some("coke")]).unwrap();
        let row = enc.encode_vector(&v);
        assert_eq!(row[0], enc.global()); // unseen segment
        assert_eq!(row[1], 4.0); // coke's mean label
    }

    #[test]
    fn fit_validates_inputs() {
        let (t, labels) = table();
        assert!(TargetEncoder::fit(
            &t,
            &labels[..2],
            TargetStatistic::Mean,
            MissingPolicy::GlobalMean,
            0.0
        )
        .is_err());
        assert!(TargetEncoder::fit(
            &t,
            &labels,
            TargetStatistic::Mean,
            MissingPolicy::GlobalMean,
            -1.0
        )
        .is_err());
    }

    #[test]
    fn parallel_fit_is_identical_at_any_thread_cap() {
        let (t, labels) = table();
        let serial = TargetEncoder::fit_with_threads(
            &t,
            &labels,
            TargetStatistic::Mean,
            MissingPolicy::GlobalMean,
            2.0,
            1,
        )
        .unwrap();
        for threads in [0, 2, 8] {
            let parallel = TargetEncoder::fit_with_threads(
                &t,
                &labels,
                TargetStatistic::Mean,
                MissingPolicy::GlobalMean,
                2.0,
                threads,
            )
            .unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                serde_json::to_string(&serial).unwrap(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn cardinality_reports_distinct_values() {
        let (t, labels) = table();
        let enc = TargetEncoder::fit(
            &t,
            &labels,
            TargetStatistic::Mean,
            MissingPolicy::GlobalMean,
            0.0,
        )
        .unwrap();
        assert_eq!(enc.cardinality(FeatureId(0)), 2);
        assert_eq!(enc.cardinality(FeatureId(1)), 3);
    }
}
