//! Numeric tabular datasets.

use lorentz_types::LorentzError;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// A column-major feature matrix with one numeric label per row.
///
/// Missing feature values are represented as `NaN` (trees route them to the
/// left child; the target encoder usually eliminates them before this layer).
/// Labels must be finite.
///
/// Storage is a single flat feature-major buffer — `data[f * rows + row]` —
/// so every feature column is one contiguous slice. Histogram building and
/// split search scan whole columns; keeping each column contiguous (rather
/// than one heap allocation per column) means those scans walk one
/// cache-friendly buffer. The serialized form is unchanged from the nested
/// `Vec<Vec<f64>>` representation: `{feature_names, columns, labels}` with
/// `columns` as an array of per-feature arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: usize,
    /// Flat feature-major values: `data[f * rows + row]`.
    data: Vec<f64>,
    labels: Vec<f64>,
}

impl Serialize for Dataset {
    fn to_value(&self) -> Value {
        // Mirror the shape the derive produced for the nested layout so
        // serialized models stay byte-identical across the storage change.
        let columns: Vec<Value> = (0..self.features())
            .map(|f| self.column(f).to_value())
            .collect();
        Value::Map(vec![
            ("feature_names".into(), self.feature_names.to_value()),
            ("columns".into(), Value::Seq(columns)),
            ("labels".into(), self.labels.to_value()),
        ])
    }
}

impl Deserialize for Dataset {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let field = |name: &str| {
            v.get_field(name)
                .ok_or_else(|| SerdeError::custom(format!("Dataset: missing field `{name}`")))
        };
        let feature_names = Vec::<String>::from_value(field("feature_names")?)?;
        let columns = Vec::<Vec<f64>>::from_value(field("columns")?)?;
        let labels = Vec::<f64>::from_value(field("labels")?)?;
        Dataset::new(feature_names, columns, labels)
            .map_err(|e| SerdeError::custom(format!("Dataset: {e}")))
    }
}

impl Dataset {
    /// Creates a dataset from columns and labels.
    ///
    /// # Errors
    /// Returns [`LorentzError::Model`] if there are no features, columns have
    /// unequal lengths, lengths disagree with labels, names don't match the
    /// column count, or any label is non-finite.
    pub fn new(
        feature_names: Vec<String>,
        columns: Vec<Vec<f64>>,
        labels: Vec<f64>,
    ) -> Result<Self, LorentzError> {
        if columns.is_empty() {
            return Err(LorentzError::Model("dataset has no features".into()));
        }
        if feature_names.len() != columns.len() {
            return Err(LorentzError::Model(format!(
                "{} feature names for {} columns",
                feature_names.len(),
                columns.len()
            )));
        }
        let rows = labels.len();
        for (f, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(LorentzError::Model(format!(
                    "column {f} has {} rows, labels have {rows}",
                    col.len()
                )));
            }
        }
        if let Some(bad) = labels.iter().find(|l| !l.is_finite()) {
            return Err(LorentzError::Model(format!("non-finite label {bad}")));
        }
        let mut data = Vec::with_capacity(columns.len() * rows);
        for col in &columns {
            data.extend_from_slice(col);
        }
        Ok(Self {
            feature_names,
            rows,
            data,
            labels,
        })
    }

    /// Builds a dataset from row-major features (convenient in tests).
    ///
    /// # Errors
    /// See [`Dataset::new`].
    pub fn from_rows(
        feature_names: Vec<String>,
        rows: &[Vec<f64>],
        labels: Vec<f64>,
    ) -> Result<Self, LorentzError> {
        let n_features = feature_names.len();
        let mut columns = vec![Vec::with_capacity(rows.len()); n_features];
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_features {
                return Err(LorentzError::Model(format!(
                    "row {i} has {} values for {n_features} features",
                    row.len()
                )));
            }
            for (f, &v) in row.iter().enumerate() {
                columns[f].push(v);
            }
        }
        Self::new(feature_names, columns, labels)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of feature columns.
    pub fn features(&self) -> usize {
        self.feature_names.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Column `f` — one contiguous slice of the flat buffer.
    pub fn column(&self, f: usize) -> &[f64] {
        &self.data[f * self.rows..(f + 1) * self.rows]
    }

    /// Labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// The feature value at (`row`, `f`).
    pub fn value(&self, row: usize, f: usize) -> f64 {
        self.data[f * self.rows + row]
    }

    /// Extracts row `row` as an owned vector (feature order).
    pub fn row(&self, row: usize) -> Vec<f64> {
        (0..self.features()).map(|f| self.value(row, f)).collect()
    }

    /// Copies row `row` into `buf` without allocating (feature order).
    /// Prediction loops over many rows should reuse one buffer instead of
    /// calling [`Dataset::row`] per row.
    ///
    /// # Panics
    /// Panics if `buf.len() != self.features()`.
    pub fn fill_row(&self, row: usize, buf: &mut [f64]) {
        assert_eq!(buf.len(), self.features(), "buffer arity mismatch");
        for (f, slot) in buf.iter_mut().enumerate() {
            *slot = self.data[f * self.rows + row];
        }
    }

    /// Mean label (the boosting base score).
    pub fn label_mean(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().sum::<f64>() / self.labels.len() as f64
    }

    /// A new dataset containing only `rows` (in the given order).
    pub fn subset(&self, rows: &[usize]) -> Dataset {
        let mut data = Vec::with_capacity(self.features() * rows.len());
        for f in 0..self.features() {
            let col = self.column(f);
            data.extend(rows.iter().map(|&r| col[r]));
        }
        Dataset {
            feature_names: self.feature_names.clone(),
            rows: rows.len(),
            data,
            labels: rows.iter().map(|&r| self.labels[r]).collect(),
        }
    }

    /// A copy with labels replaced (used when boosting on residuals).
    ///
    /// # Errors
    /// Returns [`LorentzError::Model`] on length mismatch or non-finite
    /// labels.
    pub fn with_labels(&self, labels: Vec<f64>) -> Result<Dataset, LorentzError> {
        if labels.len() != self.rows() {
            return Err(LorentzError::Model(format!(
                "{} labels for {} rows",
                labels.len(),
                self.rows()
            )));
        }
        if let Some(bad) = labels.iter().find(|l| !l.is_finite()) {
            return Err(LorentzError::Model(format!("non-finite label {bad}")));
        }
        Ok(Dataset {
            feature_names: self.feature_names.clone(),
            rows: self.rows,
            data: self.data.clone(),
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn construction_validates_shapes() {
        assert!(Dataset::new(vec![], vec![], vec![]).is_err());
        assert!(Dataset::new(names(1), vec![vec![1.0]], vec![1.0, 2.0]).is_err());
        assert!(Dataset::new(names(2), vec![vec![1.0]], vec![1.0]).is_err());
        assert!(Dataset::new(names(1), vec![vec![1.0]], vec![f64::NAN]).is_err());
        let d = Dataset::new(names(1), vec![vec![1.0, 2.0]], vec![0.5, 1.5]).unwrap();
        assert_eq!(d.rows(), 2);
        assert_eq!(d.features(), 1);
        assert_eq!(d.label_mean(), 1.0);
    }

    #[test]
    fn from_rows_transposes() {
        let d = Dataset::from_rows(
            names(2),
            &[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
            vec![0.0, 1.0, 2.0],
        )
        .unwrap();
        assert_eq!(d.column(0), &[1.0, 2.0, 3.0]);
        assert_eq!(d.column(1), &[10.0, 20.0, 30.0]);
        assert_eq!(d.row(1), vec![2.0, 20.0]);
        assert_eq!(d.value(2, 1), 30.0);
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        assert!(Dataset::from_rows(names(2), &[vec![1.0]], vec![0.0]).is_err());
    }

    #[test]
    fn subset_selects_and_reorders() {
        let d = Dataset::from_rows(
            names(1),
            &[vec![1.0], vec![2.0], vec![3.0]],
            vec![10.0, 20.0, 30.0],
        )
        .unwrap();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.column(0), &[3.0, 1.0]);
        assert_eq!(s.labels(), &[30.0, 10.0]);
    }

    #[test]
    fn with_labels_replaces_labels_only() {
        let d = Dataset::from_rows(names(1), &[vec![1.0], vec![2.0]], vec![1.0, 2.0]).unwrap();
        let r = d.with_labels(vec![0.5, -0.5]).unwrap();
        assert_eq!(r.labels(), &[0.5, -0.5]);
        assert_eq!(r.column(0), d.column(0));
        assert!(d.with_labels(vec![1.0]).is_err());
        assert!(d.with_labels(vec![f64::INFINITY, 0.0]).is_err());
    }

    #[test]
    fn nan_features_are_allowed() {
        let d = Dataset::from_rows(names(1), &[vec![f64::NAN], vec![1.0]], vec![0.0, 1.0]);
        assert!(d.is_ok());
    }

    #[test]
    fn fill_row_matches_row() {
        let d = Dataset::from_rows(
            names(3),
            &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            vec![0.0, 1.0],
        )
        .unwrap();
        let mut buf = vec![0.0; 3];
        d.fill_row(1, &mut buf);
        assert_eq!(buf, d.row(1));
    }

    #[test]
    fn serialized_shape_matches_nested_layout() {
        // The flat storage must serialize exactly like the old
        // `Vec<Vec<f64>>` column layout: {feature_names, columns, labels}.
        let d = Dataset::from_rows(
            names(2),
            &[vec![1.0, 10.0], vec![2.0, 20.0]],
            vec![0.5, 1.5],
        )
        .unwrap();
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(
            json,
            r#"{"feature_names":["f0","f1"],"columns":[[1,2],[10,20]],"labels":[0.5,1.5]}"#
        );
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
