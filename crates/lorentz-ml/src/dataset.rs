//! Numeric tabular datasets.

use lorentz_types::LorentzError;
use serde::{Deserialize, Serialize};

/// A column-major feature matrix with one numeric label per row.
///
/// Missing feature values are represented as `NaN` (trees route them to the
/// left child; the target encoder usually eliminates them before this layer).
/// Labels must be finite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    /// `columns[f][row]`.
    columns: Vec<Vec<f64>>,
    labels: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset from columns and labels.
    ///
    /// # Errors
    /// Returns [`LorentzError::Model`] if there are no features, columns have
    /// unequal lengths, lengths disagree with labels, names don't match the
    /// column count, or any label is non-finite.
    pub fn new(
        feature_names: Vec<String>,
        columns: Vec<Vec<f64>>,
        labels: Vec<f64>,
    ) -> Result<Self, LorentzError> {
        if columns.is_empty() {
            return Err(LorentzError::Model("dataset has no features".into()));
        }
        if feature_names.len() != columns.len() {
            return Err(LorentzError::Model(format!(
                "{} feature names for {} columns",
                feature_names.len(),
                columns.len()
            )));
        }
        let rows = labels.len();
        for (f, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(LorentzError::Model(format!(
                    "column {f} has {} rows, labels have {rows}",
                    col.len()
                )));
            }
        }
        if let Some(bad) = labels.iter().find(|l| !l.is_finite()) {
            return Err(LorentzError::Model(format!("non-finite label {bad}")));
        }
        Ok(Self {
            feature_names,
            columns,
            labels,
        })
    }

    /// Builds a dataset from row-major features (convenient in tests).
    ///
    /// # Errors
    /// See [`Dataset::new`].
    pub fn from_rows(
        feature_names: Vec<String>,
        rows: &[Vec<f64>],
        labels: Vec<f64>,
    ) -> Result<Self, LorentzError> {
        let n_features = feature_names.len();
        let mut columns = vec![Vec::with_capacity(rows.len()); n_features];
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_features {
                return Err(LorentzError::Model(format!(
                    "row {i} has {} values for {n_features} features",
                    row.len()
                )));
            }
            for (f, &v) in row.iter().enumerate() {
                columns[f].push(v);
            }
        }
        Self::new(feature_names, columns, labels)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of feature columns.
    pub fn features(&self) -> usize {
        self.columns.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Column `f`.
    pub fn column(&self, f: usize) -> &[f64] {
        &self.columns[f]
    }

    /// Labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// The feature value at (`row`, `f`).
    pub fn value(&self, row: usize, f: usize) -> f64 {
        self.columns[f][row]
    }

    /// Extracts row `row` as an owned vector (feature order).
    pub fn row(&self, row: usize) -> Vec<f64> {
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// Copies row `row` into `buf` without allocating (feature order).
    /// Prediction loops over many rows should reuse one buffer instead of
    /// calling [`Dataset::row`] per row.
    ///
    /// # Panics
    /// Panics if `buf.len() != self.features()`.
    pub fn fill_row(&self, row: usize, buf: &mut [f64]) {
        assert_eq!(buf.len(), self.features(), "buffer arity mismatch");
        for (slot, column) in buf.iter_mut().zip(&self.columns) {
            *slot = column[row];
        }
    }

    /// Mean label (the boosting base score).
    pub fn label_mean(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().sum::<f64>() / self.labels.len() as f64
    }

    /// A new dataset containing only `rows` (in the given order).
    pub fn subset(&self, rows: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| rows.iter().map(|&r| c[r]).collect())
                .collect(),
            labels: rows.iter().map(|&r| self.labels[r]).collect(),
        }
    }

    /// A copy with labels replaced (used when boosting on residuals).
    ///
    /// # Errors
    /// Returns [`LorentzError::Model`] on length mismatch or non-finite
    /// labels.
    pub fn with_labels(&self, labels: Vec<f64>) -> Result<Dataset, LorentzError> {
        if labels.len() != self.rows() {
            return Err(LorentzError::Model(format!(
                "{} labels for {} rows",
                labels.len(),
                self.rows()
            )));
        }
        if let Some(bad) = labels.iter().find(|l| !l.is_finite()) {
            return Err(LorentzError::Model(format!("non-finite label {bad}")));
        }
        Ok(Dataset {
            feature_names: self.feature_names.clone(),
            columns: self.columns.clone(),
            labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn construction_validates_shapes() {
        assert!(Dataset::new(vec![], vec![], vec![]).is_err());
        assert!(Dataset::new(names(1), vec![vec![1.0]], vec![1.0, 2.0]).is_err());
        assert!(Dataset::new(names(2), vec![vec![1.0]], vec![1.0]).is_err());
        assert!(Dataset::new(names(1), vec![vec![1.0]], vec![f64::NAN]).is_err());
        let d = Dataset::new(names(1), vec![vec![1.0, 2.0]], vec![0.5, 1.5]).unwrap();
        assert_eq!(d.rows(), 2);
        assert_eq!(d.features(), 1);
        assert_eq!(d.label_mean(), 1.0);
    }

    #[test]
    fn from_rows_transposes() {
        let d = Dataset::from_rows(
            names(2),
            &[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
            vec![0.0, 1.0, 2.0],
        )
        .unwrap();
        assert_eq!(d.column(0), &[1.0, 2.0, 3.0]);
        assert_eq!(d.column(1), &[10.0, 20.0, 30.0]);
        assert_eq!(d.row(1), vec![2.0, 20.0]);
        assert_eq!(d.value(2, 1), 30.0);
    }

    #[test]
    fn from_rows_rejects_ragged_rows() {
        assert!(Dataset::from_rows(names(2), &[vec![1.0]], vec![0.0]).is_err());
    }

    #[test]
    fn subset_selects_and_reorders() {
        let d = Dataset::from_rows(
            names(1),
            &[vec![1.0], vec![2.0], vec![3.0]],
            vec![10.0, 20.0, 30.0],
        )
        .unwrap();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.column(0), &[3.0, 1.0]);
        assert_eq!(s.labels(), &[30.0, 10.0]);
    }

    #[test]
    fn with_labels_replaces_labels_only() {
        let d = Dataset::from_rows(names(1), &[vec![1.0], vec![2.0]], vec![1.0, 2.0]).unwrap();
        let r = d.with_labels(vec![0.5, -0.5]).unwrap();
        assert_eq!(r.labels(), &[0.5, -0.5]);
        assert_eq!(r.column(0), d.column(0));
        assert!(d.with_labels(vec![1.0]).is_err());
        assert!(d.with_labels(vec![f64::INFINITY, 0.0]).is_err());
    }

    #[test]
    fn nan_features_are_allowed() {
        let d = Dataset::from_rows(names(1), &[vec![f64::NAN], vec![1.0]], vec![0.0, 1.0]);
        assert!(d.is_ok());
    }
}
