//! Regression trees with histogram split finding.

use crate::binning::{BinId, Binner};
use crate::dataset::Dataset;
use lorentz_types::LorentzError;
use serde::{Deserialize, Serialize};

/// Hyperparameters controlling tree growth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0). 0 yields a single leaf.
    pub max_depth: usize,
    /// Minimum samples each child must keep for a split to be admissible.
    pub min_samples_leaf: usize,
    /// Minimum samples a node needs to attempt a split.
    pub min_samples_split: usize,
    /// Maximum quantile bins per feature (see [`Binner`]).
    pub max_bins: usize,
    /// Minimum variance-reduction gain to accept a split.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_bins: 256,
            min_gain: 1e-12,
        }
    }
}

impl TreeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] on nonsensical values.
    pub fn validate(&self) -> Result<(), LorentzError> {
        if self.min_samples_leaf == 0 {
            return Err(LorentzError::InvalidConfig(
                "min_samples_leaf must be >= 1".into(),
            ));
        }
        if self.min_samples_split < 2 {
            return Err(LorentzError::InvalidConfig(
                "min_samples_split must be >= 2".into(),
            ));
        }
        if self.max_bins < 2 {
            return Err(LorentzError::InvalidConfig("max_bins must be >= 2".into()));
        }
        if !self.min_gain.is_finite() || self.min_gain < 0.0 {
            return Err(LorentzError::InvalidConfig(
                "min_gain must be finite and >= 0".into(),
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Split {
        feature: u32,
        /// Raw-value threshold: `x <= threshold` (and `NaN`) go left.
        threshold: f64,
        /// Variance-reduction gain of this split (for feature importance).
        gain: f64,
        left: u32,
        right: u32,
    },
    Leaf {
        value: f64,
    },
}

/// A fitted regression tree. Prediction walks raw feature values against the
/// stored thresholds, so a tree is self-contained once fitted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Fits a tree on a dataset (labels are the regression targets).
    ///
    /// # Errors
    /// Returns [`LorentzError`] for invalid configs or an empty dataset.
    pub fn fit(data: &Dataset, config: &TreeConfig) -> Result<Self, LorentzError> {
        config.validate()?;
        if data.is_empty() {
            return Err(LorentzError::Model("cannot fit on an empty dataset".into()));
        }
        let binner = Binner::fit(data, config.max_bins)?;
        let binned = binner.bin_dataset(data);
        let indices: Vec<u32> = (0..data.rows() as u32).collect();
        let features: Vec<usize> = (0..data.features()).collect();
        Ok(Self::grow(
            &binner,
            &binned,
            data.labels(),
            indices,
            &features,
            config,
        ))
    }

    /// Fits a tree on pre-binned data, optionally restricted to a feature
    /// subset — the entry point the boosting and bagging ensembles use so the
    /// binning cost is paid once per dataset, not once per tree.
    pub(crate) fn fit_prebinned(
        binner: &Binner,
        binned: &[Vec<BinId>],
        labels: &[f64],
        indices: Vec<u32>,
        features: &[usize],
        config: &TreeConfig,
    ) -> Self {
        Self::grow(binner, binned, labels, indices, features, config)
    }

    fn grow(
        binner: &Binner,
        binned: &[Vec<BinId>],
        labels: &[f64],
        indices: Vec<u32>,
        features: &[usize],
        config: &TreeConfig,
    ) -> Self {
        let mut nodes = Vec::new();
        Self::grow_node(
            binner, binned, labels, indices, features, config, 0, &mut nodes,
        );
        Self { nodes }
    }

    /// Recursively grows the subtree for `indices`, returning its node id.
    #[allow(clippy::too_many_arguments)]
    fn grow_node(
        binner: &Binner,
        binned: &[Vec<BinId>],
        labels: &[f64],
        indices: Vec<u32>,
        features: &[usize],
        config: &TreeConfig,
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        let n = indices.len();
        let sum: f64 = indices.iter().map(|&i| labels[i as usize]).sum();
        let mean = sum / n as f64;

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: mean });
            (nodes.len() - 1) as u32
        };

        if depth >= config.max_depth || n < config.min_samples_split {
            return make_leaf(nodes);
        }

        let Some(split) = Self::best_split(binner, binned, labels, &indices, features, config, sum)
        else {
            return make_leaf(nodes);
        };

        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = indices
            .into_iter()
            .partition(|&i| binned[split.feature][i as usize] <= split.bin);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        // Reserve this node's slot before children so the root is node 0.
        let id = nodes.len() as u32;
        nodes.push(Node::Leaf { value: mean }); // placeholder
        let left = Self::grow_node(
            binner,
            binned,
            labels,
            left_idx,
            features,
            config,
            depth + 1,
            nodes,
        );
        let right = Self::grow_node(
            binner,
            binned,
            labels,
            right_idx,
            features,
            config,
            depth + 1,
            nodes,
        );
        nodes[id as usize] = Node::Split {
            feature: split.feature as u32,
            threshold: binner.threshold(split.feature, split.bin as BinId),
            gain: split.gain,
            left,
            right,
        };
        id
    }

    /// Finds the best (feature, bin) split by variance reduction, or `None`
    /// if no admissible split clears `min_gain`.
    fn best_split(
        binner: &Binner,
        binned: &[Vec<BinId>],
        labels: &[f64],
        indices: &[u32],
        features: &[usize],
        config: &TreeConfig,
        total_sum: f64,
    ) -> Option<SplitCandidate> {
        let n = indices.len();
        let base_score = total_sum * total_sum / n as f64;
        let mut best: Option<(f64, SplitCandidate)> = None;

        // Reused histogram buffers.
        let max_bins = features.iter().map(|&f| binner.bins(f)).max().unwrap_or(0);
        let mut counts = vec![0u32; max_bins];
        let mut sums = vec![0f64; max_bins];

        for &f in features {
            let bins = binner.bins(f);
            if bins < 2 {
                continue;
            }
            counts[..bins].fill(0);
            sums[..bins].fill(0.0);
            let col = &binned[f];
            for &i in indices {
                let b = col[i as usize] as usize;
                counts[b] += 1;
                sums[b] += labels[i as usize];
            }
            // Prefix scan: candidate split after each bin boundary.
            let mut left_n = 0u32;
            let mut left_sum = 0.0;
            for b in 0..bins - 1 {
                left_n += counts[b];
                left_sum += sums[b];
                let right_n = n as u32 - left_n;
                if (left_n as usize) < config.min_samples_leaf
                    || (right_n as usize) < config.min_samples_leaf
                {
                    continue;
                }
                if left_n == 0 || right_n == 0 {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let score =
                    left_sum * left_sum / left_n as f64 + right_sum * right_sum / right_n as f64;
                let gain = score - base_score;
                if gain > config.min_gain && best.as_ref().is_none_or(|(bg, _)| gain > *bg) {
                    best = Some((
                        gain,
                        SplitCandidate {
                            feature: f,
                            bin: b as BinId,
                            gain,
                        },
                    ));
                }
            }
        }
        best.map(|(_, c)| c)
    }

    /// Predicts a single row of raw feature values. `NaN` routes left.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut id = 0usize;
        loop {
            match &self.nodes[id] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    let v = row[*feature as usize];
                    id = if v.is_nan() || v <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Predicts every row of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        let mut row_buf = vec![0.0; data.features()];
        (0..data.rows())
            .map(|r| {
                data.fill_row(r, &mut row_buf);
                self.predict_row(&row_buf)
            })
            .collect()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Accumulates per-feature split gains into `importance` (length must
    /// cover every feature index used by the tree).
    pub fn accumulate_importance(&self, importance: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                importance[*feature as usize] += gain;
            }
        }
    }

    /// Gain-based feature importance, normalized to sum to 1 (all zeros for
    /// a stump).
    pub fn feature_importance(&self, n_features: usize) -> Vec<f64> {
        let mut imp = vec![0.0; n_features];
        self.accumulate_importance(&mut imp);
        normalize_importance(imp)
    }

    /// Maximum depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left as usize).max(depth_of(nodes, *right as usize))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

struct SplitCandidate {
    feature: usize,
    bin: BinId,
    gain: f64,
}

/// Normalizes an importance vector to sum to 1 (no-op on all-zero input).
pub(crate) fn normalize_importance(mut imp: Vec<f64>) -> Vec<f64> {
    let total: f64 = imp.iter().sum();
    if total > 0.0 {
        for v in &mut imp {
            *v /= total;
        }
    }
    imp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like() -> Dataset {
        // y = 1 when x0 > 0.5, else 0 — a single clean split.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 / 100.0, (i % 7) as f64])
            .collect();
        let labels: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        Dataset::from_rows(vec!["x0".into(), "x1".into()], &rows, labels).unwrap()
    }

    #[test]
    fn learns_a_step_function() {
        let d = xor_like();
        let t = DecisionTree::fit(&d, &TreeConfig::default()).unwrap();
        assert_eq!(t.predict_row(&[0.1, 0.0]), 0.0);
        assert_eq!(t.predict_row(&[0.9, 0.0]), 1.0);
        let preds = t.predict(&d);
        let err: f64 = preds
            .iter()
            .zip(d.labels())
            .map(|(p, y)| (p - y).abs())
            .sum();
        assert!(err < 1e-9, "tree should fit a clean step exactly");
    }

    #[test]
    fn max_depth_zero_is_a_mean_stump() {
        let d = xor_like();
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let t = DecisionTree::fit(&d, &cfg).unwrap();
        assert_eq!(t.n_leaves(), 1);
        let mean = d.label_mean();
        assert!((t.predict_row(&[0.3, 1.0]) - mean).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_limits_splits() {
        let d = xor_like();
        let cfg = TreeConfig {
            min_samples_leaf: 60, // no split can leave 60 on both sides of 100
            ..TreeConfig::default()
        };
        let t = DecisionTree::fit(&d, &cfg).unwrap();
        assert_eq!(t.n_leaves(), 1);
    }

    #[test]
    fn depth_is_bounded() {
        // Noisy target forces deep growth if unbounded.
        let rows: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..256)
            .map(|i| ((i * 2654435761u64 as usize) % 97) as f64)
            .collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, labels).unwrap();
        for max_depth in [1, 3, 5] {
            let cfg = TreeConfig {
                max_depth,
                ..TreeConfig::default()
            };
            let t = DecisionTree::fit(&d, &cfg).unwrap();
            assert!(t.depth() <= max_depth);
            assert!(t.n_leaves() <= 1 << max_depth);
        }
    }

    #[test]
    fn constant_labels_yield_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, vec![3.5; 50]).unwrap();
        let t = DecisionTree::fit(&d, &TreeConfig::default()).unwrap();
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.predict_row(&[12.0]), 3.5);
    }

    #[test]
    fn nan_rows_route_left_consistently() {
        let d = xor_like();
        let t = DecisionTree::fit(&d, &TreeConfig::default()).unwrap();
        let p = t.predict_row(&[f64::NAN, 0.0]);
        assert!(p.is_finite());
        // NaN routes to the left branch (x <= threshold side), i.e. low x0.
        assert_eq!(p, 0.0);
    }

    #[test]
    fn config_validation() {
        let bad = TreeConfig {
            min_samples_leaf: 0,
            ..TreeConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = TreeConfig {
            min_samples_split: 1,
            ..TreeConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = TreeConfig {
            min_gain: -1.0,
            ..TreeConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(TreeConfig::default().validate().is_ok());
    }

    #[test]
    fn piecewise_function_regression() {
        // y = floor(x / 10) on [0, 100): 10 plateaus, needs depth >= 4.
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i as f64) / 2.0]).collect();
        let labels: Vec<f64> = rows.iter().map(|r| (r[0] / 10.0).floor()).collect();
        let d = Dataset::from_rows(vec!["x".into()], &rows, labels).unwrap();
        let cfg = TreeConfig {
            max_depth: 8,
            ..TreeConfig::default()
        };
        let t = DecisionTree::fit(&d, &cfg).unwrap();
        let preds = t.predict(&d);
        let rmse = crate::metrics::rmse(&preds, d.labels());
        assert!(rmse < 0.05, "rmse={rmse}");
    }

    #[test]
    fn feature_importance_identifies_the_informative_feature() {
        let d = xor_like(); // label depends only on x0
        let t = DecisionTree::fit(&d, &TreeConfig::default()).unwrap();
        let imp = t.feature_importance(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(imp[0] > 0.99, "x0 importance {}", imp[0]);
        assert!(imp[1] < 0.01);
        // A stump has no splits and therefore all-zero importance.
        let stump = DecisionTree::fit(
            &d,
            &TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(stump.feature_importance(2), vec![0.0, 0.0]);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let d = xor_like();
        let t = DecisionTree::fit(&d, &TreeConfig::default()).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t.predict(&d), back.predict(&d));
    }
}
