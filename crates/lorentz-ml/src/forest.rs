//! Random forest regression (bagged trees + feature subsampling).
//!
//! §3.3's missing-data study compares random forest and gradient-boosted
//! trees; this is the forest side. Trees are grown on bootstrap resamples of
//! the rows with a per-tree random feature subset, and predictions are
//! averaged.

use crate::binning::Binner;
use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use lorentz_types::LorentzError;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Fraction of features offered to each tree, in `(0, 1]`. The classic
    /// regression default is 1/3; 1.0 disables feature subsampling.
    pub feature_fraction: f64,
    /// Whether each tree trains on a bootstrap resample (with replacement)
    /// of the rows.
    pub bootstrap: bool,
    /// Per-tree growth parameters.
    pub tree: TreeConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 100,
            feature_fraction: 1.0 / 3.0,
            bootstrap: true,
            tree: TreeConfig {
                max_depth: 12,
                min_samples_leaf: 2,
                ..TreeConfig::default()
            },
            seed: 0,
        }
    }
}

impl RandomForestConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LorentzError::InvalidConfig`] on out-of-range values.
    pub fn validate(&self) -> Result<(), LorentzError> {
        if self.n_trees == 0 {
            return Err(LorentzError::InvalidConfig("n_trees must be >= 1".into()));
        }
        if !self.feature_fraction.is_finite()
            || self.feature_fraction <= 0.0
            || self.feature_fraction > 1.0
        {
            return Err(LorentzError::InvalidConfig(format!(
                "feature_fraction must be in (0, 1], got {}",
                self.feature_fraction
            )));
        }
        self.tree.validate()
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits the forest.
    ///
    /// # Errors
    /// Returns [`LorentzError`] for invalid configs or an empty dataset.
    pub fn fit(data: &Dataset, config: &RandomForestConfig) -> Result<Self, LorentzError> {
        config.validate()?;
        if data.is_empty() {
            return Err(LorentzError::Model("cannot fit on an empty dataset".into()));
        }
        let binner = Binner::fit(data, config.tree.max_bins)?;
        let binned = binner.bin_dataset(data);
        let n_features = data.features();
        let n_offered =
            ((n_features as f64 * config.feature_fraction).ceil() as usize).clamp(1, n_features);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let all_features: Vec<usize> = (0..n_features).collect();

        let trees = (0..config.n_trees)
            .map(|_| {
                let rows: Vec<u32> = if config.bootstrap {
                    let mut rows: Vec<u32> = (0..data.rows())
                        .map(|_| rng.gen_range(0..data.rows()) as u32)
                        .collect();
                    rows.sort_unstable();
                    rows
                } else {
                    (0..data.rows() as u32).collect()
                };
                let features: Vec<usize> = if n_offered == n_features {
                    all_features.clone()
                } else {
                    let mut f: Vec<usize> = all_features
                        .choose_multiple(&mut rng, n_offered)
                        .copied()
                        .collect();
                    f.sort_unstable();
                    f
                };
                DecisionTree::fit_prebinned(
                    &binner,
                    &binned,
                    data.labels(),
                    rows,
                    &features,
                    &config.tree,
                )
            })
            .collect();

        Ok(Self { trees })
    }

    /// Predicts one row (ensemble mean).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predicts every row of a dataset.
    pub fn predict(&self, data: &Dataset) -> Vec<f64> {
        let mut row_buf = vec![0.0; data.features()];
        (0..data.rows())
            .map(|r| {
                data.fill_row(r, &mut row_buf);
                self.predict_row(&row_buf)
            })
            .collect()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Gain-based feature importance aggregated over all trees, normalized
    /// to sum to 1.
    pub fn feature_importance(&self, n_features: usize) -> Vec<f64> {
        let mut imp = vec![0.0; n_features];
        for tree in &self.trees {
            tree.accumulate_importance(&mut imp);
        }
        crate::tree::normalize_importance(imp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r2, rmse};

    fn noisy_linear(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x0 = (i % 53) as f64 / 53.0;
                let x1 = (i % 31) as f64 / 31.0;
                let x2 = ((i * 7) % 11) as f64 / 11.0; // irrelevant
                vec![x0, x1, x2]
            })
            .collect();
        let labels: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[1]).collect();
        Dataset::from_rows(vec!["a".into(), "b".into(), "c".into()], &rows, labels).unwrap()
    }

    #[test]
    fn forest_fits_a_linear_signal_well() {
        let d = noisy_linear(600);
        let m = RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 30,
                feature_fraction: 2.0 / 3.0,
                ..RandomForestConfig::default()
            },
        )
        .unwrap();
        let score = r2(&m.predict(&d), d.labels());
        assert!(score > 0.9, "r2={score}");
    }

    #[test]
    fn averaging_more_trees_stabilizes_predictions() {
        let d = noisy_linear(300);
        let mk = |n_trees, seed| RandomForestConfig {
            n_trees,
            seed,
            ..RandomForestConfig::default()
        };
        // With many trees, two different seeds give much closer predictions
        // than with one tree (variance reduction by averaging).
        let one_a = RandomForest::fit(&d, &mk(1, 1)).unwrap().predict(&d);
        let one_b = RandomForest::fit(&d, &mk(1, 2)).unwrap().predict(&d);
        let many_a = RandomForest::fit(&d, &mk(40, 1)).unwrap().predict(&d);
        let many_b = RandomForest::fit(&d, &mk(40, 2)).unwrap().predict(&d);
        let dist_one = rmse(&one_a, &one_b);
        let dist_many = rmse(&many_a, &many_b);
        assert!(
            dist_many < dist_one,
            "many-tree seeds differ by {dist_many}, single-tree by {dist_one}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let d = noisy_linear(100);
        let cfg = RandomForestConfig {
            n_trees: 5,
            seed: 9,
            ..RandomForestConfig::default()
        };
        let a = RandomForest::fit(&d, &cfg).unwrap();
        let b = RandomForest::fit(&d, &cfg).unwrap();
        assert_eq!(a.predict(&d), b.predict(&d));
    }

    #[test]
    fn no_bootstrap_full_features_single_tree_equals_plain_tree() {
        let d = noisy_linear(100);
        let cfg = RandomForestConfig {
            n_trees: 1,
            feature_fraction: 1.0,
            bootstrap: false,
            tree: TreeConfig::default(),
            seed: 0,
        };
        let forest = RandomForest::fit(&d, &cfg).unwrap();
        let tree = DecisionTree::fit(&d, &TreeConfig::default()).unwrap();
        assert_eq!(forest.predict(&d), tree.predict(&d));
    }

    #[test]
    fn invalid_configs_rejected() {
        for ff in [0.0, -0.5, 1.5] {
            let cfg = RandomForestConfig {
                feature_fraction: ff,
                ..RandomForestConfig::default()
            };
            assert!(cfg.validate().is_err(), "ff={ff}");
        }
        let cfg = RandomForestConfig {
            n_trees: 0,
            ..RandomForestConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
